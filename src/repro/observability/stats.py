"""``vpfloat-stats``: render and validate saved telemetry artifacts.

Pretty-print a metrics file produced by ``--metrics-out``::

    vpfloat-stats m.json

Summarize a Chrome trace produced by ``--trace``::

    vpfloat-stats t.json           # file kind is auto-detected

Validate artifact schemas (CI uses this; exits non-zero on failure)::

    vpfloat-stats --validate t.json m.json

(equivalently ``python -m repro.observability.stats ...``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .metrics import MetricsRegistry

#: Chrome trace phases this stack emits (span, instant, counter, meta).
_TRACE_PHASES = {"X", "i", "C", "M"}


class ValidationError(ValueError):
    """A telemetry artifact failed schema validation."""


# ----------------------------------------------------------------- #
# Schema validation
# ----------------------------------------------------------------- #

def validate_metrics_document(data) -> None:
    """Raise :class:`ValidationError` unless ``data`` is a well-formed
    metrics document (the ``--metrics-out`` schema).

    Partial documents are valid: a section that is absent reads as
    empty (a run may legitimately record no histograms, and pruned or
    hand-built files drop whole sections); only a section of the wrong
    shape is an error.
    """
    if not isinstance(data, dict):
        raise ValidationError("metrics document must be a JSON object")
    data = {**{"counters": {}, "gauges": {}, "histograms": {}}, **data}
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(data[section], dict):
            raise ValidationError(f"metrics section {section!r} must be "
                                  f"an object")
    for name, value in data["counters"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"counter {name!r} is not numeric")
    for name, value in data["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"gauge {name!r} is not numeric")
    for name, hist in data["histograms"].items():
        if not isinstance(hist, dict):
            raise ValidationError(f"histogram {name!r} must be an object")
        for bucket, count in hist.items():
            try:
                float(bucket)
            except ValueError:
                raise ValidationError(
                    f"histogram {name!r} bucket {bucket!r} is not numeric"
                ) from None
            if not isinstance(count, int) or count < 0:
                raise ValidationError(
                    f"histogram {name!r} count for {bucket!r} must be a "
                    f"non-negative integer")


def validate_trace_document(data) -> None:
    """Raise :class:`ValidationError` unless ``data`` is a well-formed
    Chrome trace-event document with sanely nested spans."""
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValidationError("trace document must be an object with a "
                              "'traceEvents' list")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValidationError("'traceEvents' must be a list")
    spans = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValidationError(f"event #{i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValidationError(f"event #{i} missing {key!r}")
        ph = event["ph"]
        if ph not in _TRACE_PHASES:
            raise ValidationError(f"event #{i} has unknown phase {ph!r}")
        if ph != "M" and "ts" not in event:
            raise ValidationError(f"event #{i} ({ph}) missing 'ts'")
        if ph == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValidationError(
                    f"span #{i} ({event['name']!r}) missing or negative "
                    f"'dur'")
            if event["ts"] < 0:
                raise ValidationError(
                    f"span #{i} ({event['name']!r}) has negative 'ts'")
            spans.append(event)
    _validate_nesting(spans)


def _validate_nesting(spans: List[dict]) -> None:
    """Complete events on one (pid, tid) track must nest or be disjoint;
    partial overlap means broken begin/end pairing."""
    tracks = {}
    for span in spans:
        tracks.setdefault((span["pid"], span["tid"]), []).append(span)
    for (pid, tid), track in tracks.items():
        # Sort by start time, longest-first on ties (parents first).
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[dict] = []
        for span in track:
            while stack and span["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                parent = stack[-1]
                # Tolerate sub-microsecond clock jitter at the edges.
                if span["ts"] + span["dur"] > \
                        parent["ts"] + parent["dur"] + 1.0:
                    raise ValidationError(
                        f"span {span['name']!r} overlaps parent "
                        f"{parent['name']!r} without nesting "
                        f"(pid={pid}, tid={tid})")
            stack.append(span)


# ----------------------------------------------------------------- #
# Rendering
# ----------------------------------------------------------------- #

def render_trace_summary(data: dict) -> str:
    """A text digest of a trace: span counts and total time per
    (category, name), hottest first."""
    events = data.get("traceEvents", [])
    totals = {}
    counts = {}
    pids = set()
    for event in events:
        if event.get("ph") != "X":
            continue
        pids.add(event["pid"])
        key = (event.get("cat", "?"), event["name"])
        totals[key] = totals.get(key, 0.0) + event["dur"]
        counts[key] = counts.get(key, 0) + 1
    lines = [f"trace: {len(events)} events, "
             f"{sum(counts.values())} spans, {len(pids)} process(es)"]
    header = f"  {'category':<10} {'span':<36} {'count':>7} {'total ms':>10}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for key in sorted(totals, key=lambda k: -totals[k]):
        cat, name = key
        lines.append(f"  {cat:<10} {name:<36} {counts[key]:>7} "
                     f"{totals[key] / 1e3:>10.3f}")
    return "\n".join(lines)


def render_codegen_summary(data: dict) -> str:
    """Per-function jit-codegen status, derived from the
    ``codegen.fn.<name>.jit`` / ``codegen.fn.<name>.fallback.<reason>``
    counters. Empty string when the run never touched the jit engine."""
    counters = data.get("counters", {})
    rows = {}
    for name, value in counters.items():
        if not name.startswith("codegen.fn."):
            continue
        parts = name[len("codegen.fn."):].split(".")
        if len(parts) < 2:
            continue
        func = parts[0]
        if parts[1] == "jit":
            rows[func] = ("jit", int(value), "")
        elif parts[1] == "fallback":
            reason = ".".join(parts[2:]) or "?"
            rows[func] = ("fallback", int(value), reason)
    if not rows:
        return ""
    jitted = sum(1 for status, _, _ in rows.values() if status == "jit")
    lines = [f"codegen (jit engine): {len(rows)} function(s), "
             f"{jitted} specialized, {len(rows) - jitted} fell back"]
    header = f"  {'function':<24} {'status':<10} {'calls':>7}  reason"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for func in sorted(rows, key=lambda f: (rows[f][0] != "fallback", f)):
        status, calls, reason = rows[func]
        lines.append(f"  {func:<24} {status:<10} {calls:>7}  "
                     f"{reason}".rstrip())
    return "\n".join(lines)


def render_batched_summary(data: dict) -> str:
    """Batched-execution telemetry, derived from the ``batch.*``
    counters and histograms :class:`~repro.runtime.batch.BatchContext`
    flushes after every batched run (executions, lanes, fused ops,
    scalar fallbacks, divergence bailouts, and the batch-size and
    lane-occupancy histograms).  Empty string when the run never used
    the batched engine."""
    counters = data.get("counters", {})
    executions = int(counters.get("batch.executions", 0))
    if not executions:
        return ""
    lanes = int(counters.get("batch.lanes", 0))
    ops = int(counters.get("batch.ops", 0))
    fallbacks = int(counters.get("batch.scalar_fallbacks", 0))
    lane_ops = int(counters.get("batch.fast_lanes", 0)) + fallbacks
    lines = [f"batched execution: {executions} batch run(s), "
             f"{lanes} lane(s), {ops} fused op(s)"]
    if ops:
        share = (100.0 * fallbacks / lane_ops) if lane_ops else 0.0
        lines.append(f"  scalar fallbacks: {fallbacks} lane-op(s)"
                     f" ({share:.1f}% of lane-ops)")
    bailouts = int(counters.get("batch.divergence_bailouts", 0))
    serial_lanes = int(counters.get("batch.serial_fallback_lanes", 0))
    if bailouts or serial_lanes:
        lines.append(f"  divergence bailouts: {bailouts}, "
                     f"serial-fallback lanes: {serial_lanes}")
    histograms = data.get("histograms", {})
    occupancy = histograms.get("batch.occupancy", {})
    if occupancy:
        lines.append("  occupancy (fast lanes per fused op):")
        header = f"    {'bucket':>8} {'ops':>10}"
        lines.append(header)
        lines.append("    " + "-" * (len(header) - 4))
        for bucket in sorted(occupancy, key=float, reverse=True):
            lines.append(f"    {f'{float(bucket):.0f}%':>8} "
                         f"{int(occupancy[bucket]):>10}")
    sizes = histograms.get("batch.size", {})
    if sizes:
        shape = ", ".join(f"{float(b):.0f}x{int(c)}"
                          for b, c in sorted(sizes.items(),
                                             key=lambda kv: float(kv[0])))
        lines.append(f"  batch sizes (lanes x runs): {shape}")
    return "\n".join(lines)


def render_validation_summary(data: dict) -> str:
    """Translation-validation outcomes, derived from the ``validate.*``
    counters the harness emits (certificates by kind, per-check
    pass/fail, fuzzer and minimizer traffic).  Empty string when the
    run performed no validation."""
    counters = data.get("counters", {})
    certificates = int(counters.get("validate.certificates", 0))
    fuzzed = int(counters.get("validate.fuzz.programs", 0))
    if not certificates and not fuzzed:
        return ""
    passed = int(counters.get("validate.passed", 0))
    failed = int(counters.get("validate.failed", 0))
    lines = [f"validation: {certificates} certificate(s), "
             f"{passed} passed, {failed} failed"]
    checks = {}
    for name, value in counters.items():
        if not name.startswith("validate.check."):
            continue
        parts = name[len("validate.check."):].rsplit(".", 1)
        if len(parts) != 2 or parts[1] not in ("passed", "failed"):
            continue
        label = parts[0]
        ok, bad = checks.get(label, (0, 0))
        if parts[1] == "passed":
            checks[label] = (ok + int(value), bad)
        else:
            checks[label] = (ok, bad + int(value))
    if checks:
        header = f"  {'check':<28} {'passed':>8} {'failed':>8}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for label in sorted(checks):
            ok, bad = checks[label]
            lines.append(f"  {label:<28} {ok:>8} {bad:>8}")
    if fuzzed:
        lines.append(f"  fuzzer: {fuzzed} program(s) cross-checked, "
                     f"{int(counters.get('validate.fuzz.failures', 0))} "
                     f"failure(s)")
    minimized = int(counters.get("validate.minimize.runs", 0))
    if minimized:
        lines.append(f"  minimizer: {minimized} run(s), "
                     f"{int(counters.get('validate.minimize.ops_removed', 0))} "
                     f"op(s) removed, "
                     f"{int(counters.get('validate.minimize.evaluations', 0))} "
                     f"predicate evaluation(s)")
    return "\n".join(lines)


def render_kernel_tier_summary(data: dict) -> str:
    """Kernel-tier telemetry, derived from the ``kernel.tier.*``
    counters (scalar ops served per tier, bind sites, per-call
    fallbacks out of a specialized kernel, and the batched numpy tier's
    op/lane/bailout traffic).  Empty string when no run bound kernels
    through the tier selector."""
    counters = data.get("counters", {})
    tiers = {}
    for name, value in counters.items():
        if not name.startswith("kernel.tier."):
            continue
        parts = name[len("kernel.tier."):].split(".")
        if len(parts) != 2 or parts[0] in ("fallback", "batch_np"):
            continue
        label, field = parts
        entry = tiers.setdefault(label, {"ops": 0, "sites": 0})
        if field in entry:
            entry[field] += int(value)
    np_ops = int(counters.get("kernel.tier.batch_np.ops", 0))
    np_bailouts = int(counters.get("kernel.tier.batch_np.bailouts", 0))
    if not tiers and not np_ops and not np_bailouts:
        return ""
    total = sum(entry["ops"] for entry in tiers.values())
    fast = sum(entry["ops"] for label, entry in tiers.items()
               if label != "generic")
    share = (100.0 * fast / total) if total else 0.0
    lines = [f"kernel tiers: {total} scalar op(s), "
             f"{fast} on the fast path ({share:.1f}%)"]
    if tiers:
        header = f"  {'tier':<10} {'ops':>12} {'sites':>8}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for label in sorted(tiers, key=lambda t: -tiers[t]["ops"]):
            entry = tiers[label]
            lines.append(f"  {label:<10} {entry['ops']:>12} "
                         f"{entry['sites']:>8}")
    fallbacks = {name[len("kernel.tier.fallback."):]: int(value)
                 for name, value in counters.items()
                 if name.startswith("kernel.tier.fallback.")}
    if fallbacks:
        shape = ", ".join(f"{reason}: {count}"
                          for reason, count in sorted(fallbacks.items()))
        lines.append(f"  fallbacks to the library: {shape}")
    if np_ops or np_bailouts:
        np_lanes = int(counters.get("kernel.tier.batch_np.lanes", 0))
        lines.append(f"  batched numpy tier: {np_ops} vector op(s), "
                     f"{np_lanes} lane-op(s), "
                     f"{np_bailouts} bailout(s) to the fused loops")
    return "\n".join(lines)


def render_unum_summary(data: dict) -> str:
    """Unum coprocessor telemetry, derived from the ``unum.*`` counters
    :func:`~repro.observability.metrics.absorb_unum_stats` emits (split
    cycle model, dynamic instruction counts, memory traffic, per-opcode
    g-layer ops).  Empty string when the run never used the unum
    backend."""
    counters = data.get("counters", {})
    instructions = int(counters.get("unum.instructions", 0))
    scalar = int(counters.get("unum.scalar_cycles", 0))
    coproc = int(counters.get("unum.coprocessor_cycles", 0))
    if not instructions and not scalar and not coproc:
        return ""
    lines = [f"unum coprocessor: {instructions} instruction(s), "
             f"{scalar} scalar + {coproc} coprocessor cycle(s)"]
    loads = int(counters.get("unum.loads", 0))
    stores = int(counters.get("unum.stores", 0))
    if loads or stores:
        lines.append(
            f"  memory: {loads} load(s) / "
            f"{int(counters.get('unum.bytes_loaded', 0))} B in, "
            f"{stores} store(s) / "
            f"{int(counters.get('unum.bytes_stored', 0))} B out")
    config = int(counters.get("unum.config_writes", 0))
    if config:
        lines.append(f"  g-layer config writes: {config}")
    ops = {name[len("unum.op."):]: int(value)
           for name, value in counters.items()
           if name.startswith("unum.op.")}
    if ops:
        header = f"  {'opcode':<12} {'count':>9}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for opcode in sorted(ops, key=lambda o: (-ops[o], o)):
            lines.append(f"  {opcode:<12} {ops[opcode]:>9}")
    return "\n".join(lines)


def render_service_summary(data: dict) -> str:
    """Compile/run daemon telemetry, derived from the ``service.*``
    counters ``vpfloat-serve`` emits (request traffic, dispatch
    coalescing, fault recovery, shared artifact-store hit rates).
    Empty string when the document is not a daemon's."""
    counters = data.get("counters", {})
    gauges = data.get("gauges", {})
    requests = int(counters.get("service.requests", 0))
    dispatches = int(counters.get("service.dispatches", 0))
    if not requests and not dispatches:
        return ""
    lines = [f"service: {requests} request(s) over "
             f"{int(counters.get('service.connections', 0))} "
             f"connection(s), {dispatches} dispatch(es)"]
    coalesced = int(counters.get("service.coalesced", 0))
    if coalesced:
        lines.append(f"  coalescing: {coalesced} request(s) batched "
                     f"into {int(counters.get('service.batches', 0))} "
                     f"dispatch(es)")
    ops = {name[len("service.op."):]: int(value)
           for name, value in counters.items()
           if name.startswith("service.op.")}
    if ops:
        lines.append("  ops: " + ", ".join(
            f"{op}={ops[op]}" for op in sorted(ops)))
    faults = {label: int(counters.get(f"service.{name}", 0))
              for label, name in (("deaths", "worker_deaths"),
                                  ("timeouts", "timeouts"),
                                  ("retries", "retries"),
                                  ("rejected", "rejected"),
                                  ("task failures", "task_failed"))}
    if any(faults.values()):
        lines.append("  faults: " + ", ".join(
            f"{label}={count}" for label, count in faults.items()
            if count))
    store = {name[len("service.store."):]: int(value)
             for name, value in counters.items()
             if name.startswith("service.store.")}
    if store:
        hits = store.get("memory_hits", 0) + store.get("disk_hits", 0)
        lookups = hits + store.get("misses", 0)
        line = (f"  store: {hits}/{lookups} hit(s)"
                if lookups else "  store: no lookups")
        if lookups:
            line += f" ({100.0 * hits / lookups:.0f}%)"
        extras = [f"{name}={store[name]}" for name in
                  ("stores", "evictions", "errors") if store.get(name)]
        if extras:
            line += ", " + ", ".join(extras)
        lines.append(line)
    entries = gauges.get("service.store.entries")
    if entries is not None:
        lines.append(f"  store occupancy: {int(entries)} entry(ies), "
                     f"{int(gauges.get('service.store.bytes', 0))} B")
    return "\n".join(lines)


def render_ledger_summary(path: str) -> str:
    """A digest of a run-ledger file: record counts per event kind and
    the distinct benchmark keys recorded."""
    from .ledger import comparison_key, read_ledger

    records, problems = read_ledger(path)
    if not records:
        text = "ledger: no data (empty file)" if not problems else \
            f"ledger: no data ({len(problems)} unparsable line(s))"
        return "\n".join([text] + [f"  SKIPPED {p}" for p in problems])
    by_event: dict = {}
    keys = set()
    for record in records:
        event = record.get("event", "?")
        by_event[event] = by_event.get(event, 0) + 1
        key = comparison_key(record)
        if key is not None:
            keys.add(key)
    shape = ", ".join(f"{count} {event}"
                      for event, count in sorted(by_event.items()))
    lines = [f"ledger: {len(records)} record(s) ({shape})"]
    for key in sorted(keys, key=str):
        label = "/".join(str(part) for part in key if part is not None)
        lines.append(f"  {label}")
    for problem in problems:
        lines.append(f"  SKIPPED {problem}")
    return "\n".join(lines)


def _load(path: str):
    with open(path) as handle:
        return json.load(handle)


def _kind(data) -> str:
    if isinstance(data, dict) and "traceEvents" in data:
        return "trace"
    if isinstance(data, dict) and "schema" in data and "event" in data:
        return "ledger"
    if isinstance(data, dict) and ("counters" in data
                                   or "gauges" in data
                                   or "histograms" in data
                                   or "format" in data
                                   or not data):
        # An empty object is a metrics dump that recorded nothing.
        return "metrics"
    raise ValidationError("unrecognized telemetry artifact (expected a "
                          "metrics, Chrome trace, or run-ledger JSON "
                          "document)")


# ----------------------------------------------------------------- #
# CLI
# ----------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vpfloat-stats",
        description="Render or validate saved vpfloat telemetry "
                    "artifacts (--metrics-out / --trace files and "
                    "run-ledger JSONL files). "
                    "'vpfloat-stats compare A B' gates a candidate "
                    "ledger against a baseline (exit 3 on regression).",
    )
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="metrics, trace, or run-ledger file(s)")
    parser.add_argument("--validate", action="store_true",
                        help="validate schemas only (exit 1 on failure)")
    parser.add_argument("--json", action="store_true",
                        help="echo the parsed document instead of the "
                             "text report")
    return parser


def build_compare_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vpfloat-stats compare",
        description="Noise-aware A/B comparison of two run ledgers. "
                    "Deterministic model metrics (cycles, instructions, "
                    "traffic) gate exactly; wall-clock gates on "
                    "median-of-k with a MAD allowance, and only when "
                    "both ledgers came from the same host. Exits 3 on "
                    "regression, 1 on unusable input, else 0.",
    )
    parser.add_argument("baseline", help="baseline ledger (JSONL)")
    parser.add_argument("candidate", help="candidate ledger (JSONL)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable comparison report")
    parser.add_argument("--wall-mad-factor", type=float, default=5.0,
                        help="wall allowance: this many baseline MADs "
                             "above the baseline median (default 5)")
    parser.add_argument("--wall-rel-floor", type=float, default=0.10,
                        help="minimum relative wall allowance "
                             "(default 0.10 = 10%%)")
    parser.add_argument("--det-rel-tol", type=float, default=0.0,
                        help="relative slack on deterministic metrics "
                             "(default 0: the model is bit-exact)")
    parser.add_argument("--gate-wall", choices=("auto", "on", "off"),
                        default="auto",
                        help="gate wall metrics: auto = only when both "
                             "ledgers share a hostname (default)")
    parser.add_argument("--require-overlap", action="store_true",
                        help="fail (exit 1) when the ledgers share no "
                             "comparable benchmark keys -- CI uses this "
                             "so an empty baseline cannot silently pass")
    return parser


def main(argv=None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into head/less that exited early: not an error.
        return 0


def _compare_main(argv: List[str]) -> int:
    from .ledger import LedgerError, compare_ledgers, read_ledger

    args = build_compare_parser().parse_args(argv)
    loaded = {}
    for path in (args.baseline, args.candidate):
        try:
            records, problems = read_ledger(path)
        except (OSError, UnicodeDecodeError) as error:
            print(f"{path}: {error}", file=sys.stderr)
            return 1
        for problem in problems:
            print(f"{path}: skipped {problem}", file=sys.stderr)
        loaded[path] = records
    gate_wall = {"auto": None, "on": True, "off": False}[args.gate_wall]
    try:
        regressions, improvements, compared, skipped = compare_ledgers(
            loaded[args.baseline], loaded[args.candidate],
            wall_mad_factor=args.wall_mad_factor,
            wall_rel_floor=args.wall_rel_floor,
            deterministic_rel_tol=args.det_rel_tol,
            gate_wall=gate_wall)
    except LedgerError as error:
        print(str(error), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps({
            "baseline": args.baseline,
            "candidate": args.candidate,
            "compared": compared,
            "regressions": [{
                "key": list(r.key), "metric": r.metric,
                "baseline": r.baseline, "candidate": r.candidate,
                "threshold": r.threshold, "kind": r.kind,
            } for r in regressions],
            "improvements": [{
                "key": list(r.key), "metric": r.metric,
                "baseline": r.baseline, "candidate": r.candidate,
            } for r in improvements],
            "unmatched_keys": [list(key) for key in skipped],
        }, indent=2, sort_keys=True))
    else:
        print(f"compared {compared} metric(s) across ledgers: "
              f"{len(regressions)} regression(s), "
              f"{len(improvements)} improvement(s), "
              f"{len(skipped)} unmatched key(s)")
        for regression in regressions:
            print(f"  REGRESSION {regression.render()}")
        for improvement in improvements:
            print(f"  improved   {improvement.render()}")
        for key in skipped:
            label = "/".join(str(p) for p in key if p is not None)
            print(f"  unmatched  {label}")
    if args.require_overlap and compared == 0:
        print("no comparable benchmark keys between the two ledgers",
              file=sys.stderr)
        return 1
    return 3 if regressions else 0


def _main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    # Subcommand dispatch by peeking, so the original positional-files
    # usage ('vpfloat-stats m.json t.json') keeps working unchanged.
    if argv and argv[0] == "compare":
        return _compare_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    status = 0
    for path in args.files:
        try:
            try:
                data = _load(path)
                kind = _kind(data)
            except json.JSONDecodeError:
                # Multi-line file: not a JSON document, maybe a JSONL
                # run ledger -- the strict read below decides.
                data, kind = None, "ledger"
            if kind == "trace":
                validate_trace_document(data)
            elif kind == "metrics":
                validate_metrics_document(data)
            else:
                from .ledger import LedgerError, read_ledger

                if args.validate:
                    # Validation is strict; the render path below is
                    # lenient (a crashed writer's torn line must not
                    # hide the rest of the history).
                    try:
                        read_ledger(path, strict=True)
                    except LedgerError as error:
                        raise ValidationError(str(error)) from None
                else:
                    read_ledger(path)  # surfaces OSError only
        except (OSError, json.JSONDecodeError, ValidationError) as error:
            print(f"{path}: INVALID: {error}", file=sys.stderr)
            status = 1
            continue
        if args.validate:
            print(f"{path}: OK ({kind})")
            continue
        if len(args.files) > 1:
            print(f"== {path} ==")
        if args.json:
            if kind == "ledger":
                from .ledger import read_ledger

                records, _ = read_ledger(path)
                print(json.dumps(records, indent=2, sort_keys=True))
            else:
                print(json.dumps(data, indent=2, sort_keys=True))
        elif kind == "trace":
            print(render_trace_summary(data))
        elif kind == "ledger":
            print(render_ledger_summary(path))
        else:
            registry = MetricsRegistry.from_dict(data)
            if not (registry.counters or registry.gauges
                    or registry.histograms):
                print("metrics: no data (empty document)")
                continue
            print(registry.render())
            for section in (render_codegen_summary(data),
                            render_kernel_tier_summary(data),
                            render_batched_summary(data),
                            render_validation_summary(data),
                            render_unum_summary(data),
                            render_service_summary(data)):
                if section:
                    print()
                    print(section)
    return status


if __name__ == "__main__":
    sys.exit(main())
