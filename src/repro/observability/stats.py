"""``vpfloat-stats``: render and validate saved telemetry artifacts.

Pretty-print a metrics file produced by ``--metrics-out``::

    vpfloat-stats m.json

Summarize a Chrome trace produced by ``--trace``::

    vpfloat-stats t.json           # file kind is auto-detected

Validate artifact schemas (CI uses this; exits non-zero on failure)::

    vpfloat-stats --validate t.json m.json

(equivalently ``python -m repro.observability.stats ...``).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List

from .metrics import MetricsRegistry

#: Chrome trace phases this stack emits (span, instant, counter, meta).
_TRACE_PHASES = {"X", "i", "C", "M"}


class ValidationError(ValueError):
    """A telemetry artifact failed schema validation."""


# ----------------------------------------------------------------- #
# Schema validation
# ----------------------------------------------------------------- #

def validate_metrics_document(data) -> None:
    """Raise :class:`ValidationError` unless ``data`` is a well-formed
    metrics document (the ``--metrics-out`` schema)."""
    if not isinstance(data, dict):
        raise ValidationError("metrics document must be a JSON object")
    for section in ("counters", "gauges", "histograms"):
        if section not in data:
            raise ValidationError(f"metrics document missing {section!r}")
        if not isinstance(data[section], dict):
            raise ValidationError(f"metrics section {section!r} must be "
                                  f"an object")
    for name, value in data["counters"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"counter {name!r} is not numeric")
    for name, value in data["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValidationError(f"gauge {name!r} is not numeric")
    for name, hist in data["histograms"].items():
        if not isinstance(hist, dict):
            raise ValidationError(f"histogram {name!r} must be an object")
        for bucket, count in hist.items():
            try:
                float(bucket)
            except ValueError:
                raise ValidationError(
                    f"histogram {name!r} bucket {bucket!r} is not numeric"
                ) from None
            if not isinstance(count, int) or count < 0:
                raise ValidationError(
                    f"histogram {name!r} count for {bucket!r} must be a "
                    f"non-negative integer")


def validate_trace_document(data) -> None:
    """Raise :class:`ValidationError` unless ``data`` is a well-formed
    Chrome trace-event document with sanely nested spans."""
    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValidationError("trace document must be an object with a "
                              "'traceEvents' list")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValidationError("'traceEvents' must be a list")
    spans = []
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValidationError(f"event #{i} is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                raise ValidationError(f"event #{i} missing {key!r}")
        ph = event["ph"]
        if ph not in _TRACE_PHASES:
            raise ValidationError(f"event #{i} has unknown phase {ph!r}")
        if ph != "M" and "ts" not in event:
            raise ValidationError(f"event #{i} ({ph}) missing 'ts'")
        if ph == "X":
            if "dur" not in event or event["dur"] < 0:
                raise ValidationError(
                    f"span #{i} ({event['name']!r}) missing or negative "
                    f"'dur'")
            if event["ts"] < 0:
                raise ValidationError(
                    f"span #{i} ({event['name']!r}) has negative 'ts'")
            spans.append(event)
    _validate_nesting(spans)


def _validate_nesting(spans: List[dict]) -> None:
    """Complete events on one (pid, tid) track must nest or be disjoint;
    partial overlap means broken begin/end pairing."""
    tracks = {}
    for span in spans:
        tracks.setdefault((span["pid"], span["tid"]), []).append(span)
    for (pid, tid), track in tracks.items():
        # Sort by start time, longest-first on ties (parents first).
        track.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack: List[dict] = []
        for span in track:
            while stack and span["ts"] >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                parent = stack[-1]
                # Tolerate sub-microsecond clock jitter at the edges.
                if span["ts"] + span["dur"] > \
                        parent["ts"] + parent["dur"] + 1.0:
                    raise ValidationError(
                        f"span {span['name']!r} overlaps parent "
                        f"{parent['name']!r} without nesting "
                        f"(pid={pid}, tid={tid})")
            stack.append(span)


# ----------------------------------------------------------------- #
# Rendering
# ----------------------------------------------------------------- #

def render_trace_summary(data: dict) -> str:
    """A text digest of a trace: span counts and total time per
    (category, name), hottest first."""
    events = data.get("traceEvents", [])
    totals = {}
    counts = {}
    pids = set()
    for event in events:
        if event.get("ph") != "X":
            continue
        pids.add(event["pid"])
        key = (event.get("cat", "?"), event["name"])
        totals[key] = totals.get(key, 0.0) + event["dur"]
        counts[key] = counts.get(key, 0) + 1
    lines = [f"trace: {len(events)} events, "
             f"{sum(counts.values())} spans, {len(pids)} process(es)"]
    header = f"  {'category':<10} {'span':<36} {'count':>7} {'total ms':>10}"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for key in sorted(totals, key=lambda k: -totals[k]):
        cat, name = key
        lines.append(f"  {cat:<10} {name:<36} {counts[key]:>7} "
                     f"{totals[key] / 1e3:>10.3f}")
    return "\n".join(lines)


def render_codegen_summary(data: dict) -> str:
    """Per-function jit-codegen status, derived from the
    ``codegen.fn.<name>.jit`` / ``codegen.fn.<name>.fallback.<reason>``
    counters. Empty string when the run never touched the jit engine."""
    counters = data.get("counters", {})
    rows = {}
    for name, value in counters.items():
        if not name.startswith("codegen.fn."):
            continue
        parts = name[len("codegen.fn."):].split(".")
        if len(parts) < 2:
            continue
        func = parts[0]
        if parts[1] == "jit":
            rows[func] = ("jit", int(value), "")
        elif parts[1] == "fallback":
            reason = ".".join(parts[2:]) or "?"
            rows[func] = ("fallback", int(value), reason)
    if not rows:
        return ""
    jitted = sum(1 for status, _, _ in rows.values() if status == "jit")
    lines = [f"codegen (jit engine): {len(rows)} function(s), "
             f"{jitted} specialized, {len(rows) - jitted} fell back"]
    header = f"  {'function':<24} {'status':<10} {'calls':>7}  reason"
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for func in sorted(rows, key=lambda f: (rows[f][0] != "fallback", f)):
        status, calls, reason = rows[func]
        lines.append(f"  {func:<24} {status:<10} {calls:>7}  "
                     f"{reason}".rstrip())
    return "\n".join(lines)


def render_batched_summary(data: dict) -> str:
    """Batched-execution telemetry, derived from the ``batch.*``
    counters and histograms :class:`~repro.runtime.batch.BatchContext`
    flushes after every batched run (executions, lanes, fused ops,
    scalar fallbacks, divergence bailouts, and the batch-size and
    lane-occupancy histograms).  Empty string when the run never used
    the batched engine."""
    counters = data.get("counters", {})
    executions = int(counters.get("batch.executions", 0))
    if not executions:
        return ""
    lanes = int(counters.get("batch.lanes", 0))
    ops = int(counters.get("batch.ops", 0))
    fallbacks = int(counters.get("batch.scalar_fallbacks", 0))
    lane_ops = int(counters.get("batch.fast_lanes", 0)) + fallbacks
    lines = [f"batched execution: {executions} batch run(s), "
             f"{lanes} lane(s), {ops} fused op(s)"]
    if ops:
        share = (100.0 * fallbacks / lane_ops) if lane_ops else 0.0
        lines.append(f"  scalar fallbacks: {fallbacks} lane-op(s)"
                     f" ({share:.1f}% of lane-ops)")
    bailouts = int(counters.get("batch.divergence_bailouts", 0))
    serial_lanes = int(counters.get("batch.serial_fallback_lanes", 0))
    if bailouts or serial_lanes:
        lines.append(f"  divergence bailouts: {bailouts}, "
                     f"serial-fallback lanes: {serial_lanes}")
    histograms = data.get("histograms", {})
    occupancy = histograms.get("batch.occupancy", {})
    if occupancy:
        lines.append("  occupancy (fast lanes per fused op):")
        header = f"    {'bucket':>8} {'ops':>10}"
        lines.append(header)
        lines.append("    " + "-" * (len(header) - 4))
        for bucket in sorted(occupancy, key=float, reverse=True):
            lines.append(f"    {f'{float(bucket):.0f}%':>8} "
                         f"{int(occupancy[bucket]):>10}")
    sizes = histograms.get("batch.size", {})
    if sizes:
        shape = ", ".join(f"{float(b):.0f}x{int(c)}"
                          for b, c in sorted(sizes.items(),
                                             key=lambda kv: float(kv[0])))
        lines.append(f"  batch sizes (lanes x runs): {shape}")
    return "\n".join(lines)


def render_validation_summary(data: dict) -> str:
    """Translation-validation outcomes, derived from the ``validate.*``
    counters the harness emits (certificates by kind, per-check
    pass/fail, fuzzer and minimizer traffic).  Empty string when the
    run performed no validation."""
    counters = data.get("counters", {})
    certificates = int(counters.get("validate.certificates", 0))
    fuzzed = int(counters.get("validate.fuzz.programs", 0))
    if not certificates and not fuzzed:
        return ""
    passed = int(counters.get("validate.passed", 0))
    failed = int(counters.get("validate.failed", 0))
    lines = [f"validation: {certificates} certificate(s), "
             f"{passed} passed, {failed} failed"]
    checks = {}
    for name, value in counters.items():
        if not name.startswith("validate.check."):
            continue
        parts = name[len("validate.check."):].rsplit(".", 1)
        if len(parts) != 2 or parts[1] not in ("passed", "failed"):
            continue
        label = parts[0]
        ok, bad = checks.get(label, (0, 0))
        if parts[1] == "passed":
            checks[label] = (ok + int(value), bad)
        else:
            checks[label] = (ok, bad + int(value))
    if checks:
        header = f"  {'check':<28} {'passed':>8} {'failed':>8}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for label in sorted(checks):
            ok, bad = checks[label]
            lines.append(f"  {label:<28} {ok:>8} {bad:>8}")
    if fuzzed:
        lines.append(f"  fuzzer: {fuzzed} program(s) cross-checked, "
                     f"{int(counters.get('validate.fuzz.failures', 0))} "
                     f"failure(s)")
    minimized = int(counters.get("validate.minimize.runs", 0))
    if minimized:
        lines.append(f"  minimizer: {minimized} run(s), "
                     f"{int(counters.get('validate.minimize.ops_removed', 0))} "
                     f"op(s) removed, "
                     f"{int(counters.get('validate.minimize.evaluations', 0))} "
                     f"predicate evaluation(s)")
    return "\n".join(lines)


def _load(path: str):
    with open(path) as handle:
        return json.load(handle)


def _kind(data) -> str:
    if isinstance(data, dict) and "traceEvents" in data:
        return "trace"
    if isinstance(data, dict) and "counters" in data:
        return "metrics"
    raise ValidationError("unrecognized telemetry artifact (expected a "
                          "metrics or Chrome trace JSON document)")


# ----------------------------------------------------------------- #
# CLI
# ----------------------------------------------------------------- #

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vpfloat-stats",
        description="Render or validate saved vpfloat telemetry "
                    "artifacts (--metrics-out / --trace files).",
    )
    parser.add_argument("files", nargs="+", metavar="FILE",
                        help="metrics or trace JSON file(s)")
    parser.add_argument("--validate", action="store_true",
                        help="validate schemas only (exit 1 on failure)")
    parser.add_argument("--json", action="store_true",
                        help="echo the parsed document instead of the "
                             "text report")
    return parser


def main(argv=None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Output piped into head/less that exited early: not an error.
        return 0


def _main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    status = 0
    for path in args.files:
        try:
            data = _load(path)
            kind = _kind(data)
            if kind == "trace":
                validate_trace_document(data)
            else:
                validate_metrics_document(data)
        except (OSError, json.JSONDecodeError, ValidationError) as error:
            print(f"{path}: INVALID: {error}", file=sys.stderr)
            status = 1
            continue
        if args.validate:
            print(f"{path}: OK ({kind})")
            continue
        if len(args.files) > 1:
            print(f"== {path} ==")
        if args.json:
            print(json.dumps(data, indent=2, sort_keys=True))
        elif kind == "trace":
            print(render_trace_summary(data))
        else:
            print(MetricsRegistry.from_dict(data).render())
            codegen = render_codegen_summary(data)
            if codegen:
                print()
                print(codegen)
            batched = render_batched_summary(data)
            if batched:
                print()
                print(batched)
            validation = render_validation_summary(data)
            if validation:
                print()
                print(validation)
    return status


if __name__ == "__main__":
    sys.exit(main())
