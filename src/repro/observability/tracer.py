"""Hierarchical span tracing with Chrome trace-event export.

:class:`Tracer` records *spans* -- named, timed intervals arranged in a
strict stack per thread -- plus instant marks and counter samples, and
serializes everything to the Chrome trace-event JSON format, directly
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.

The tracer is deliberately dependency-free and append-only: an event is
one small dict, a span costs two clock reads and one append.  Nothing
here charges modeled cycles or mutates interpreter state, so a traced
run produces bit-identical kernel outputs and cycle reports to an
untraced one.

Cross-process merging: worker shards build their own tracer, ship
``tracer.events`` (plain list of dicts) back over pickle, and the
parent calls :meth:`Tracer.extend`.  Timestamps come from
``time.perf_counter`` which is CLOCK_MONOTONIC on Linux -- a system-wide
clock -- so parent and worker spans line up on one timeline; export
normalizes all timestamps against the earliest event.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Dict, List, Optional

#: Trace categories used across the stack (for Perfetto filtering).
CAT_COMPILE = "compile"
CAT_PASS = "pass"
CAT_RUNTIME = "runtime"
CAT_CACHE = "cache"
CAT_WORKER = "worker"
CAT_POOL = "pool"
CAT_VALIDATE = "validate"


class Span:
    """One open interval; ``args`` may be filled until the span closes."""

    __slots__ = ("name", "cat", "start_us", "args", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, cat: str,
                 args: Optional[dict]):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.start_us = time.perf_counter() * 1e6
        self.args: dict = args if args is not None else {}

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer.finish(self)


class Tracer:
    """Collects trace events for one process.

    Events live in :attr:`events` as plain JSON-ready dicts (picklable,
    mergeable).  ``pid`` defaults to the OS process id so merged
    multi-process traces render as separate process tracks.
    """

    def __init__(self, pid: Optional[int] = None,
                 process_name: Optional[str] = None):
        self.pid = os.getpid() if pid is None else pid
        self.process_name = process_name or f"vpfloat pid {self.pid}"
        self.events: List[dict] = []
        #: Open-span depth per thread id (used for nesting sanity).
        self._depth: Dict[int, int] = {}

    # ------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------ #

    def _tid(self) -> int:
        # Chrome wants small-ish ints; thread idents are stable per
        # thread for the life of the process.
        return threading.get_ident() % 1_000_000

    def span(self, name: str, cat: str = CAT_RUNTIME,
             args: Optional[dict] = None) -> Span:
        """Open a span; use as a context manager or call finish()."""
        tid = self._tid()
        self._depth[tid] = self._depth.get(tid, 0) + 1
        return Span(self, name, cat, args)

    def finish(self, span: Span) -> None:
        end_us = time.perf_counter() * 1e6
        tid = self._tid()
        self._depth[tid] = max(0, self._depth.get(tid, 1) - 1)
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start_us,
            "dur": max(0.0, end_us - span.start_us),
            "pid": self.pid,
            "tid": tid,
        }
        if span.args:
            event["args"] = span.args
        self.events.append(event)

    def instant(self, name: str, cat: str = CAT_RUNTIME,
                args: Optional[dict] = None) -> None:
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": time.perf_counter() * 1e6,
            "pid": self.pid,
            "tid": self._tid(),
        }
        if args:
            event["args"] = args
        self.events.append(event)

    def counter(self, name: str, values: Dict[str, float],
                cat: str = CAT_POOL) -> None:
        """One sample of a multi-series counter track."""
        self.events.append({
            "name": name,
            "cat": cat,
            "ph": "C",
            "ts": time.perf_counter() * 1e6,
            "pid": self.pid,
            "tid": 0,
            "args": dict(values),
        })

    # ------------------------------------------------------------ #
    # Merging / export
    # ------------------------------------------------------------ #

    def extend(self, events: List[dict]) -> None:
        """Splice in events from another tracer (e.g. a worker shard)."""
        self.events.extend(events)

    def to_chrome(self) -> dict:
        """The Chrome trace-event document (``traceEvents`` form)."""
        if self.events:
            t0 = min(e["ts"] for e in self.events)
        else:
            t0 = 0.0
        out: List[dict] = []
        pids = {}
        for e in self.events:
            pids.setdefault(e["pid"], None)
            shifted = dict(e)
            shifted["ts"] = e["ts"] - t0
            out.append(shifted)
        meta = []
        for pid in sorted(pids):
            name = self.process_name if pid == self.pid \
                else f"vpfloat worker pid {pid}"
            meta.append({"name": "process_name", "ph": "M", "pid": pid,
                         "tid": 0, "args": {"name": name}})
        return {"traceEvents": meta + out, "displayTimeUnit": "ms"}

    def export(self, path) -> None:
        """Write the Chrome trace JSON to ``path``."""
        document = self.to_chrome()
        with open(path, "w") as handle:
            json.dump(document, handle)
            handle.write("\n")
