"""Persistent run ledger: append-only, schema-versioned JSONL history.

Every compile and run event of the stack evaporated with the process
until now -- Perfetto traces and metrics dumps are per-invocation
artifacts, not history.  The ledger is the durable substrate: one JSONL
file that every :class:`~repro.core.CompilerDriver` compile, every
``program.run``/``run_batch``, every harness sweep point and every
benchmark appends one self-describing record to, so performance has a
trajectory that regression gating (``vpfloat-stats compare``) and the
autotuner roadmap items can read.

Design constraints, in order:

* **Append-only and torn-line free under multiprocess writers.**  Each
  record is one ``\\n``-terminated JSON line written with a single
  ``os.write`` to an ``O_APPEND`` descriptor.  POSIX guarantees the
  kernel serializes O_APPEND writes to regular files, so ``run_grid``
  workers sharing one ledger interleave whole lines, never bytes.
* **Schema-versioned.**  Every record carries ``schema`` (see
  :data:`LEDGER_SCHEMA_VERSION`); :func:`validate_record` rejects
  malformed records and readers skip (and count) lines they cannot
  parse instead of dying on a half-written tail.
* **Zero overhead when disabled.**  Producers consult
  :func:`current_ledger` exactly once per compile/run boundary (never
  inside instruction loops); with no ledger installed that is a single
  ``is not None`` check, preserving the <2% disabled-observability
  floor asserted by ``bench_observability_overhead.py``.

The reproducibility envelope (:func:`reproducibility_envelope`) is
shared verbatim with the benchmark JSON artifacts so ledgers and bench
dumps identify their origin (git revision, interpreter, CPU count,
host) the same way.
"""

from __future__ import annotations

import json
import os
import platform
import socket
import subprocess
import sys
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

#: Bump when the record envelope changes incompatibly.
LEDGER_SCHEMA_VERSION = 1

#: Environment override installing a process-default ledger path; the
#: parallel engine's workers honour it so one sweep shares one file.
LEDGER_ENV = "VPFLOAT_LEDGER"

#: Record kinds the schema admits.  ``service`` records are written by
#: the compile/run daemon (:mod:`repro.service`): one per client
#: request (op, coalesced lane count, attempts, outcome) plus fault
#: events (worker deaths, request timeouts).
EVENTS = ("compile", "run", "batch_run", "eval_point", "bench",
          "service")

_NUMERIC = (int, float)


class LedgerError(ValueError):
    """A ledger record or file failed validation."""


# ----------------------------------------------------------------- #
# Reproducibility envelope (shared with benchmark JSON artifacts)
# ----------------------------------------------------------------- #

_GIT_REV = None


def _git_revision() -> Optional[str]:
    """Best-effort ``git rev-parse HEAD`` of the source tree, cached."""
    global _GIT_REV
    if _GIT_REV is None:
        try:
            root = os.path.dirname(os.path.abspath(__file__))
            _GIT_REV = subprocess.run(
                ["git", "rev-parse", "HEAD"], cwd=root,
                capture_output=True, text=True, timeout=5,
            ).stdout.strip() or "unknown"
        except Exception:
            _GIT_REV = "unknown"
    return _GIT_REV


def bench_floor_scale() -> float:
    """``$VPFLOAT_BENCH_FLOOR_SCALE`` as a float (default 1.0).

    The perf benches multiply their speedup floors by this, so loaded
    or throttled CI runners can relax the gates (e.g. ``0.5``) without
    editing the floors out of the benches; an unset or malformed value
    leaves the floors untouched."""
    raw = os.environ.get("VPFLOAT_BENCH_FLOOR_SCALE")
    if not raw:
        return 1.0
    try:
        scale = float(raw)
    except ValueError:
        return 1.0
    return scale if scale > 0 else 1.0


def reproducibility_envelope() -> dict:
    """Who/what/where metadata stamped into ledgers and bench JSON.

    One common shape for both artifact families so a bench dump and the
    ledger records of the same session can be joined on it.
    """
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:
        numpy_version = None
    try:
        import gmpy2
        gmpy_version = gmpy2.version()
    except Exception:
        gmpy_version = None
    return {
        "schema": LEDGER_SCHEMA_VERSION,
        "git_rev": _git_revision(),
        "python": "%d.%d.%d" % sys.version_info[:3],
        "numpy": numpy_version,
        "gmpy": gmpy_version,
        "platform": platform.platform(),
        "hostname": socket.gethostname(),
        "cpu_count": os.cpu_count(),
        "timestamp": time.time(),
    }


# ----------------------------------------------------------------- #
# Writer
# ----------------------------------------------------------------- #

class RunLedger:
    """Append-only JSONL writer over one ledger file.

    The descriptor is opened ``O_APPEND`` on first use and each record
    is one ``os.write`` of a full line, so concurrent writers (the
    ``run_grid`` worker pool, parallel CI shards) can share a file with
    no locking and no torn lines.  The instance is picklable across
    ``fork``/``spawn`` (the descriptor is reopened per process).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._fd: Optional[int] = None
        self._pid: Optional[int] = None
        #: Stamped into every record; computed once per process.
        self._host: Optional[dict] = None
        self.records_written = 0

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_fd"] = None
        state["_pid"] = None
        state["_host"] = None
        return state

    def _descriptor(self) -> int:
        pid = os.getpid()
        if self._fd is None or self._pid != pid:
            # A forked child must not share the parent's counter state;
            # O_APPEND makes the shared file offset a non-issue.
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._fd = os.open(self.path,
                               os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                               0o644)
            self._pid = pid
        return self._fd

    def _host_meta(self) -> dict:
        # Keyed on the pid so a fork-inherited instance re-stamps with
        # the child's identity instead of the parent's cached one.
        if self._host is None or self._host.get("pid") != os.getpid():
            envelope = reproducibility_envelope()
            envelope.pop("schema", None)
            envelope.pop("timestamp", None)
            envelope["pid"] = os.getpid()
            self._host = envelope
        return self._host

    def record(self, event: str, **fields) -> dict:
        """Append one record; returns the dict that was written."""
        if event not in EVENTS:
            raise LedgerError(f"unknown ledger event {event!r}; "
                              f"choose from {EVENTS}")
        entry = {
            "schema": LEDGER_SCHEMA_VERSION,
            "event": event,
            "ts": time.time(),
            "host": self._host_meta(),
        }
        entry.update(fields)
        line = json.dumps(entry, sort_keys=True,
                          separators=(",", ":")) + "\n"
        os.write(self._descriptor(), line.encode("utf-8"))
        self.records_written += 1
        return entry

    def close(self) -> None:
        if self._fd is not None:
            try:
                os.close(self._fd)
            except OSError:
                pass
            self._fd = None
            self._pid = None


# ----------------------------------------------------------------- #
# Process-global installation (mirrors the tracer/metrics hooks)
# ----------------------------------------------------------------- #

_LEDGER: Optional[RunLedger] = None
_ENV_CHECKED = False


def current_ledger() -> Optional[RunLedger]:
    """The installed ledger, or None when run recording is disabled.

    ``$VPFLOAT_LEDGER`` (a file path) installs a process default the
    first time anyone asks -- this is how ``run_grid`` worker processes
    under the ``spawn`` start method find the sweep's shared ledger.
    """
    global _LEDGER, _ENV_CHECKED
    if _LEDGER is None and not _ENV_CHECKED:
        _ENV_CHECKED = True
        path = os.environ.get(LEDGER_ENV)
        if path:
            _LEDGER = RunLedger(path)
    return _LEDGER


def install_ledger(ledger: Optional[RunLedger]) -> Optional[RunLedger]:
    """Install ``ledger`` as the process default; returns the previous
    one so callers can restore it."""
    global _LEDGER, _ENV_CHECKED
    previous = _LEDGER
    _LEDGER = ledger
    _ENV_CHECKED = True
    return previous


@contextmanager
def ledger_session(path):
    """Scoped ledger: installs a fresh writer over ``path``, restores
    the previous configuration (and closes the writer) on exit."""
    ledger = RunLedger(path)
    previous = install_ledger(ledger)
    try:
        yield ledger
    finally:
        install_ledger(previous)
        ledger.close()


def report_fields(report) -> dict:
    """The CostReport slice every run-shaped record embeds."""
    return {
        "cycles": report.cycles,
        "instructions": report.instructions,
        "mpfr_calls": report.mpfr_calls,
        "heap_allocations": report.heap_allocations,
        "llc_misses": report.llc_misses,
        "dram_bytes": report.dram_bytes,
        "parallel_cycles": report.parallel_cycles,
        "by_category": dict(report.by_category),
    }


# ----------------------------------------------------------------- #
# Reader / validation
# ----------------------------------------------------------------- #

def validate_record(record) -> None:
    """Raise :class:`LedgerError` unless ``record`` is a well-formed
    ledger record under the current schema."""
    if not isinstance(record, dict):
        raise LedgerError("ledger record must be a JSON object")
    schema = record.get("schema")
    if not isinstance(schema, int) or schema < 1:
        raise LedgerError("ledger record missing integer 'schema'")
    if schema > LEDGER_SCHEMA_VERSION:
        raise LedgerError(f"ledger record schema {schema} is newer than "
                          f"this reader ({LEDGER_SCHEMA_VERSION})")
    if record.get("event") not in EVENTS:
        raise LedgerError(f"ledger record has unknown event "
                          f"{record.get('event')!r}")
    if not isinstance(record.get("ts"), _NUMERIC):
        raise LedgerError("ledger record missing numeric 'ts'")
    if not isinstance(record.get("host"), dict):
        raise LedgerError("ledger record missing 'host' object")
    for field in ("cycles", "instructions", "wall_seconds"):
        value = record.get(field)
        if value is not None and (not isinstance(value, _NUMERIC)
                                  or isinstance(value, bool)):
            raise LedgerError(f"ledger field {field!r} is not numeric")


def read_ledger(path, strict: bool = False
                ) -> Tuple[List[dict], List[str]]:
    """Parse a ledger file; returns ``(records, problems)``.

    Unparsable or invalid lines are skipped and described in
    ``problems`` (``strict=True`` raises on the first one instead) --
    a crashed writer's half line must never invalidate the history
    before it.
    """
    records: List[dict] = []
    problems: List[str] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
                validate_record(record)
            except (json.JSONDecodeError, LedgerError) as error:
                if strict:
                    raise LedgerError(
                        f"{path}:{lineno}: {error}") from None
                problems.append(f"line {lineno}: {error}")
                continue
            records.append(record)
    return records, problems


# ----------------------------------------------------------------- #
# Regression comparison (the gate behind ``vpfloat-stats compare``)
# ----------------------------------------------------------------- #

#: Metrics that are deterministic model outputs: any change is real,
#: no noise allowance applies.
DETERMINISTIC_METRICS = ("cycles", "instructions", "mpfr_calls",
                         "llc_misses", "dram_bytes")

#: Host wall-clock metrics: gated with a median + MAD noise allowance,
#: and only when both ledgers were written on the same host.
WALL_METRICS = ("wall_seconds",)


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _mad(values: List[float], center: float) -> float:
    return _median([abs(v - center) for v in values])


def comparison_key(record: dict) -> Optional[tuple]:
    """The benchmark identity of a record: what must match between two
    ledgers for their samples to be comparable."""
    if record.get("event") not in ("run", "batch_run", "eval_point",
                                   "bench"):
        return None
    return (
        record.get("event"),
        record.get("kernel") or record.get("function"),
        record.get("ftype"),
        record.get("n"),
        record.get("backend"),
        record.get("engine"),
        record.get("lanes"),
        record.get("opt_level"),
    )


class Regression:
    """One metric of one benchmark key got worse from A to B."""

    def __init__(self, key: tuple, metric: str, baseline: float,
                 candidate: float, threshold: float, kind: str):
        self.key = key
        self.metric = metric
        self.baseline = baseline
        self.candidate = candidate
        self.threshold = threshold
        self.kind = kind  # "deterministic" | "wall"

    @property
    def ratio(self) -> float:
        if not self.baseline:
            return float("inf")
        return self.candidate / self.baseline

    def render(self) -> str:
        label = "/".join(str(p) for p in self.key if p is not None)
        return (f"{label}: {self.metric} {self.baseline:g} -> "
                f"{self.candidate:g} ({self.ratio:.3f}x, "
                f"threshold {self.threshold:g}, {self.kind})")


def _samples_by_key(records: Iterable[dict]
                    ) -> Dict[tuple, Dict[str, List[float]]]:
    grouped: Dict[tuple, Dict[str, List[float]]] = {}
    for record in records:
        key = comparison_key(record)
        if key is None:
            continue
        metrics = grouped.setdefault(key, {})
        for metric in DETERMINISTIC_METRICS + WALL_METRICS:
            value = record.get(metric)
            if isinstance(value, _NUMERIC) and not isinstance(value, bool):
                metrics.setdefault(metric, []).append(float(value))
    return grouped


def _same_host(a_records: List[dict], b_records: List[dict]) -> bool:
    def hosts(records):
        return {r.get("host", {}).get("hostname") for r in records
                if isinstance(r.get("host"), dict)}

    ha, hb = hosts(a_records), hosts(b_records)
    return bool(ha) and ha == hb


def compare_ledgers(baseline_records: List[dict],
                    candidate_records: List[dict],
                    wall_mad_factor: float = 5.0,
                    wall_rel_floor: float = 0.10,
                    deterministic_rel_tol: float = 0.0,
                    gate_wall: Optional[bool] = None):
    """Noise-aware A/B comparison of two ledgers.

    Returns ``(regressions, improvements, compared, skipped)`` where
    ``compared`` counts (key, metric) pairs examined and ``skipped``
    lists keys present in only one ledger.

    Deterministic model metrics (cycles, instructions, traffic) gate on
    the median with ``deterministic_rel_tol`` slack (default: exact --
    the model is bit-reproducible, so any growth is a real regression).
    Wall-clock metrics gate on median-of-k with a MAD-scaled allowance
    (``median_B > median_A + max(wall_mad_factor * MAD_A,
    wall_rel_floor * median_A)``) and only when both ledgers were
    written on the same host (``gate_wall`` overrides the
    auto-detection) -- cross-machine wall comparisons are reported as
    informational improvements/regressions never, gated never.
    """
    base = _samples_by_key(baseline_records)
    cand = _samples_by_key(candidate_records)
    if gate_wall is None:
        gate_wall = _same_host(baseline_records, candidate_records)
    regressions: List[Regression] = []
    improvements: List[Regression] = []
    compared = 0
    skipped = sorted(set(base) ^ set(cand))
    for key in sorted(set(base) & set(cand)):
        for metric, b_samples in sorted(base[key].items()):
            c_samples = cand[key].get(metric)
            if not c_samples:
                continue
            b_med = _median(b_samples)
            c_med = _median(c_samples)
            if metric in WALL_METRICS:
                if not gate_wall:
                    continue
                allowance = max(wall_mad_factor * _mad(b_samples, b_med),
                                wall_rel_floor * b_med)
                compared += 1
                threshold = b_med + allowance
                if c_med > threshold:
                    regressions.append(Regression(
                        key, metric, b_med, c_med, threshold, "wall"))
                elif c_med < b_med - allowance:
                    improvements.append(Regression(
                        key, metric, b_med, c_med, threshold, "wall"))
            else:
                compared += 1
                threshold = b_med * (1.0 + deterministic_rel_tol)
                if c_med > threshold:
                    regressions.append(Regression(
                        key, metric, b_med, c_med, threshold,
                        "deterministic"))
                elif c_med < b_med:
                    improvements.append(Regression(
                        key, metric, b_med, c_med, threshold,
                        "deterministic"))
    return regressions, improvements, compared, skipped
