"""IR-level profiler: cycles and wall time per IR instruction.

Two complementary views of where a program's time goes:

* :func:`profile_run` executes a compiled program on the **legacy
  reference walker** with a per-instruction hook and attributes both
  modeled cycles and measured wall time to every IR instruction
  executed, exactly: the self-cycle bookkeeping guarantees that the sum
  of all attributed cycles (instructions + the outer call-overhead
  pseudo-record) equals the run's ``CostReport.cycles`` to the cycle.
* :func:`sample_jit_run` executes on the **jit engine** at full speed
  while a sampling thread walks ``sys._current_frames()`` and resolves
  frames inside emitted ``<vpjit:...>`` modules back to IR locations
  through the line maps the emitter records into ``.vpcgen`` sidecars
  (:data:`repro.codegen.pyjit.LINE_MAPS`), reusing the jit engine's
  hot-block counters for exact block execution counts alongside the
  statistical wall samples.

Comparing the two per opcode (:func:`divergence`) flags where the cost
model and the host disagree -- an opcode taking a far larger share of
wall time than of modeled cycles is either under-modeled or hitting a
slow host path.  Both profiles export collapsed-stack flamegraphs
(``func;func;block:op <weight>`` lines, one stack per line) that
speedscope and Brendan Gregg's ``flamegraph.pl`` load directly.

Profiling never changes what a run computes or charges: the hook wraps
``_execute`` without touching accounting, and the sampler only reads
frames, so values and CostReports stay bit-identical to unprofiled
runs.
"""

from __future__ import annotations

import math
import sys
import threading
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "IRProfile",
    "OpcodeDivergence",
    "divergence",
    "profile_run",
    "sample_jit_run",
]

#: Pseudo-opcode for cycles charged outside any instruction (the
#: outermost function's call/ret overhead in the legacy walker).
OVERHEAD = "<overhead>"


class IRProfile:
    """Aggregated per-instruction attribution of one profiled run.

    ``records`` maps ``(function, block, inst_index, opcode)`` to
    ``[count, cycles, wall_seconds]``; ``stacks`` maps collapsed call
    paths (tuples of frame strings, leaf last) to the same triple.
    ``samples`` is 0 for exact profiles and the number of wall samples
    for sampled ones (whose ``cycles`` column is then 0).
    """

    def __init__(self, kind: str = "exact"):
        self.kind = kind
        self.records: Dict[tuple, List[float]] = {}
        self.stacks: Dict[Tuple[str, ...], List[float]] = {}
        self.total_cycles = 0
        self.total_wall = 0.0
        self.samples = 0
        #: Jit hot-block execution counts (sampled profiles only).
        self.block_counts: Dict[str, int] = {}
        #: The run's ExecutionResult (value/report/stdout), when the
        #: profiler drove the run itself.
        self.result = None

    # ---- accumulation ------------------------------------------- #

    def add(self, key: tuple, path: Tuple[str, ...],
            cycles: int, wall: float, count: int = 1) -> None:
        row = self.records.get(key)
        if row is None:
            self.records[key] = [count, cycles, wall]
        else:
            row[0] += count
            row[1] += cycles
            row[2] += wall
        srow = self.stacks.get(path)
        if srow is None:
            self.stacks[path] = [count, cycles, wall]
        else:
            srow[0] += count
            srow[1] += cycles
            srow[2] += wall

    # ---- views -------------------------------------------------- #

    def attributed_cycles(self) -> int:
        return sum(int(row[1]) for row in self.records.values())

    def by_opcode(self) -> Dict[str, List[float]]:
        """opcode -> [count, cycles, wall], instruction rows merged."""
        out: Dict[str, List[float]] = {}
        for (_, _, _, opcode), (count, cycles, wall) in \
                self.records.items():
            row = out.setdefault(opcode, [0, 0, 0.0])
            row[0] += count
            row[1] += cycles
            row[2] += wall
        return out

    def rows(self, limit: Optional[int] = None) -> List[tuple]:
        """(function, block, index, opcode, count, cycles, wall) sorted
        by the profile's primary weight, heaviest first."""
        weight = 1 if self.kind == "exact" else 2
        ordered = sorted(self.records.items(),
                         key=lambda kv: -kv[1][weight])
        if limit is not None:
            ordered = ordered[:limit]
        return [key + tuple(row) for key, row in ordered]

    # ---- export ------------------------------------------------- #

    def write_collapsed(self, path, unit: Optional[str] = None) -> int:
        """Write a collapsed-stack flamegraph (speedscope-loadable).

        ``unit`` picks the stack weight: ``"cycles"`` (default for
        exact profiles) or ``"wall"`` (microseconds; default for
        sampled profiles).  Returns the number of stacks written.
        """
        if unit is None:
            unit = "cycles" if self.kind == "exact" else "wall"
        if unit not in ("cycles", "wall"):
            raise ValueError(f"unknown flamegraph unit {unit!r}")
        written = 0
        with open(path, "w", encoding="utf-8") as handle:
            for stack, (count, cycles, wall) in sorted(
                    self.stacks.items()):
                weight = int(cycles) if unit == "cycles" \
                    else int(round(wall * 1e6))
                if weight <= 0:
                    continue
                handle.write(";".join(stack) + f" {weight}\n")
                written += 1
        return written

    def render(self, limit: int = 20) -> str:
        """Human-readable hot-instruction table."""
        lines = [f"ir profile ({self.kind}): "
                 f"{len(self.records)} locations, "
                 f"{self.total_cycles} cycles, "
                 f"{self.total_wall * 1e3:.2f} ms"
                 + (f", {self.samples} samples"
                    if self.kind == "sampled" else "")]
        header = (f"  {'function':<18} {'block':<16} {'#':>4} "
                  f"{'opcode':<14} {'count':>9} {'cycles':>12} "
                  f"{'wall_us':>10}")
        lines.append(header)
        for func, block, index, opcode, count, cycles, wall in \
                self.rows(limit):
            idx = "-" if index is None else str(index)
            lines.append(
                f"  {func:<18} {block:<16} {idx:>4} {opcode or '-':<14} "
                f"{int(count):>9} {int(cycles):>12} "
                f"{wall * 1e6:>10.1f}")
        return "\n".join(lines)


# ----------------------------------------------------------------- #
# Exact attribution on the legacy reference walker
# ----------------------------------------------------------------- #

class _ExactHook:
    """The per-instruction hook: measures self cycles and self wall.

    A nested call's charges land inside the outer CallInst's delta; the
    ``attributed`` accumulators subtract whatever nested hook firings
    already claimed, so every cycle is attributed exactly once and the
    per-instruction sum telescopes to the report total.
    """

    def __init__(self, interp, profile: IRProfile):
        self.interp = interp
        self.profile = profile
        self.attributed_cycles = 0
        self.attributed_wall = 0.0
        self.stack: List[tuple] = []
        self._indices: Dict[int, Dict[int, int]] = {}

    def _index(self, block, inst) -> int:
        table = self._indices.get(id(block))
        if table is None:
            table = {id(i): n
                     for n, i in enumerate(block.instructions)}
            self._indices[id(block)] = table
        return table.get(id(inst), -1)

    def _path(self, leaf: tuple) -> Tuple[str, ...]:
        # One in-flight instruction per frame: the stack below the leaf
        # is the CallInst chain, so its function names are the call
        # path.
        path = [entry[0] for entry in self.stack[:-1]]
        path.append(leaf[0])
        path.append(f"{leaf[1]}:{leaf[3]}")
        return tuple(path)

    def __call__(self, block, inst, frame):
        interp = self.interp
        report = interp.accounting.report
        entry = (frame.function.name, block.name,
                 self._index(block, inst), inst.opcode)
        self.stack.append(entry)
        cycles0 = report.cycles
        attributed0 = self.attributed_cycles
        attributed_wall0 = self.attributed_wall
        wall0 = time.perf_counter()
        try:
            return interp._execute(inst, frame)
        finally:
            delta_cycles = report.cycles - cycles0
            delta_wall = time.perf_counter() - wall0
            self_cycles = delta_cycles \
                - (self.attributed_cycles - attributed0)
            self_wall = delta_wall \
                - (self.attributed_wall - attributed_wall0)
            self.attributed_cycles = attributed0 + delta_cycles
            self.attributed_wall = attributed_wall0 + delta_wall
            self.profile.add(entry, self._path(entry),
                             self_cycles, self_wall)
            self.stack.pop()


def profile_run(program, name: str, args=None, **run_kwargs) -> IRProfile:
    """Run ``name`` on the legacy walker with exact IR attribution.

    Returns an :class:`IRProfile` whose attributed cycles sum exactly
    to ``profile.result.report.cycles``; any keyword accepted by
    ``program.run`` (``cache``, ``costs``, ``pool``, ...) passes
    through.  The run itself is a plain legacy-engine execution --
    values and the CostReport are bit-identical to an unprofiled one.
    """
    profile = IRProfile("exact")
    interp = program.interpreter(engine="legacy", **run_kwargs)
    hook = _ExactHook(interp, profile)
    interp._inst_hook = hook
    wall0 = time.perf_counter()
    try:
        result = interp.run(name, args)
    finally:
        interp._inst_hook = None
    total_wall = time.perf_counter() - wall0
    # Cycles charged outside any instruction: the outermost call's
    # call/ret overhead (nested calls' overheads belong to their
    # CallInst and were already claimed by its hook).
    overhead = result.report.cycles - hook.attributed_cycles
    if overhead:
        profile.add((name, "<call>", None, OVERHEAD),
                    (name, OVERHEAD), overhead,
                    max(total_wall - hook.attributed_wall, 0.0))
    profile.total_cycles = result.report.cycles
    profile.total_wall = total_wall
    profile.result = result
    return profile


# ----------------------------------------------------------------- #
# Wall-time sampling over the jit engine
# ----------------------------------------------------------------- #

class _Sampler(threading.Thread):
    """Samples one thread's Python stack, resolving emitted-jit frames
    (``<vpjit:...>`` filenames) to IR locations via the line maps."""

    def __init__(self, target_thread_id: int, profile: IRProfile,
                 interval: float):
        super().__init__(name="vpfloat-ir-sampler", daemon=True)
        self.target = target_thread_id
        self.profile = profile
        self.interval = interval
        self._halt = threading.Event()

    def stop(self) -> None:
        self._halt.set()

    def run(self) -> None:
        from ..codegen.pyjit import LINE_MAPS

        profile = self.profile
        interval = self.interval
        while not self._halt.is_set():
            frame = sys._current_frames().get(self.target)
            leaf = None
            path: List[str] = []
            while frame is not None:
                filename = frame.f_code.co_filename
                if filename.startswith("<vpjit:"):
                    line_map = LINE_MAPS.get(filename)
                    loc = line_map.get(frame.f_lineno) \
                        if line_map else None
                    func = filename[len("<vpjit:"):-1]
                    if loc is not None:
                        block, index, opcode = loc
                    else:
                        block, index, opcode = "<unmapped>", None, None
                    if leaf is None:
                        leaf = (func, block, index,
                                opcode or f"block:{block}")
                        path.append(f"{block}:{opcode or 'block'}")
                    path.append(func)
                frame = frame.f_back
            if leaf is not None:
                path.reverse()
                profile.add(leaf, tuple(path), 0, interval)
                profile.samples += 1
            time.sleep(interval)


def sample_jit_run(program, name: str, args=None,
                   interval: float = 0.0005, **run_kwargs) -> IRProfile:
    """Run ``name`` on the jit engine under a wall-clock sampler.

    Returns a ``kind="sampled"`` :class:`IRProfile`: per-IR-location
    wall shares from the samples (the ``cycles`` column stays 0 --
    exact model attribution is :func:`profile_run`'s job), plus the jit
    engine's exact hot-block execution counts in ``block_counts``.
    """
    profile = IRProfile("sampled")
    interp = program.interpreter(engine="jit", **run_kwargs)
    counts: Dict[str, int] = {}
    interp._block_counts = counts
    sampler = _Sampler(threading.get_ident(), profile, interval)
    wall0 = time.perf_counter()
    sampler.start()
    try:
        result = interp.run(name, args)
    finally:
        sampler.stop()
        sampler.join(timeout=2.0)
    profile.total_wall = time.perf_counter() - wall0
    profile.total_cycles = result.report.cycles
    profile.block_counts = dict(counts)
    profile.result = result
    return profile


# ----------------------------------------------------------------- #
# Model-vs-wall divergence
# ----------------------------------------------------------------- #

class OpcodeDivergence:
    """One opcode whose wall-time share disagrees with its modeled
    cycle share by more than the threshold factor."""

    def __init__(self, opcode: str, cycle_share: float,
                 wall_share: float):
        self.opcode = opcode
        self.cycle_share = cycle_share
        self.wall_share = wall_share

    @property
    def factor(self) -> float:
        """wall share over cycle share; >1 means the host spends
        relatively more time here than the model predicts."""
        if self.cycle_share <= 0.0:
            return math.inf
        return self.wall_share / self.cycle_share

    def render(self) -> str:
        factor = self.factor
        shown = "inf" if math.isinf(factor) else f"{factor:.2f}x"
        return (f"{self.opcode}: wall {self.wall_share * 100:.1f}% vs "
                f"model {self.cycle_share * 100:.1f}% ({shown})")


def divergence(model: IRProfile, wall: Optional[IRProfile] = None,
               threshold: float = 2.0,
               min_share: float = 0.02) -> List[OpcodeDivergence]:
    """Opcodes where wall-time share and modeled-cycle share disagree.

    ``model`` supplies cycle shares; ``wall`` supplies wall shares
    (defaults to ``model`` itself, whose exact hook measured both).
    Only opcodes holding at least ``min_share`` of either total are
    considered, and a divergence is flagged when the shares differ by
    more than ``threshold`` in either direction.
    """
    wall = wall if wall is not None else model
    cycles_by_op = {op: row[1] for op, row in model.by_opcode().items()}
    wall_by_op = {op: row[2] for op, row in wall.by_opcode().items()}
    total_cycles = sum(cycles_by_op.values()) or 1
    total_wall = sum(wall_by_op.values()) or 1.0
    out: List[OpcodeDivergence] = []
    for opcode in sorted(set(cycles_by_op) | set(wall_by_op)):
        if opcode == OVERHEAD:
            continue
        cycle_share = cycles_by_op.get(opcode, 0) / total_cycles
        wall_share = wall_by_op.get(opcode, 0.0) / total_wall
        if max(cycle_share, wall_share) < min_share:
            continue
        lo, hi = sorted((cycle_share, wall_share))
        if lo <= 0.0 or hi / lo > threshold:
            out.append(OpcodeDivergence(opcode, cycle_share,
                                        wall_share))
    out.sort(key=lambda d: -abs(d.wall_share - d.cycle_share))
    return out
