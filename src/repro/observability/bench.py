"""``vpfloat-bench``: pinned-suite benchmark runner over the run ledger.

Replays a fixed benchmark suite -- same kernels, sizes, backends, and
engines every time -- and appends one ``bench`` ledger record per
repetition, so consecutive runs of this tool produce directly
comparable JSONL artifacts.  Pair it with ``vpfloat-stats compare`` (or
``--baseline`` here, which runs the same comparison in-process) to gate
changes on noise-aware regressions:

* model metrics (cycles, instructions, mpfr_calls, llc_misses,
  dram_bytes) are bit-reproducible, so they gate exactly on the median;
* wall time gates on median-of-k with a MAD allowance, and only when
  both ledgers come from the same host.

Exit codes: 0 clean, 1 usage/IO error, 3 regression against
``--baseline`` -- the CI perf gate keys off 3.

Usage::

    vpfloat-bench --quick --ledger results/pr_ledger.jsonl
    vpfloat-bench --quick --baseline results/baseline_ledger.jsonl
    vpfloat-bench --quick --flamegraph gemm.collapsed

(equivalently ``python -m repro.observability.bench ...``).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from typing import List, Optional, Tuple

MPFR = "vpfloat<mpfr, 16, 128>"
UNUM = "vpfloat<unum, 3, 6>"

#: One pinned case: (kernel, ftype, n, backend, engine, lanes).
#: The suite is the contract between a baseline ledger and every later
#: candidate -- append cases rather than editing existing ones, or the
#: comparison loses its overlap.
Case = Tuple[str, str, int, str, Optional[str], Optional[int]]

FULL_SUITE: List[Case] = [
    ("gemm", MPFR, 8, "mpfr", "jit", None),
    ("gemm", MPFR, 8, "mpfr", "fast", None),
    ("gemm", MPFR, 6, "mpfr", "jit", 4),
    ("jacobi-1d", MPFR, 24, "mpfr", "jit", None),
    ("jacobi-1d", MPFR, 24, "mpfr", "legacy", None),
    ("atax", MPFR, 12, "mpfr", "jit", None),
    ("gemm", UNUM, 6, "unum", None, None),
]

QUICK_SUITE: List[Case] = [
    ("gemm", MPFR, 6, "mpfr", "jit", None),
    ("gemm", MPFR, 4, "mpfr", "jit", 4),
    ("jacobi-1d", MPFR, 12, "mpfr", "jit", None),
    ("gemm", UNUM, 4, "unum", None, None),
]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="vpfloat-bench",
        description="Replay the pinned vpfloat benchmark suite into a "
                    "run ledger; optionally gate against a baseline.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small-size suite (CI-friendly, ~seconds)")
    parser.add_argument("--reps", type=int, default=3, metavar="K",
                        help="repetitions per case; compare gates on "
                             "the median of K (default 3)")
    parser.add_argument("--ledger", default="vpfloat_ledger.jsonl",
                        metavar="FILE",
                        help="JSONL ledger to append to "
                             "(default vpfloat_ledger.jsonl)")
    parser.add_argument("--baseline", metavar="FILE",
                        help="baseline ledger; exit 3 if this run "
                             "regresses against it")
    parser.add_argument("--flamegraph", metavar="FILE",
                        help="also write a collapsed-stack flamegraph "
                             "of the suite's gemm case (speedscope/"
                             "flamegraph.pl compatible)")
    parser.add_argument("--cache-dir", default=None, metavar="DIR",
                        help="compile-cache directory (default: a "
                             "throwaway temp dir, so timings include "
                             "one cold compile per program)")
    parser.add_argument("--wall-mad-factor", type=float, default=5.0)
    parser.add_argument("--wall-rel-floor", type=float, default=0.10)
    parser.add_argument("--gate-wall", choices=("auto", "on", "off"),
                        default="auto",
                        help="gate wall_seconds (auto: only when both "
                             "ledgers share a hostname)")
    parser.add_argument("--json", action="store_true",
                        help="machine-readable summary on stdout")
    parser.add_argument("--list", action="store_true",
                        help="print the pinned suite and exit")
    return parser


def _run_case(case: Case, reps: int, ledger) -> dict:
    """Execute one pinned case ``reps`` times; one ``bench`` record
    per rep (so compare sees a median-of-k sample set), returns the
    last rep's summary row."""
    from ..evaluation.harness import run_kernel
    from .ledger import report_fields

    kernel, ftype, n, backend, engine, lanes = case
    row = {}
    for rep in range(reps):
        wall0 = time.perf_counter()
        outcome = run_kernel(kernel, ftype, n, backend=backend,
                             engine=engine, batch=lanes,
                             read_outputs=False)
        wall = time.perf_counter() - wall0
        fields = dict(kernel=kernel, ftype=ftype, n=n, backend=backend,
                      engine=engine, lanes=lanes, rep=rep,
                      wall_seconds=wall, **report_fields(outcome.report))
        ledger.record("bench", **fields)
        row = fields
    return row


def _write_flamegraph(path: str, quick: bool) -> None:
    """Profile the suite's (serial mpfr) gemm case with the exact IR
    profiler and write its collapsed stacks."""
    from ..core import CompilerDriver
    from ..workloads.polybench import source_for
    from .profile import profile_run

    n = 6 if quick else 8
    driver = CompilerDriver(backend="mpfr")
    program = driver.compile(source_for("gemm", MPFR), name="gemm-bench")
    profile = profile_run(program, "run", [n])
    profile.write_collapsed(path)
    print(f"flamegraph: wrote {len(profile.stacks)} stacks to {path}")


def _gate(baseline_path: str, candidate_path: str,
          args: argparse.Namespace) -> int:
    from .ledger import compare_ledgers, read_ledger

    try:
        baseline, base_problems = read_ledger(baseline_path)
    except OSError as error:
        print(f"vpfloat-bench: cannot read baseline: {error}",
              file=sys.stderr)
        return 1
    candidate, cand_problems = read_ledger(candidate_path)
    for label, problems in (("baseline", base_problems),
                            ("candidate", cand_problems)):
        if problems:
            print(f"vpfloat-bench: skipped {len(problems)} bad "
                  f"{label} line(s)", file=sys.stderr)
    gate_wall = {"auto": None, "on": True, "off": False}[args.gate_wall]
    regressions, improvements, compared, skipped = compare_ledgers(
        baseline, candidate,
        wall_mad_factor=args.wall_mad_factor,
        wall_rel_floor=args.wall_rel_floor,
        gate_wall=gate_wall)
    print(f"compare vs {baseline_path}: {compared} metric(s) compared, "
          f"{len(improvements)} improved, {len(regressions)} regressed"
          + (f", {len(skipped)} skipped" if skipped else ""))
    for regression in regressions:
        print(f"  REGRESSION {regression.render()}")
    return 3 if regressions else 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    suite = QUICK_SUITE if args.quick else FULL_SUITE
    if args.list:
        for case in suite:
            kernel, ftype, n, backend, engine, lanes = case
            print(f"{kernel:<12} {ftype:<24} n={n:<4} {backend:<5} "
                  f"engine={engine or '-':<7} lanes={lanes or '-'}")
        return 0
    if args.reps < 1:
        print("vpfloat-bench: --reps must be >= 1", file=sys.stderr)
        return 1

    from ..core.cache import CompileCache
    from ..evaluation.harness import set_compile_cache
    from .ledger import ledger_session

    cache_dir = args.cache_dir or tempfile.mkdtemp(prefix="vpbench-")
    rows = []
    with ledger_session(args.ledger) as ledger:
        previous_cache = set_compile_cache(CompileCache(cache_dir))
        try:
            for case in suite:
                row = _run_case(case, args.reps, ledger)
                rows.append(row)
                if not args.json:
                    print(f"{row['kernel']:<12} n={row['n']:<4} "
                          f"{row['backend']:<5} "
                          f"engine={row['engine'] or '-':<7} "
                          f"cycles={row['cycles']:<12} "
                          f"wall={row['wall_seconds']:.3f}s")
        finally:
            set_compile_cache(previous_cache)
        written = ledger.records_written
    if args.json:
        print(json.dumps({"suite": "quick" if args.quick else "full",
                          "reps": args.reps, "ledger": args.ledger,
                          "records": written, "cases": rows},
                         sort_keys=True))
    else:
        print(f"ledger: appended {written} record(s) to {args.ledger}")

    if args.flamegraph:
        _write_flamegraph(args.flamegraph, args.quick)
    if args.baseline:
        return _gate(args.baseline, args.ledger, args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
