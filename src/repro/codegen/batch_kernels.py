"""Precision-specialized batched kernels for the SoA execution engine.

:mod:`repro.codegen.kernels` compiles one scalar function per
``(op, precision, rounding mode)`` with the finite fast path of
``round_significand`` fully inlined.  This module lifts those exact
algorithms over a whole :class:`~repro.runtime.batch.VPBatch` at once:
one compiled function per ``(op, precision, rounding mode, exponent
width)`` runs a single fused Python loop over the batch's parallel
kind/sign/mant/exp lane lists, storing results into freshly built lane
lists instead of constructing one BigFloat per lane.  Amortizing the
call, the operand unpacking, and the result boxing over N lanes is what
makes batched execution faster than N scalar kernel calls.

Two things differ from the scalar kernels by design:

* the destination's exponent-field clamp
  (:meth:`~repro.bigfloat.mpfr_api.MpfrLibrary._clamp`) is folded into
  the kernel as two constant comparisons per lane, so the batched jit
  body needs no separate clamp block;
* lanes that leave the fast path (NaN/Inf operands, negative sqrt,
  division by zero) fall back to the generic
  :mod:`~repro.bigfloat.arith` routine *per lane* -- bit-identical to
  the scalar engine by construction -- and are counted as scalar
  fallbacks on the bound :class:`~repro.runtime.batch.BatchContext`.
  Unlike the scalar kernels, ZERO operands stay on the fast path (the
  exact zero rules of :mod:`~repro.bigfloat.arith` are transcribed into
  the loop): zero-initialized accumulators are everywhere in real
  kernels and must not serialize the batch.

Kernels never bake the lane count: ``n`` comes from the operands (or
from the context when every operand is a scalar broadcast), so one
compiled kernel serves every batch size.  Scalar BigFloat operands
(uninitialized pool NaNs, literal stores that bypassed broadcasting)
are broadcast on entry.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from ..bigfloat import arith
from ..bigfloat.number import BigFloat, Kind
from ..bigfloat.rounding import RoundingMode
from .kernels import _incr_cond, _sticky_small_cond

#: Operations with a batched implementation.
BATCH_KERNEL_OPS = ("add", "sub", "mul", "div", "fma", "fms", "sqrt")

#: (op, prec, rm.value, exp_bits) -> factory taking a BatchContext.
_FACTORIES: Dict[Tuple[str, int, str, Optional[int]], Callable] = {}

#: Set lazily (the runtime batch module imports this one).
_VPBATCH = None


# ----------------------------------------------------------------- #
# Lane stores (round tail + folded clamp)
# ----------------------------------------------------------------- #

def _lane_store_lines(prec: int, exp_bits: Optional[int],
                      indent: int) -> list:
    """Store the rounded ``(_s, _q, _e)`` into the output lanes,
    applying the exponent-width clamp when the destination has one.
    ``exponent() == _e + prec``, so the bounds fold to constants."""
    pad = " " * indent
    if exp_bits is None:
        return [
            f"{pad}_os[_i] = _s",
            f"{pad}_om[_i] = _q",
            f"{pad}_oe[_i] = _e",
        ]
    limit = 1 << (exp_bits - 1)
    return [
        f"{pad}if _e > {limit - prec}:",
        f"{pad}    _ok[_i] = _KI",
        f"{pad}    _os[_i] = _s",
        f"{pad}elif _e < {-limit - prec}:",
        f"{pad}    _ok[_i] = _KZ",
        f"{pad}    _os[_i] = _s",
        f"{pad}else:",
        f"{pad}    _os[_i] = _s",
        f"{pad}    _om[_i] = _q",
        f"{pad}    _oe[_i] = _e",
    ]


def _batch_round_lines(prec: int, rm: RoundingMode, sticky: bool,
                       indent: int, exp_bits: Optional[int]) -> str:
    """Transcription of :func:`kernels._round_lines` whose tail stores
    into the output lane lists (plus clamp) instead of returning."""
    pad = " " * indent
    lines = [
        f"{pad}_nb = _m.bit_length()",
        f"{pad}if _nb <= {prec}:",
        f"{pad}    _q = _m << ({prec} - _nb)",
        f"{pad}    _e -= {prec} - _nb",
    ]
    small = _sticky_small_cond(rm) if sticky else None
    if small is not None:
        lines += [
            f"{pad}    if _st and {small}:",
            f"{pad}        _q += 1",
            f"{pad}        if _q >> {prec}:",
            f"{pad}            _q >>= 1",
            f"{pad}            _e += 1",
        ]
    lines += [
        f"{pad}else:",
        f"{pad}    _sh = _nb - {prec}",
        f"{pad}    _low = _m & ((1 << _sh) - 1)",
        f"{pad}    _q = _m >> _sh",
        f"{pad}    _e += _sh",
    ]
    cond = _incr_cond(rm, sticky)
    if cond is not None:
        if "_half" in cond:
            lines.append(f"{pad}    _half = 1 << (_sh - 1)")
        lines += [
            f"{pad}    if {cond}:",
            f"{pad}        _q += 1",
            f"{pad}        if _q >> {prec}:",
            f"{pad}            _q >>= 1",
            f"{pad}            _e += 1",
        ]
    lines += _lane_store_lines(prec, exp_bits, indent)
    return "\n".join(lines)


def _fallback_store_lines(prec: int, exp_bits: Optional[int],
                          indent: int) -> str:
    """Store the library-fallback BigFloat ``_v`` into the output
    lanes, applying the same clamp :meth:`MpfrLibrary._clamp` would
    (finite values only; ``_v`` is already rounded to ``prec``)."""
    pad = " " * indent
    lines = [f"{pad}_vk = _v.kind"]
    if exp_bits is None:
        lines += [
            f"{pad}_ok[_i] = _vk",
            f"{pad}_os[_i] = _v.sign",
            f"{pad}_om[_i] = _v.mant",
            f"{pad}_oe[_i] = _v.exp",
        ]
        return "\n".join(lines)
    limit = 1 << (exp_bits - 1)
    lines += [
        f"{pad}if _vk is _KF and _v.exp > {limit - prec}:",
        f"{pad}    _ok[_i] = _KI",
        f"{pad}    _os[_i] = _v.sign",
        f"{pad}elif _vk is _KF and _v.exp < {-limit - prec}:",
        f"{pad}    _ok[_i] = _KZ",
        f"{pad}    _os[_i] = _v.sign",
        f"{pad}else:",
        f"{pad}    _ok[_i] = _vk",
        f"{pad}    _os[_i] = _v.sign",
        f"{pad}    _om[_i] = _v.mant",
        f"{pad}    _oe[_i] = _v.exp",
    ]
    return "\n".join(lines)


def _zero_store_lines(rm: RoundingMode, indent: int) -> str:
    """Exact-zero result: ZERO kind with the rounding mode's signed
    zero (negative only toward -inf), mirroring ``_SZERO``."""
    pad = " " * indent
    sign = 1 if rm is RoundingMode.TOWARD_NEGATIVE else 0
    return "\n".join([
        f"{pad}_ok[_i] = _KZ",
        f"{pad}_os[_i] = {sign}",
        f"{pad}continue",
    ])


# ----------------------------------------------------------------- #
# Per-op lane bodies (transcribed from kernels.py, lane-indexed)
# ----------------------------------------------------------------- #

def _addsub_body(prec, rm, exp_bits, flip):
    # ``sub`` is ``add(a, -b)``: the flip applies to b's sign wherever
    # it is read (signed magnitude, zero-result sign rules).
    mb = ("-_bmt[_i] if _bsn[_i] == 0 else _bmt[_i]" if flip
          else "_bmt[_i] if _bsn[_i] == 0 else -_bmt[_i]")
    bsn = "1 - _bsn[_i]" if flip else "_bsn[_i]"
    return f"""\
            _aki = _ak[_i]
            _bki = _bk[_i]
            if _aki is _KF and _bki is _KF:
                _ma = _amt[_i] if _asn[_i] == 0 else -_amt[_i]
                _mb = {mb}
                _ea = _aex[_i]
                _eb = _bex[_i]
                if _ea <= _eb:
                    _t = _ma + (_mb << (_eb - _ea))
                    _e = _ea
                else:
                    _t = (_ma << (_ea - _eb)) + _mb
                    _e = _eb
                if _t == 0:
{_zero_store_lines(rm, 20)}
                if _t < 0:
                    _s = 1
                    _m = -_t
                else:
                    _s = 0
                    _m = _t
            elif _aki is _KF and _bki is _KZ:
                _s = _asn[_i]
                _m = _amt[_i]
                _e = _aex[_i]
            elif _aki is _KZ and _bki is _KF:
                _s = {bsn}
                _m = _bmt[_i]
                _e = _bex[_i]
            elif _aki is _KZ and _bki is _KZ:
                _s = _asn[_i]
                if _s == {bsn}:
                    _ok[_i] = _KZ
                    _os[_i] = _s
                else:
{_zero_store_lines(rm, 20)}
                continue
            else:
                _slow += 1
                _v = _FB(_BF(_aki, _asn[_i], _amt[_i], _aex[_i], _ap),
                         _BF(_bki, _bsn[_i], _bmt[_i], _bex[_i], _bp))
{_fallback_store_lines(prec, exp_bits, 16)}
                continue
{_batch_round_lines(prec, rm, False, 12, exp_bits)}
"""


def _mul_body(prec, rm, exp_bits):
    return f"""\
            _aki = _ak[_i]
            _bki = _bk[_i]
            if _aki is _KF and _bki is _KF:
                _s = _asn[_i] ^ _bsn[_i]
                _m = _amt[_i] * _bmt[_i]
                _e = _aex[_i] + _bex[_i]
            elif (_aki is _KF or _aki is _KZ) and \\
                    (_bki is _KF or _bki is _KZ):
                _ok[_i] = _KZ
                _os[_i] = _asn[_i] ^ _bsn[_i]
                continue
            else:
                _slow += 1
                _v = _FB(_BF(_aki, _asn[_i], _amt[_i], _aex[_i], _ap),
                         _BF(_bki, _bsn[_i], _bmt[_i], _bex[_i], _bp))
{_fallback_store_lines(prec, exp_bits, 16)}
                continue
{_batch_round_lines(prec, rm, False, 12, exp_bits)}
"""


def _div_body(prec, rm, exp_bits):
    return f"""\
            _aki = _ak[_i]
            _bki = _bk[_i]
            if _aki is _KF and _bki is _KF:
                _s = _asn[_i] ^ _bsn[_i]
                _am = _amt[_i]
                _bm = _bmt[_i]
                _shd = {prec + 2} - (_am.bit_length() - _bm.bit_length())
                if _shd < 0:
                    _shd = 0
                _q0, _r = divmod(_am << _shd, _bm)
                _d = {prec + 2} - _q0.bit_length()
                if _d > 0:
                    _shd += _d
                    _q0, _r = divmod(_am << _shd, _bm)
                _m = _q0
                _e = _aex[_i] - _bex[_i] - _shd
                _st = _r != 0
            elif _aki is _KZ and _bki is _KF:
                _ok[_i] = _KZ
                _os[_i] = _asn[_i] ^ _bsn[_i]
                continue
            else:
                _slow += 1
                _v = _FB(_BF(_aki, _asn[_i], _amt[_i], _aex[_i], _ap),
                         _BF(_bki, _bsn[_i], _bmt[_i], _bex[_i], _bp))
{_fallback_store_lines(prec, exp_bits, 16)}
                continue
{_batch_round_lines(prec, rm, True, 12, exp_bits)}
"""


def _fma_body(prec, rm, exp_bits, flip):
    # ``fms`` is ``fma(a, b, -c)``: the flip applies wherever c's sign
    # is read (signed magnitude, zero-addend sign rules).
    mc = ("-_cmt[_i] if _csn[_i] == 0 else _cmt[_i]" if flip
          else "_cmt[_i] if _csn[_i] == 0 else -_cmt[_i]")
    csn = "1 - _csn[_i]" if flip else "_csn[_i]"
    return f"""\
            _aki = _ak[_i]
            _bki = _bk[_i]
            _cki = _ckd[_i]
            if _cki is not _KF and _cki is not _KZ:
                _slow += 1
                _v = _FB(_BF(_aki, _asn[_i], _amt[_i], _aex[_i], _ap),
                         _BF(_bki, _bsn[_i], _bmt[_i], _bex[_i], _bp),
                         _BF(_cki, _csn[_i], _cmt[_i], _cex[_i], _cp))
{_fallback_store_lines(prec, exp_bits, 16)}
                continue
            if _aki is _KF and _bki is _KF:
                _ma = _amt[_i] if _asn[_i] == 0 else -_amt[_i]
                _mb = _bmt[_i] if _bsn[_i] == 0 else -_bmt[_i]
                _pm = _ma * _mb
                _pe = _aex[_i] + _bex[_i]
                if _cki is _KF:
                    _mc = {mc}
                    _ec = _cex[_i]
                    if _pe <= _ec:
                        _t = _pm + (_mc << (_ec - _pe))
                        _e = _pe
                    else:
                        _t = (_pm << (_pe - _ec)) + _mc
                        _e = _ec
                else:
                    _t = _pm
                    _e = _pe
                if _t == 0:
{_zero_store_lines(rm, 20)}
                if _t < 0:
                    _s = 1
                    _m = -_t
                else:
                    _s = 0
                    _m = _t
            elif (_aki is _KZ and (_bki is _KF or _bki is _KZ)) or \\
                    (_bki is _KZ and _aki is _KF):
                if _cki is _KF:
                    _s = {csn}
                    _m = _cmt[_i]
                    _e = _cex[_i]
                else:
                    _ps = _asn[_i] ^ _bsn[_i]
                    if _ps == {csn}:
                        _ok[_i] = _KZ
                        _os[_i] = _ps
                    else:
{_zero_store_lines(rm, 24)}
                    continue
            else:
                _slow += 1
                _v = _FB(_BF(_aki, _asn[_i], _amt[_i], _aex[_i], _ap),
                         _BF(_bki, _bsn[_i], _bmt[_i], _bex[_i], _bp),
                         _BF(_cki, _csn[_i], _cmt[_i], _cex[_i], _cp))
{_fallback_store_lines(prec, exp_bits, 16)}
                continue
{_batch_round_lines(prec, rm, False, 12, exp_bits)}
"""


def _sqrt_body(prec, rm, exp_bits):
    return f"""\
            _aki = _ak[_i]
            if _aki is _KF and _asn[_i] == 0:
                _shq = {2 * (prec + 2)} - _amt[_i].bit_length()
                if _shq < 0:
                    _shq = 0
                if (_aex[_i] - _shq) & 1:
                    _shq += 1
                _m0 = _amt[_i] << _shq
                _root = _isqrt(_m0)
                _st = _root * _root != _m0
                _s = 0
                _m = _root
                _e = (_aex[_i] - _shq) >> 1
            elif _aki is _KZ:
                _ok[_i] = _KZ
                _os[_i] = _asn[_i]
                continue
            else:
                _slow += 1
                _v = _FB(_BF(_aki, _asn[_i], _amt[_i], _aex[_i], _ap))
{_fallback_store_lines(prec, exp_bits, 16)}
                continue
{_batch_round_lines(prec, rm, True, 12, exp_bits)}
"""


_BODIES = {
    "add": lambda prec, rm, eb: _addsub_body(prec, rm, eb, False),
    "sub": lambda prec, rm, eb: _addsub_body(prec, rm, eb, True),
    "mul": _mul_body,
    "div": _div_body,
    "fma": lambda prec, rm, eb: _fma_body(prec, rm, eb, False),
    "fms": lambda prec, rm, eb: _fma_body(prec, rm, eb, True),
    "sqrt": _sqrt_body,
}

_LIBRARY = {
    "add": arith.add, "sub": arith.sub, "mul": arith.mul,
    "div": arith.div, "fma": arith.fma, "fms": arith.fms,
    "sqrt": arith.sqrt,
}


# ----------------------------------------------------------------- #
# Shells (broadcast scalars, unpack lanes, drive the fused loop)
# ----------------------------------------------------------------- #

def _binary_shell(body: str, prec: int) -> str:
    return f"""\
def _make(ctx):
    _note = ctx.note
    _nlanes = ctx.lanes
    def _kernel(a, b):
        if type(a) is not _VB:
            a = _VB.broadcast(
                a, len(b.kind) if type(b) is _VB else _nlanes)
        if type(b) is not _VB:
            b = _VB.broadcast(b, len(a.kind))
        _ak = a.kind; _asn = a.sign; _amt = a.mant; _aex = a.exp
        _bk = b.kind; _bsn = b.sign; _bmt = b.mant; _bex = b.exp
        _ap = a.prec; _bp = b.prec
        _n = len(_ak)
        _ok = [_KF] * _n
        _os = [0] * _n
        _om = [0] * _n
        _oe = [0] * _n
        _slow = 0
        for _i in range(_n):
{body}\
        _note(_n, _slow)
        return _VB(_ok, _os, _om, _oe, {prec})
    return _kernel
"""


def _ternary_shell(body: str, prec: int) -> str:
    return f"""\
def _make(ctx):
    _note = ctx.note
    _nlanes = ctx.lanes
    def _kernel(a, b, c):
        if type(a) is _VB:
            _n = len(a.kind)
        elif type(b) is _VB:
            _n = len(b.kind)
        elif type(c) is _VB:
            _n = len(c.kind)
        else:
            _n = _nlanes
        if type(a) is not _VB:
            a = _VB.broadcast(a, _n)
        if type(b) is not _VB:
            b = _VB.broadcast(b, _n)
        if type(c) is not _VB:
            c = _VB.broadcast(c, _n)
        _ak = a.kind; _asn = a.sign; _amt = a.mant; _aex = a.exp
        _bk = b.kind; _bsn = b.sign; _bmt = b.mant; _bex = b.exp
        _ckd = c.kind; _csn = c.sign; _cmt = c.mant; _cex = c.exp
        _ap = a.prec; _bp = b.prec; _cp = c.prec
        _ok = [_KF] * _n
        _os = [0] * _n
        _om = [0] * _n
        _oe = [0] * _n
        _slow = 0
        for _i in range(_n):
{body}\
        _note(_n, _slow)
        return _VB(_ok, _os, _om, _oe, {prec})
    return _kernel
"""


def _unary_shell(body: str, prec: int) -> str:
    return f"""\
def _make(ctx):
    _note = ctx.note
    _nlanes = ctx.lanes
    def _kernel(a):
        if type(a) is not _VB:
            a = _VB.broadcast(a, _nlanes)
        _ak = a.kind; _asn = a.sign; _amt = a.mant; _aex = a.exp
        _ap = a.prec
        _n = len(_ak)
        _ok = [_KF] * _n
        _os = [0] * _n
        _om = [0] * _n
        _oe = [0] * _n
        _slow = 0
        for _i in range(_n):
{body}\
        _note(_n, _slow)
        return _VB(_ok, _os, _om, _oe, {prec})
    return _kernel
"""


# ----------------------------------------------------------------- #
# Public API
# ----------------------------------------------------------------- #

def batch_kernel_source(op: str, prec: int,
                        rm: RoundingMode = RoundingMode.NEAREST_EVEN,
                        exp_bits: Optional[int] = None) -> str:
    """The batched-kernel factory source for ``(op, prec, rm,
    exp_bits)``; ``exp_bits=None`` omits the folded clamp."""
    if op not in _BODIES:
        raise ValueError(f"no batched kernel for {op!r}; "
                         f"choose from {BATCH_KERNEL_OPS}")
    if prec < 1:
        raise ValueError(f"precision must be >= 1, got {prec}")
    body = _BODIES[op](prec, rm, exp_bits)
    if op == "sqrt":
        return _unary_shell(body, prec)
    if op in ("fma", "fms"):
        return _ternary_shell(body, prec)
    return _binary_shell(body, prec)


def select_batch_kernel(op: str, prec: int, rm: RoundingMode,
                        exp_bits: Optional[int], ctx) -> Callable:
    """The batched kernel honoring the run's kernel-tier policy.

    With policy "auto"/"small" (the BatchContext's ``kernel_tier``),
    single-limb precisions get the vectorized numpy tier
    (:mod:`repro.codegen.batch_np_kernels`) wrapping this generic
    kernel as its per-call fallback; "generic" -- and any shape the
    numpy tier does not cover -- binds the generic fused-loop kernel
    directly.  Results are bit-identical per lane either way.
    """
    generic = batch_kernel_factory(op, prec, rm, exp_bits)(ctx)
    if getattr(ctx, "kernel_tier", "auto") != "generic":
        from .batch_np_kernels import make_np_kernel, np_tier_eligible
        if np_tier_eligible(op, prec, rm):
            return make_np_kernel(op, prec, exp_bits, ctx, generic)
    return generic


def batch_kernel_factory(op: str, prec: int,
                         rm: RoundingMode = RoundingMode.NEAREST_EVEN,
                         exp_bits: Optional[int] = None) -> Callable:
    """A factory ``make(ctx) -> kernel`` for the batched kernel.

    The factory is memoized per ``(op, prec, rm, exp_bits)``; binding a
    :class:`~repro.runtime.batch.BatchContext` (for the lane count and
    the scalar-fallback counters) just creates a closure over the
    already-compiled code.  The bound kernel takes VPBatch (or scalar
    BigFloat, broadcast on entry) operands and returns a VPBatch of
    precision ``prec``, bit-identical per lane to the scalar
    :func:`~repro.codegen.kernels.specialized_kernel` followed by the
    destination clamp.
    """
    key = (op, prec, rm.value, exp_bits)
    factory = _FACTORIES.get(key)
    if factory is not None:
        return factory
    global _VPBATCH
    if _VPBATCH is None:
        from ..runtime.batch import VPBatch
        _VPBATCH = VPBatch
    source = batch_kernel_source(op, prec, rm, exp_bits)
    library = _LIBRARY[op]
    if op == "sqrt":
        def fallback(a, _lib=library, _p=prec, _r=rm):
            return _lib(a, _p, _r)
    elif op in ("fma", "fms"):
        def fallback(a, b, c, _lib=library, _p=prec, _r=rm):
            return _lib(a, b, c, _p, _r)
    else:
        def fallback(a, b, _lib=library, _p=prec, _r=rm):
            return _lib(a, b, _p, _r)
    namespace = {
        "_VB": _VPBATCH,
        "_BF": BigFloat,
        "_KF": Kind.FINITE,
        "_KZ": Kind.ZERO,
        "_KI": Kind.INF,
        "_FB": fallback,
        "_isqrt": math.isqrt,
    }
    code = compile(source,
                   f"<vpbatchkernel:{op}/{prec}/{rm.value}/{exp_bits}>",
                   "exec")
    exec(code, namespace)
    factory = namespace["_make"]
    _FACTORIES[key] = factory
    return factory
