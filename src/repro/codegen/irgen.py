"""AST -> IR code generation.

Lowers the analyzed vpfloat C dialect onto the SSA IR:

- locals become entry-block allocas (later promoted by mem2reg);
- dynamically-sized vpfloat declarations emit a ``__sizeof_vpfloat*``
  runtime call that validates the attributes and yields the byte size
  (paper §III-A5), plus ``vpfloat.attr.keepalive`` pins so optimization
  cannot delete attribute values out from under live types (§III-B);
- call sites with dynamic attribute bindings emit ``__vpfloat_check_attr``
  runtime verification calls (paper Listing 3, lines 14/17);
- ``#pragma omp parallel for`` loops are bracketed by
  ``__omp_parallel_begin/end`` markers consumed by the execution model;
  ``omp atomic`` statements by ``__omp_atomic_begin/end``;
- mixed vpfloat/primitive arithmetic keeps the primitive operand visible
  through a ``vpconv`` so the MPFR backend can select the specialized
  ``mpfr_*_d/si`` entry points.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..bigfloat import BigFloat, from_str
from ..ir import (
    F32,
    F64,
    I1,
    I8,
    I32,
    I64,
    VOID,
    ArrayType,
    BasicBlock,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantVPFloat,
    FloatType,
    Function,
    FunctionType,
    GlobalVariable,
    IntType,
    IRBuilder,
    IRType,
    Module,
    PointerType,
    UndefValue,
    Value,
    VPFloatType,
    verify_module,
)
from ..lang import ast
from ..lang.ctypes import (
    ArrayT,
    AttrConst,
    AttrRef,
    CType,
    FloatT,
    IntT,
    PointerT,
    VoidT,
    VPFloatT,
    decay,
)
from ..lang.lexer import SourceError

#: Precision used to materialize vpfloat literals before their final type
#: is known (paper §III-A5: constants are created at the format's maximum
#: configuration and cast at runtime).
LITERAL_PRECISION = 600

#: Runtime library signatures.
RUNTIME_SIGNATURES = {
    "__sizeof_vpfloat": FunctionType(I64, (I32, I32, I32)),
    "__sizeof_vpfloat_mpfr": FunctionType(I64, (I32, I32)),
    "__vpfloat_check_attr": FunctionType(VOID, (I32, I32)),
    "vpfloat.attr.keepalive": FunctionType(VOID, (I32,)),
    "__omp_parallel_begin": FunctionType(VOID, (I64,)),
    "__omp_parallel_end": FunctionType(VOID, ()),
    "__omp_atomic_begin": FunctionType(VOID, ()),
    "__omp_atomic_end": FunctionType(VOID, ()),
    "malloc": FunctionType(PointerType(I8), (I64,)),
    "free": FunctionType(VOID, (PointerType(I8),)),
    "print_double": FunctionType(VOID, (F64,)),
    "print_int": FunctionType(VOID, (I32,)),
    "print_vpfloat": FunctionType(VOID, (F64,)),
    "sqrt": FunctionType(F64, (F64,)),
    "fabs": FunctionType(F64, (F64,)),
    "exp": FunctionType(F64, (F64,)),
    "log": FunctionType(F64, (F64,)),
    "pow": FunctionType(F64, (F64, F64)),
    "sin": FunctionType(F64, (F64,)),
    "cos": FunctionType(F64, (F64,)),
    "floor": FunctionType(F64, (F64,)),
    "ceil": FunctionType(F64, (F64,)),
    "fmax": FunctionType(F64, (F64, F64)),
    "fmin": FunctionType(F64, (F64, F64)),
    "vp.sqrt": FunctionType(F64, (F64,)),
    "vp.fabs": FunctionType(F64, (F64,)),
    "vp.exp": FunctionType(F64, (F64,)),
    "vp.log": FunctionType(F64, (F64,)),
    "vp.sin": FunctionType(F64, (F64,)),
    "vp.cos": FunctionType(F64, (F64,)),
    "vp.pow": FunctionType(F64, (F64, F64)),
    "memset": FunctionType(VOID, (PointerType(I8), I32, I64)),
    "memcpy": FunctionType(VOID, (PointerType(I8), PointerType(I8), I64)),
}

_VP_BUILTIN_MAP = {
    "vp_sqrt": "vp.sqrt", "vp_fabs": "vp.fabs", "vp_exp": "vp.exp",
    "vp_log": "vp.log", "vp_sin": "vp.sin", "vp_cos": "vp.cos",
    "vp_pow": "vp.pow",
}


class CodegenError(SourceError):
    """Lowering failure (usually an unsupported construct)."""


class IRGenerator:
    """One-shot translator from an analyzed AST to an IR module."""

    def __init__(self, unit: ast.TranslationUnit, name: str = "module"):
        self.unit = unit
        self.module = Module(name)
        self.builder = IRBuilder()
        self.func: Optional[Function] = None
        #: AST decl -> pointer Value (alloca / global / byref param slot).
        self.slots: Dict[int, Value] = {}
        #: AST decl -> CType as declared.
        self.decl_types: Dict[int, CType] = {}
        self.break_targets: List[BasicBlock] = []
        self.continue_targets: List[BasicBlock] = []
        #: Name -> slot for the *current* function's locals and params,
        #: so attribute references resolve against the innermost binding.
        self.local_slot_names: Dict[str, Value] = {}
        self.func_decls: Dict[str, ast.FunctionDecl] = {}

    # ------------------------------------------------------------ #
    # Types
    # ------------------------------------------------------------ #

    def ir_type(self, ctype: CType) -> IRType:
        if isinstance(ctype, VoidT):
            return VOID
        if isinstance(ctype, IntT):
            return IntType(ctype.bits)
        if isinstance(ctype, FloatT):
            return FloatType(ctype.bits)
        if isinstance(ctype, PointerT):
            return PointerType(self.ir_type(ctype.pointee))
        if isinstance(ctype, ArrayT):
            if ctype.is_vla:
                # VLAs lower to pointers; extent handled at the alloca.
                return PointerType(self.ir_type(ctype.element))
            return ArrayType(self.ir_type(ctype.element), ctype.size)
        if isinstance(ctype, VPFloatT):
            vptype = VPFloatType(
                ctype.format,
                self._attr_value(ctype.exp),
                self._attr_value(ctype.prec),
                self._attr_value(ctype.size) if ctype.size else None,
            )
            self.module.register_vpfloat_type(vptype)
            return vptype
        raise TypeError(f"cannot lower type {ctype}")

    def _attr_value(self, attr) -> Value:
        if isinstance(attr, AttrConst):
            return ConstantInt(I32, attr.value)
        assert isinstance(attr, AttrRef)
        # Signature context (no insert point): parameter attributes
        # resolve directly to the entry argument values.
        if self.builder.block is None:
            if self.func is not None:
                for arg, param in zip(self.func.args,
                                      self._current_params()):
                    if param.name == attr.name:
                        return self._coerce_to_i32(arg)
            raise TypeError(f"unresolved vpfloat attribute {attr.name!r}")
        # Body context: re-read the named variable at every use site so a
        # declaration's type sees the variable's *current* value — a loop
        # that mutates an attribute variable (e.g. shrinking `p`) changes
        # the precision of later declarations.  mem2reg rewires these
        # loads to the reaching SSA definition (the attribute registry
        # keeps the types in sync through RAUW), so -O3 IR carries no
        # extra memory traffic.
        slot = self._lookup_slot_by_name(attr.name)
        if slot is None:
            raise TypeError(f"unresolved vpfloat attribute {attr.name!r}")
        loaded = self.builder.load(slot, name=f"{attr.name}.attr")
        return self._coerce_to_i32(loaded)

    def _coerce_to_i32(self, value: Value) -> Value:
        if value.type == I32:
            return value
        if value.type.is_integer:
            opcode = "trunc" if value.type.bits > 32 else "sext"
            return self.builder.cast(opcode, value, I32, name="attr.i32")
        raise TypeError("vpfloat attribute must be integer-typed")

    def _current_params(self) -> List[ast.ParamDecl]:
        return self._params_by_func.get(self.func.name, [])

    def _lookup_slot_by_name(self, name: str) -> Optional[Value]:
        local = self.local_slot_names.get(name)
        if local is not None:
            return local
        return self.module.globals.get(name)

    # ------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------ #

    def generate(self, verify: bool = True) -> Module:
        self._decl_by_id: Dict[int, ast.Node] = {}
        self._params_by_func: Dict[str, List[ast.ParamDecl]] = {}
        for decl in self.unit.globals():
            self._emit_global(decl)
        # Declare all functions first so forward calls resolve.
        for func_decl in self.unit.functions():
            self._declare_function(func_decl)
        for func_decl in self.unit.functions():
            if func_decl.body is not None:
                self._emit_function(func_decl)
        if verify:
            verify_module(self.module)
        return self.module

    # ------------------------------------------------------------ #
    # Globals and declarations
    # ------------------------------------------------------------ #

    def _emit_global(self, decl: ast.VarDecl) -> None:
        value_type = self.ir_type(decl.type)
        initializer = None
        if decl.init is not None:
            initializer = self._const_initializer(decl.init, value_type)
        var = GlobalVariable(value_type, decl.name, initializer)
        self.module.add_global(var)
        self.slots[id(decl)] = var
        self.decl_types[id(decl)] = decl.type
        self._decl_by_id[id(decl)] = decl

    def _const_initializer(self, expr: ast.Expr, type: IRType):
        if isinstance(expr, ast.IntLit):
            if type.is_integer:
                return ConstantInt(type, expr.value)
            if type.is_float:
                return ConstantFloat(type, float(expr.value))
        if isinstance(expr, ast.FloatLit) and type.is_float:
            return ConstantFloat(type, float(expr.text))
        if isinstance(expr, ast.FloatLit) and type.is_vpfloat:
            return ConstantVPFloat(type, from_str(expr.text, LITERAL_PRECISION))
        if isinstance(expr, ast.Unary) and expr.op == "-":
            inner = self._const_initializer(expr.operand, type)
            if isinstance(inner, ConstantInt):
                return ConstantInt(type, -inner.value)
            if isinstance(inner, ConstantFloat):
                return ConstantFloat(type, -inner.value)
        raise CodegenError("global initializer must be a literal",
                           expr.line, expr.column)

    def _declare_function(self, decl: ast.FunctionDecl) -> None:
        if decl.name in self.module.functions:
            self._params_by_func.setdefault(decl.name, decl.params)
            return
        self.func_decls[decl.name] = decl
        self._params_by_func[decl.name] = decl.params
        # Parameters with dependent vpfloat types need their attribute
        # arguments resolved while building the signature: construct the
        # Function first with placeholder types, then patch.
        func = Function(decl.name,
                        FunctionType(VOID, [VOID] * len(decl.params)),
                        [p.name for p in decl.params])
        self.module.add_function(func)
        self.func, saved_slots = func, self.local_slot_names
        self.local_slot_names = {}
        try:
            param_types = []
            for param in decl.params:
                ptype = self.ir_type(decay(param.type))
                param_types.append(ptype)
                func.args[param.index].type = ptype
            ret_type = self.ir_type(decay(decl.return_type)) \
                if not isinstance(decl.return_type, VoidT) else VOID
            func.type = FunctionType(ret_type, param_types)
        finally:
            self.func = None
            self.local_slot_names = saved_slots

    # ------------------------------------------------------------ #
    # Function bodies
    # ------------------------------------------------------------ #

    def _emit_function(self, decl: ast.FunctionDecl) -> None:
        func = self.module.get_function(decl.name)
        self.func = func
        self.local_slot_names = {}
        entry = func.add_block("entry")
        self.builder.set_insert_point(entry)

        # Parameter slots: store each argument into an alloca so the body
        # can take addresses / reassign; mem2reg cleans this up.
        for param, arg in zip(decl.params, func.args):
            slot = self.builder.alloca(arg.type, name=f"{param.name}.addr")
            self.builder.store(arg, slot)
            self.slots[id(param)] = slot
            self.local_slot_names[param.name] = slot
            self.decl_types[id(param)] = decay(param.type)
            self._decl_by_id[id(param)] = param
            # Pin arguments used as type attributes (paper §III-B).
            if self._is_attribute_param(decl, param):
                keepalive = self._runtime("vpfloat.attr.keepalive")
                self.builder.call(keepalive,
                                  [self._coerce_to_i32(arg)], name="")

        self._emit_block(decl.body)

        # Implicit return for void functions / fallthrough.
        if self.builder.block.terminator is None:
            if isinstance(decl.return_type, VoidT):
                self.builder.ret()
            else:
                self.builder.ret(UndefValue(func.return_type))
        self.func = None

    def _is_attribute_param(self, func_decl: ast.FunctionDecl,
                            param: ast.ParamDecl) -> bool:
        def mentions(ctype: CType) -> bool:
            core = ctype
            while isinstance(core, (PointerT, ArrayT)):
                core = core.pointee if isinstance(core, PointerT) \
                    else core.element
            if not isinstance(core, VPFloatT):
                return False
            return any(isinstance(a, AttrRef) and a.name == param.name
                       for a in core.attributes())

        return any(mentions(p.type) for p in func_decl.params) or \
            mentions(func_decl.return_type)

    def _runtime(self, name: str) -> Function:
        return self.module.get_or_declare(name, RUNTIME_SIGNATURES[name])

    # ------------------------------------------------------------ #
    # Statements
    # ------------------------------------------------------------ #

    def _emit_block(self, block: ast.Block) -> None:
        for stmt in block.statements:
            if self.builder.block.terminator is not None:
                break  # unreachable code after return/break
            self._emit_stmt(stmt)

    def _emit_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            self._emit_block(stmt)
        elif isinstance(stmt, ast.DeclStmt):
            for decl in stmt.decls:
                self._emit_local_decl(decl)
        elif isinstance(stmt, ast.ExprStmt):
            self._emit_expr(stmt.expr)
        elif isinstance(stmt, ast.If):
            self._emit_if(stmt)
        elif isinstance(stmt, ast.While):
            self._emit_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._emit_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._emit_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._emit_return(stmt)
        elif isinstance(stmt, ast.Break):
            self.builder.br(self.break_targets[-1])
        elif isinstance(stmt, ast.Continue):
            self.builder.br(self.continue_targets[-1])
        elif isinstance(stmt, ast.Pragma):
            if stmt.text == "omp atomic" and stmt.statement is not None:
                self.builder.call(self._runtime("__omp_atomic_begin"), [],
                                  name="")
                self._emit_stmt(stmt.statement)
                self.builder.call(self._runtime("__omp_atomic_end"), [],
                                  name="")
            elif stmt.statement is not None:
                self._emit_stmt(stmt.statement)
        else:
            raise CodegenError(f"unsupported statement {type(stmt).__name__}",
                               stmt.line, stmt.column)

    def _emit_local_decl(self, decl: ast.VarDecl) -> None:
        ctype = decl.type
        self._decl_by_id[id(decl)] = decl
        if isinstance(ctype, ArrayT):
            element_ir = self.ir_type(ctype.element)
            if ctype.is_vla:
                extent = self._rvalue_as(decl.type.vla_extent, I64)
                self._emit_dynamic_size_check(ctype.element)
                slot = self.builder.alloca(element_ir, count=extent,
                                           name=decl.name)
            else:
                self._emit_dynamic_size_check(ctype.element)
                slot = self.builder.alloca(ArrayType(element_ir, ctype.size),
                                           name=decl.name)
        else:
            self._emit_dynamic_size_check(ctype)
            slot = self.builder.alloca(self.ir_type(ctype), name=decl.name)
        self.slots[id(decl)] = slot
        self.local_slot_names[decl.name] = slot
        self.decl_types[id(decl)] = ctype
        if decl.init is not None:
            target_type = slot.type.pointee
            value = self._emit_expr(decl.init, expected=target_type)
            value = self._convert(value, target_type, decl.init)
            self.builder.store(value, slot)

    def _emit_dynamic_size_check(self, ctype: CType) -> None:
        """Every dynamically-sized declaration calls ``__sizeof_vpfloat``
        to validate attributes and obtain the allocation size (§III-A5)."""
        if not isinstance(ctype, VPFloatT) or ctype.is_static:
            return
        self._emit_sizeof_call(ctype)

    def _emit_sizeof_call(self, ctype: VPFloatT) -> Value:
        exp = self._attr_value(ctype.exp)
        prec = self._attr_value(ctype.prec)
        if ctype.format == "unum":
            size = self._attr_value(ctype.size) if ctype.size \
                else ConstantInt(I32, 0)
            return self.builder.call(
                self._runtime("__sizeof_vpfloat"), [exp, prec, size],
                name="vpsize",
            )
        return self.builder.call(
            self._runtime("__sizeof_vpfloat_mpfr"), [exp, prec],
            name="vpsize",
        )

    def _emit_if(self, stmt: ast.If) -> None:
        cond = self._emit_condition(stmt.cond)
        then_block = self.func.add_block("if.then")
        merge_block = self.func.add_block("if.end")
        else_block = merge_block
        if stmt.else_body is not None:
            else_block = self.func.add_block("if.else")
        self.builder.cond_br(cond, then_block, else_block)

        self.builder.set_insert_point(then_block)
        self._emit_stmt(stmt.then_body)
        if self.builder.block.terminator is None:
            self.builder.br(merge_block)

        if stmt.else_body is not None:
            self.builder.set_insert_point(else_block)
            self._emit_stmt(stmt.else_body)
            if self.builder.block.terminator is None:
                self.builder.br(merge_block)

        self.builder.set_insert_point(merge_block)

    def _emit_while(self, stmt: ast.While) -> None:
        header = self.func.add_block("while.cond")
        body = self.func.add_block("while.body")
        exit_block = self.func.add_block("while.end")
        self.builder.br(header)
        self.builder.set_insert_point(header)
        cond = self._emit_condition(stmt.cond)
        self.builder.cond_br(cond, body, exit_block)
        self.builder.set_insert_point(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(header)
        self._emit_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.builder.block.terminator is None:
            self.builder.br(header)
        self.builder.set_insert_point(exit_block)

    def _emit_do_while(self, stmt: ast.DoWhile) -> None:
        body = self.func.add_block("do.body")
        cond_block = self.func.add_block("do.cond")
        exit_block = self.func.add_block("do.end")
        self.builder.br(body)
        self.builder.set_insert_point(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(cond_block)
        self._emit_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.builder.block.terminator is None:
            self.builder.br(cond_block)
        self.builder.set_insert_point(cond_block)
        cond = self._emit_condition(stmt.cond)
        self.builder.cond_br(cond, body, exit_block)
        self.builder.set_insert_point(exit_block)

    def _emit_for(self, stmt: ast.For) -> None:
        if stmt.omp_parallel:
            trip = self._estimate_trip_count(stmt)
            self.builder.call(self._runtime("__omp_parallel_begin"),
                              [trip], name="")
        if stmt.init is not None:
            self._emit_stmt(stmt.init)
        header = self.func.add_block("for.cond")
        body = self.func.add_block("for.body")
        step_block = self.func.add_block("for.inc")
        exit_block = self.func.add_block("for.end")
        self.builder.br(header)
        self.builder.set_insert_point(header)
        if stmt.cond is not None:
            cond = self._emit_condition(stmt.cond)
            self.builder.cond_br(cond, body, exit_block)
        else:
            self.builder.br(body)
        self.builder.set_insert_point(body)
        self.break_targets.append(exit_block)
        self.continue_targets.append(step_block)
        self._emit_stmt(stmt.body)
        self.break_targets.pop()
        self.continue_targets.pop()
        if self.builder.block.terminator is None:
            self.builder.br(step_block)
        self.builder.set_insert_point(step_block)
        if stmt.step is not None:
            self._emit_expr(stmt.step)
        self.builder.br(header)
        self.builder.set_insert_point(exit_block)
        if stmt.omp_parallel:
            self.builder.call(self._runtime("__omp_parallel_end"), [],
                              name="")

    def _estimate_trip_count(self, stmt: ast.For) -> Value:
        """Best-effort trip count for the parallel-for marker (cost model)."""
        if isinstance(stmt.cond, ast.Binary) and stmt.cond.op in ("<", "<="):
            bound = stmt.cond.rhs
            try:
                value = self._rvalue_as(bound, I64)
                return value
            except Exception:  # pragma: no cover - conservative fallback
                pass
        return ConstantInt(I64, 0)

    def _emit_return(self, stmt: ast.Return) -> None:
        if stmt.value is None:
            self.builder.ret()
            return
        expected = self.func.return_type
        value = self._emit_expr(stmt.value, expected=expected)
        value = self._convert(value, expected, stmt.value)
        self.builder.ret(value)

    # ------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------ #

    def _emit_condition(self, expr: ast.Expr) -> Value:
        value = self._emit_expr(expr)
        return self._to_bool(value)

    def _to_bool(self, value: Value) -> Value:
        if value.type == I1:
            return value
        if value.type.is_integer:
            zero = ConstantInt(value.type, 0)
            return self.builder.icmp("ne", value, zero)
        if value.type.is_float:
            zero = ConstantFloat(value.type, 0.0)
            return self.builder.fcmp("one", value, zero)
        if value.type.is_vpfloat:
            zero = self.builder.const_vpfloat(
                value.type, BigFloat.zero(LITERAL_PRECISION))
            return self.builder.fcmp("one", value, zero)
        if value.type.is_pointer:
            return self.builder.icmp(
                "ne",
                self.builder.cast("ptrtoint", value, I64),
                ConstantInt(I64, 0),
            )
        raise TypeError(f"cannot convert {value.type} to boolean")

    def _emit_expr(self, expr: ast.Expr,
                   expected: Optional[IRType] = None) -> Value:
        method = getattr(self, f"_gen_{type(expr).__name__}")
        return method(expr, expected)

    # ---- literals ------------------------------------------------ #

    def _gen_IntLit(self, expr: ast.IntLit, expected) -> Value:
        if expected is not None and expected.is_integer:
            return ConstantInt(expected, expr.value)
        bits = 64 if expr.long else 32
        return ConstantInt(IntType(bits), expr.value)

    def _gen_FloatLit(self, expr: ast.FloatLit, expected) -> Value:
        if expected is not None and expected.is_vpfloat:
            return self.builder.const_vpfloat(
                expected, from_str(expr.text, LITERAL_PRECISION))
        if expr.suffix == "f":
            import struct as _struct

            rounded = _struct.unpack("f", _struct.pack(
                "f", float(expr.text)))[0]
            return ConstantFloat(F32, rounded)
        constant = ConstantFloat(F64, float(expr.text))
        constant.literal_text = expr.text  # kept for exact vpfloat retyping
        return constant

    def _gen_StringLit(self, expr: ast.StringLit, expected) -> Value:
        from ..ir import ConstantString

        return ConstantString(PointerType(I8), expr.value)

    # ---- lvalues -------------------------------------------------- #

    def _lvalue(self, expr: ast.Expr) -> Tuple[Value, IRType]:
        """Returns (pointer, pointee IR type)."""
        if isinstance(expr, ast.Ident):
            slot = self.slots.get(id(expr.decl))
            if slot is None:
                raise CodegenError(f"no storage for {expr.name!r}",
                                   expr.line, expr.column)
            return slot, slot.type.pointee
        if isinstance(expr, ast.Index):
            return self._index_lvalue(expr)
        if isinstance(expr, ast.Deref):
            pointer = self._emit_expr(expr.operand)
            return pointer, pointer.type.pointee
        raise CodegenError("expression is not an lvalue",
                           expr.line, expr.column)

    def _index_lvalue(self, expr: ast.Index) -> Tuple[Value, IRType]:
        base_ct = decay(expr.base.ctype)
        index = self._rvalue_as(expr.index, I64)
        base = self._emit_expr(expr.base)
        if isinstance(base.type, PointerType) and \
                isinstance(base.type.pointee, ArrayType):
            ptr = self.builder.gep(base, [ConstantInt(I64, 0), index])
        else:
            ptr = self.builder.gep(base, [index])
        return ptr, ptr.type.pointee

    # ---- expressions ---------------------------------------------- #

    def _gen_Ident(self, expr: ast.Ident, expected) -> Value:
        declared = self.decl_types.get(id(expr.decl))
        if isinstance(declared, ArrayT) and declared.is_vla:
            # A VLA's storage slot *is* the decayed element pointer.
            return self.slots[id(expr.decl)]
        slot, pointee = self._lvalue(expr)
        if isinstance(pointee, ArrayType):
            # Array-to-pointer decay: &array[0].
            return self.builder.gep(
                slot, [ConstantInt(I64, 0), ConstantInt(I64, 0)],
                name=f"{expr.name}.decay",
            )
        return self.builder.load(slot, name=expr.name)

    def _gen_Index(self, expr: ast.Index, expected) -> Value:
        ptr, pointee = self._index_lvalue(expr)
        if isinstance(pointee, ArrayType):
            return self.builder.gep(
                ptr, [ConstantInt(I64, 0), ConstantInt(I64, 0)],
                name="decay",
            )
        return self.builder.load(ptr)

    def _gen_Deref(self, expr: ast.Deref, expected) -> Value:
        pointer = self._emit_expr(expr.operand)
        return self.builder.load(pointer)

    def _gen_AddressOf(self, expr: ast.AddressOf, expected) -> Value:
        pointer, _ = self._lvalue(expr.operand)
        return pointer

    def _gen_Binary(self, expr: ast.Binary, expected) -> Value:
        op = expr.op
        if op == ",":
            self._emit_expr(expr.lhs)
            return self._emit_expr(expr.rhs)
        if op in ("&&", "||"):
            return self._gen_short_circuit(expr)
        lhs_ct = decay(expr.lhs.ctype)
        rhs_ct = decay(expr.rhs.ctype)
        if op in ("==", "!=", "<", "<=", ">", ">="):
            return self._gen_comparison(expr, lhs_ct, rhs_ct)
        if isinstance(lhs_ct, PointerT) or isinstance(rhs_ct, PointerT):
            return self._gen_pointer_arith(expr, lhs_ct, rhs_ct)
        result_type = self.ir_type(expr.ctype)
        lhs = self._emit_expr(expr.lhs, expected=result_type)
        rhs = self._emit_expr(expr.rhs, expected=result_type)
        lhs = self._convert(lhs, result_type, expr.lhs)
        rhs = self._convert(rhs, result_type, expr.rhs)
        if result_type.is_fp:
            opcode = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv",
                      "%": "frem"}[op]
        else:
            signed = getattr(expr.ctype, "signed", True)
            opcode = {
                "+": "add", "-": "sub", "*": "mul",
                "/": "sdiv" if signed else "udiv",
                "%": "srem" if signed else "urem",
                "&": "and", "|": "or", "^": "xor",
                "<<": "shl", ">>": "ashr" if signed else "lshr",
            }[op]
        return self.builder.binop(opcode, lhs, rhs)

    def _gen_comparison(self, expr: ast.Binary, lhs_ct, rhs_ct) -> Value:
        if isinstance(lhs_ct, PointerT) or isinstance(rhs_ct, PointerT):
            lhs = self._emit_expr(expr.lhs)
            rhs = self._emit_expr(expr.rhs)
            lhs = self.builder.cast("ptrtoint", lhs, I64)
            rhs = self.builder.cast("ptrtoint", rhs, I64)
            pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                    ">": "ugt", ">=": "uge"}[expr.op]
            return self.builder.icmp(pred, lhs, rhs)
        common_ct = self._common_arith_type(lhs_ct, rhs_ct)
        common = self.ir_type(common_ct)
        lhs = self._convert(self._emit_expr(expr.lhs, expected=common),
                            common, expr.lhs)
        rhs = self._convert(self._emit_expr(expr.rhs, expected=common),
                            common, expr.rhs)
        if common.is_fp:
            pred = {"==": "oeq", "!=": "one", "<": "olt", "<=": "ole",
                    ">": "ogt", ">=": "oge"}[expr.op]
            return self.builder.fcmp(pred, lhs, rhs)
        signed = getattr(common_ct, "signed", True)
        if signed:
            pred = {"==": "eq", "!=": "ne", "<": "slt", "<=": "sle",
                    ">": "sgt", ">=": "sge"}[expr.op]
        else:
            pred = {"==": "eq", "!=": "ne", "<": "ult", "<=": "ule",
                    ">": "ugt", ">=": "uge"}[expr.op]
        return self.builder.icmp(pred, lhs, rhs)

    def _common_arith_type(self, a: CType, b: CType) -> CType:
        if isinstance(a, VPFloatT):
            return a
        if isinstance(b, VPFloatT):
            return b
        if isinstance(a, FloatT) or isinstance(b, FloatT):
            bits = max(a.bits if isinstance(a, FloatT) else 0,
                       b.bits if isinstance(b, FloatT) else 0)
            return FloatT(bits)
        bits = max(a.bits, b.bits, 32)
        signed = a.signed and b.signed
        return IntT(bits, signed)

    def _gen_pointer_arith(self, expr: ast.Binary, lhs_ct, rhs_ct) -> Value:
        if isinstance(lhs_ct, PointerT) and isinstance(rhs_ct, PointerT):
            lhs = self.builder.cast("ptrtoint", self._emit_expr(expr.lhs), I64)
            rhs = self.builder.cast("ptrtoint", self._emit_expr(expr.rhs), I64)
            diff = self.builder.sub(lhs, rhs)
            elem = self.ir_type(lhs_ct.pointee)
            return self.builder.sdiv(
                diff, ConstantInt(I64, elem.size_bytes()))
        if isinstance(lhs_ct, PointerT):
            base = self._emit_expr(expr.lhs)
            offset = self._rvalue_as(expr.rhs, I64)
            if expr.op == "-":
                offset = self.builder.sub(ConstantInt(I64, 0), offset)
            return self.builder.gep(base, [offset])
        base = self._emit_expr(expr.rhs)
        offset = self._rvalue_as(expr.lhs, I64)
        return self.builder.gep(base, [offset])

    def _gen_short_circuit(self, expr: ast.Binary) -> Value:
        lhs = self._emit_condition(expr.lhs)
        lhs_block = self.builder.block
        rhs_block = self.func.add_block("sc.rhs")
        merge = self.func.add_block("sc.end")
        if expr.op == "&&":
            self.builder.cond_br(lhs, rhs_block, merge)
        else:
            self.builder.cond_br(lhs, merge, rhs_block)
        self.builder.set_insert_point(rhs_block)
        rhs = self._emit_condition(expr.rhs)
        rhs_exit = self.builder.block
        self.builder.br(merge)
        self.builder.set_insert_point(merge)
        phi = self.builder.phi(I1, name="sc")
        phi.add_incoming(ConstantInt(I1, 0 if expr.op == "&&" else 1),
                         lhs_block)
        phi.add_incoming(rhs, rhs_exit)
        return phi

    def _gen_Unary(self, expr: ast.Unary, expected) -> Value:
        if expr.op in ("++", "--"):
            ptr, pointee = self._lvalue(expr.operand)
            old = self.builder.load(ptr)
            if pointee.is_pointer:
                step = ConstantInt(I64, 1 if expr.op == "++" else -1)
                new = self.builder.gep(old, [step])
            else:
                one = ConstantInt(pointee, 1)
                new = (self.builder.add(old, one) if expr.op == "++"
                       else self.builder.sub(old, one))
            self.builder.store(new, ptr)
            return old if expr.postfix else new
        if expr.op == "!":
            return self.builder.binop(
                "xor", self._emit_condition(expr.operand),
                ConstantInt(I1, 1))
        operand = self._emit_expr(expr.operand, expected=expected)
        if expr.op == "+":
            return operand
        if expr.op == "~":
            return self.builder.binop(
                "xor", operand, ConstantInt(operand.type, -1))
        # Negation.
        if operand.type.is_fp:
            return self.builder.fneg(operand)
        return self.builder.sub(ConstantInt(operand.type, 0), operand)

    def _gen_Assign(self, expr: ast.Assign, expected) -> Value:
        ptr, pointee = self._lvalue(expr.target)
        if expr.op == "=":
            value = self._emit_expr(expr.value, expected=pointee)
            value = self._convert(value, pointee, expr.value)
        else:
            op = expr.op[:-1]
            old = self.builder.load(ptr)
            if pointee.is_pointer:
                offset = self._rvalue_as(expr.value, I64)
                if op == "-":
                    offset = self.builder.sub(ConstantInt(I64, 0), offset)
                value = self.builder.gep(old, [offset])
            else:
                rhs = self._emit_expr(expr.value, expected=pointee)
                rhs = self._convert(rhs, pointee, expr.value)
                if pointee.is_fp:
                    opcode = {"+": "fadd", "-": "fsub", "*": "fmul",
                              "/": "fdiv", "%": "frem"}[op]
                else:
                    opcode = {"+": "add", "-": "sub", "*": "mul",
                              "/": "sdiv", "%": "srem"}[op]
                value = self.builder.binop(opcode, old, rhs)
        self.builder.store(value, ptr)
        return value

    def _gen_Ternary(self, expr: ast.Ternary, expected) -> Value:
        result_type = self.ir_type(expr.ctype)
        cond = self._emit_condition(expr.cond)
        then_block = self.func.add_block("sel.then")
        else_block = self.func.add_block("sel.else")
        merge = self.func.add_block("sel.end")
        self.builder.cond_br(cond, then_block, else_block)
        self.builder.set_insert_point(then_block)
        tval = self._convert(
            self._emit_expr(expr.true_expr, expected=result_type),
            result_type, expr.true_expr)
        then_exit = self.builder.block
        self.builder.br(merge)
        self.builder.set_insert_point(else_block)
        fval = self._convert(
            self._emit_expr(expr.false_expr, expected=result_type),
            result_type, expr.false_expr)
        else_exit = self.builder.block
        self.builder.br(merge)
        self.builder.set_insert_point(merge)
        phi = self.builder.phi(result_type, name="cond")
        phi.add_incoming(tval, then_exit)
        phi.add_incoming(fval, else_exit)
        return phi

    def _gen_Call(self, expr: ast.Call, expected) -> Value:
        mapped = _VP_BUILTIN_MAP.get(expr.name)
        if mapped is not None:
            args = [self._emit_expr(a) for a in expr.args]
            result_type = args[0].type
            return self.builder.call(self._runtime(mapped), args,
                                     name=expr.name,
                                     result_type=result_type)
        if expr.decl is None:
            # Library builtin with a concrete signature.
            callee = self._runtime(expr.name)
            args = []
            for arg, ptype in zip(expr.args, callee.type.params):
                value = self._emit_expr(arg, expected=ptype)
                args.append(self._convert(value, ptype, arg))
            return self.builder.call(callee, args, name=expr.name)
        callee = self.module.get_function(expr.name)
        args = []
        for arg, ptype in zip(expr.args, callee.type.params):
            if _mentions_foreign_vpfloat(ptype, self.func):
                # Dependent parameter type: the argument already satisfies
                # it (attribute equality is enforced by the runtime checks
                # below); no conversion is possible or needed.
                args.append(self._emit_expr(arg))
                continue
            value = self._emit_expr(arg, expected=ptype)
            args.append(self._convert(value, ptype, arg))
        # Runtime attribute-consistency checks (paper Listing 3).
        for check in getattr(expr, "runtime_attr_checks", []):
            self._emit_attr_check(expr, check, callee, args)
        # Dependent return types are rebound to caller-side attributes
        # (sema already substituted them into expr.ctype).
        result_type = None
        if _mentions_foreign_vpfloat(callee.return_type, self.func):
            result_type = self.ir_type(expr.ctype)
        return self.builder.call(callee, args, name=expr.name,
                                 result_type=result_type)

    def _emit_attr_check(self, expr: ast.Call, check, callee, args) -> None:
        name, against = check
        actual = self._call_attr_value(expr, name, callee, args)
        if actual is None:
            return
        if isinstance(against, int):
            expected_value: Value = ConstantInt(I32, against)
        else:
            # The comparison is against the attribute value *captured in
            # the argument's declared type* (paper Listing 3 line 17:
            # "++p" invalidates the previously-created types), so pull it
            # out of the vpfloat argument's IR type rather than
            # re-reading the caller variable at the call site.
            expected_value = self._declared_attr_capture(expr, name, args)
            if expected_value is None:
                try:
                    expected_value = self._attr_value(AttrRef(against))
                except TypeError:
                    expected_value = self._call_attr_value(expr, against,
                                                           callee, args)
            if expected_value is None:
                return
        self.builder.call(self._runtime("__vpfloat_check_attr"),
                          [actual, expected_value], name="")

    def _declared_attr_capture(self, expr: ast.Call, attr_name: str,
                               args) -> Optional[Value]:
        """The attribute Value captured in a vpfloat argument's type.

        ``attr_name`` names an attribute of a callee parameter's dependent
        type; the matching argument's IR type carries the caller-side
        Value that was captured when the argument was *declared* — the
        value the runtime check must compare against.
        """
        params = self._params_by_func.get(expr.name, [])
        for i, param in enumerate(params):
            if i >= len(args):
                break
            ctype = decay(param.type)
            while isinstance(ctype, (PointerT, ArrayT)):
                ctype = ctype.pointee if isinstance(ctype, PointerT) \
                    else ctype.element
            if not isinstance(ctype, VPFloatT):
                continue
            ir_ty = args[i].type
            while True:
                inner = getattr(ir_ty, "pointee",
                                getattr(ir_ty, "element", None))
                if inner is None:
                    break
                ir_ty = inner
            if not isinstance(ir_ty, VPFloatType):
                continue
            for attr_ast, attr_ir in zip(
                (ctype.exp, ctype.prec, ctype.size),
                (ir_ty.exp_attr, ir_ty.prec_attr, ir_ty.size_attr),
            ):
                if isinstance(attr_ast, AttrRef) and \
                        attr_ast.name == attr_name and attr_ir is not None:
                    return self._coerce_to_i32(attr_ir)
        return None

    def _call_attr_value(self, expr: ast.Call, name: str, callee,
                         args) -> Optional[Value]:
        """The i32 value bound to callee parameter ``name`` at this call."""
        params = self._params_by_func.get(expr.name, [])
        for i, param in enumerate(params):
            if param.name == name and i < len(args):
                value = args[i]
                if value.type.is_integer:
                    return self._coerce_to_i32(value)
        # Not a parameter: caller-scope variable.
        try:
            return self._attr_value(AttrRef(name))
        except TypeError:
            return None

    def _gen_Cast(self, expr: ast.Cast, expected) -> Value:
        target = self.ir_type(decay(expr.target_type))
        value = self._emit_expr(expr.expr, expected=target)
        return self._convert(value, target, expr.expr, explicit=True)

    def _gen_SizeofType(self, expr: ast.SizeofType, expected) -> Value:
        queried = expr.queried_type
        if isinstance(queried, VPFloatT) and not queried.is_static:
            return self._emit_sizeof_call(queried)
        return ConstantInt(I64, self.ir_type(queried).size_bytes())

    def _gen_SizeofExpr(self, expr: ast.SizeofExpr, expected) -> Value:
        ctype = expr.operand.ctype
        if isinstance(ctype, VPFloatT) and not ctype.is_static:
            return self._emit_sizeof_call(ctype)
        return ConstantInt(I64, self.ir_type(decay(ctype)).size_bytes())

    # ------------------------------------------------------------ #
    # Conversions
    # ------------------------------------------------------------ #

    def _rvalue_as(self, expr: ast.Expr, type: IRType) -> Value:
        value = self._emit_expr(expr, expected=type)
        return self._convert(value, type, expr)

    def _convert(self, value: Value, target: IRType, origin: ast.Expr,
                 explicit: bool = False) -> Value:
        source = value.type
        if source == target:
            return value
        # Constant folding of literal conversions.
        if isinstance(value, ConstantFloat) and target.is_vpfloat:
            text = getattr(value, "literal_text", None)
            if text is not None:
                return self.builder.const_vpfloat(
                    target, from_str(text, LITERAL_PRECISION))
            return self.builder.const_vpfloat(
                target, BigFloat.from_float(value.value, LITERAL_PRECISION))
        if isinstance(value, ConstantInt) and target.is_fp:
            if target.is_vpfloat:
                return self.builder.const_vpfloat(
                    target, BigFloat.from_int(value.value, LITERAL_PRECISION))
            return ConstantFloat(target, float(value.value))
        if isinstance(value, ConstantInt) and target.is_integer:
            return ConstantInt(target, value.value)
        if source.is_integer and target.is_integer:
            if target.bits > source.bits:
                return self.builder.cast("sext", value, target)
            if target.bits < source.bits:
                return self.builder.cast("trunc", value, target)
            return self.builder.cast("bitcast", value, target)
        if source.is_integer and target.is_float:
            return self.builder.cast("sitofp", value, target)
        if source.is_integer and target.is_vpfloat:
            return self.builder.cast("sitofp", value, target)
        if source.is_float and target.is_integer:
            return self.builder.cast("fptosi", value, target)
        if source.is_float and target.is_float:
            opcode = "fpext" if target.bits > source.bits else "fptrunc"
            return self.builder.cast(opcode, value, target)
        # vpfloat conversions are always explicit vpconv instructions;
        # sema restricted the implicit ones to plain assignment already.
        if source.is_fp and target.is_fp:
            return self.builder.vpconv(value, target)
        if source.is_vpfloat and target.is_integer:
            return self.builder.cast("fptosi", value, target)
        if source.is_pointer and target.is_pointer:
            return self.builder.cast("bitcast", value, target)
        if source.is_pointer and target.is_integer:
            return self.builder.cast("ptrtoint", value, target)
        if source.is_integer and target.is_pointer:
            return self.builder.cast("inttoptr", value, target)
        raise CodegenError(
            f"cannot convert {source} to {target}",
            origin.line, origin.column,
        )


def _mentions_foreign_vpfloat(type: IRType, current_func) -> bool:
    """True when ``type`` contains a vpfloat whose attributes are Values
    owned by a different function (a dependent callee signature type)."""
    core = type
    while isinstance(core, (PointerType, ArrayType)):
        core = core.pointee if isinstance(core, PointerType) else core.element
    if not isinstance(core, VPFloatType):
        return False
    from ..ir import Constant

    return any(not isinstance(a, Constant) for a in core.attributes())


def generate_ir(unit: ast.TranslationUnit, name: str = "module",
                verify: bool = True) -> Module:
    """Lower an analyzed translation unit to an IR module."""
    return IRGenerator(unit, name).generate(verify=verify)
