"""Per-function Python-source codegen: the ``jit`` execution engine.

The closure-table engine (:mod:`repro.runtime.dispatch`) pays one Python
call plus several frame-dict operations per executed IR instruction.
This module removes both: :class:`FunctionEmitter` translates one IR
function into straight-line Python source with every SSA value
register-allocated to a Python local, constant-attribute vpfloat
precisions / rounding modes / guard bits baked into the emitted text,
the :mod:`repro.bigfloat.arith` integer-mantissa kernels inlined (via
:mod:`repro.codegen.kernels`) for the constant-precision ``RNDN`` case,
and all statically-known cycle charges of a basic block folded into one
bulk ``report.charge(category, total)`` per category.

Observable semantics are bit-identical with the closure engines for any
function the emitter accepts: the same cycles land in the same
categories, the same memory traffic reaches the cache model, runtime
builtins run through the interpreter's *installed* handlers (so MPFR
pool sampling, registry variants and error text are shared, not
re-implemented), and runtime errors keep their exact types and
messages.  Anything the emitter cannot prove static -- dynamic vpfloat
attributes, posit arithmetic, unknown builtins, dynamically-sized
element types, non-static GEPs -- raises :class:`_Unsupported` during
emission and that one *function* silently falls back to the fused
closure-table engine; jit selection is per-function, never a hard
error.

Generated source is self-contained: it defines ``_make(R)`` where ``R``
is a :class:`JitRuntime` bound to one (interpreter, function) pair, and
every constant, instruction handle, global address, builtin handler and
specialized kernel is re-resolved through ``R`` by stable IR
coordinates (block index, instruction index, operand index).  The text
therefore contains no live object references and can be persisted in
the compile cache (``<key>.vpcgen`` sidecars, see
:meth:`repro.core.cache.CompileCache.put_codegen`) and re-bound in a
different process against the identical pickled program.
"""

from __future__ import annotations

import math
import time
from typing import Dict, List, Optional, Tuple

from ..bigfloat import BigFloat, RNDN, limb_bytes
from ..bigfloat.number import Kind
from ..ir import (
    AllocaInst,
    ArrayType,
    BinaryInst,
    BranchInst,
    CallInst,
    CastInst,
    Constant,
    ConstantFloat,
    ConstantInt,
    ConstantPointerNull,
    ConstantString,
    ConstantVPFloat,
    FCmpInst,
    FNegInst,
    Function,
    GEPInst,
    GlobalVariable,
    ICmpInst,
    LoadInst,
    PhiInst,
    PointerType,
    RetInst,
    SelectInst,
    StoreInst,
    StructType,
    UndefValue,
    UnreachableInst,
    VPFloatType,
)
from ..observability.tracer import CAT_COMPILE
from . import CODEGEN_VERSION
from .batch_kernels import select_batch_kernel
from .smallfloat import select_scalar_kernel

#: vpfloat binary opcodes with an inlinable specialized kernel.
_VP_OPS = {"fadd": "add", "fsub": "sub", "fmul": "mul", "fdiv": "div"}

_INT_SYMS = {"add": "+", "sub": "-", "mul": "*",
             "and": "&", "or": "|", "xor": "^"}
_FLOAT_SYMS = {"fadd": "+", "fsub": "-", "fmul": "*"}
_FLOAT_FIELDS = {"fadd": "f64_add", "fsub": "f64_add",
                 "fmul": "f64_mul", "fdiv": "f64_div", "frem": "f64_div"}
_SIGNED_CMPS = {"eq": "==", "ne": "!=", "slt": "<", "sle": "<=",
                "sgt": ">", "sge": ">="}
_UNSIGNED_CMPS = {"ult": "<", "ule": "<=", "ugt": ">", "uge": ">="}

#: Placeholder line marking an OpenMP region boundary inside a block's
#: step stream; _emit_block replaces it with the next charge segment.
_FLUSH_MARKER = "#__vpjit_charge_flush__"

#: IR-location tag line: everything after it (until the next tag) came
#: from that (block, instruction index, opcode).  Stripped from the
#: final source by emit(), which turns the tags into a line map -- the
#: substrate the IR profiler's wall-clock sampler resolves emitted
#: frames against (see repro.observability.profile).
_LOC_MARKER = "#__vpjit_loc__"

#: ``<vpjit:{function}>`` code filename -> line map of the most recent
#: materialization, for resolving sampled frames back to IR locations.
#: Keyed by filename because that is all ``sys._current_frames`` gives
#: the sampler; two programs sharing a function name overwrite each
#: other (last materialized wins), which profiling one program at a
#: time -- the only supported mode -- never notices.
LINE_MAPS: Dict[str, Dict[int, tuple]] = {}


def _loc_tag(block: str, ii: Optional[int], opcode: Optional[str]) -> str:
    return (f"{_LOC_MARKER}{block}\x00"
            f"{'' if ii is None else ii}\x00{opcode or ''}")

#: MPFR runtime builtins inlined at their call sites (name -> arity).
_MPFR_INLINE = {
    "mpfr_add": 3, "mpfr_sub": 3, "mpfr_mul": 3, "mpfr_div": 3,
    "mpfr_fma": 4, "mpfr_fms": 4, "mpfr_set": 2,
    "mpfr_set_d": 2, "mpfr_set_si": 2,
}


class _Unsupported(Exception):
    """The emitter cannot prove this function static; fall back."""


class _KernelMap(dict):
    """``(prec, exp_bits) -> specialized RNDN kernel`` for one op.

    MPFR handle precisions are runtime values (they flow through
    ``mpfr_init2``), so inlined mpfr call sites key their kernel by the
    destination handle's precision and exponent-range clamp at
    execution time; the dict hit is a single C-level lookup and misses
    specialize on first use.  Misses pick the kernel tier (tiered
    smallfloat vs generic) from the interpreter's policy and, when the
    run is observing, bind per-tier counting wrappers.
    """

    def __init__(self, op: str, interp=None):
        super().__init__()
        self.op = op
        self.interp = interp

    def __missing__(self, key):
        prec, exp_bits = key
        interp = self.interp
        kernel = select_scalar_kernel(
            self.op, prec, exp_bits,
            getattr(interp, "kernel_tier", "auto"),
            getattr(interp, "tier_stats", None))
        self[key] = kernel
        return kernel


class _BatchKernelMap(dict):
    """``(prec, exp_bits) -> fused batched RNDN kernel`` for one op.

    Batch-mode call sites additionally key on the destination handle's
    exponent-range clamp (folded into the kernel's lane store), so the
    emitted body needs no per-call clamp block.
    """

    def __init__(self, op: str, ctx):
        super().__init__()
        self.op = op
        self.ctx = ctx

    def __missing__(self, key):
        prec, exp_bits = key
        kernel = select_batch_kernel(self.op, prec, RNDN, exp_bits,
                                     self.ctx)
        self[key] = kernel
        return kernel


class JitRuntime:
    """Make-time resolver for one (interpreter, function) pair.

    Emitted modules receive one instance as ``R`` and resolve every
    non-literal prelude binding through it by IR coordinates, so the
    same source text re-binds cleanly against any interpreter running
    the identical program.
    """

    __slots__ = ("interp", "func")

    # Shared runtime references the emitted prelude picks up; class
    # attributes so every generated module sees one set of objects.
    f32 = None          # filled below (module import order)
    trunc_div = None
    VPR = None
    XLE = None
    BigFloat = BigFloat
    KFIN = Kind.FINITE
    RNDN = RNDN
    fmod = math.fmod
    copysign = math.copysign
    inf = math.inf
    nan = math.nan
    limb_bytes = staticmethod(limb_bytes)
    # Bound by the prelude in every module; only batch-mode source
    # (emitted against a BatchInterpreter) ever calls them.
    batch_from_float = None
    batch_from_int = None

    def __init__(self, interp, func: Function):
        self.interp = interp
        self.func = func

    def _inst(self, bi: int, ii: int):
        return self.func.blocks[bi].instructions[ii]

    def inst(self, bi: int, ii: int):
        """The live instruction object at (block, instruction) index."""
        return self._inst(bi, ii)

    def const(self, bi: int, ii: int, oi: int):
        """Resolve operand ``oi`` of instruction (bi, ii) frame-free,
        with the closure engine's getter semantics."""
        return self._resolve(self._inst(bi, ii).operands[oi])

    def default(self, bi: int, ii: int):
        """The (shared) zero value loads of this instruction produce."""
        return self.interp._default(self._inst(bi, ii).type, None)

    def global_addr(self, name: str) -> int:
        return self.interp.globals[name]

    def function(self, name: str) -> Function:
        return self.interp.module.get_function(name)

    def builtin(self, name: str):
        handler = self.interp._builtins.get(name)
        if handler is None:
            raise KeyError(f"no runtime builtin {name!r}")
        return handler

    def kernel(self, opcode: str, prec: int, exp_bits=None):
        return select_scalar_kernel(
            _VP_OPS[opcode], prec, exp_bits,
            getattr(self.interp, "kernel_tier", "auto"),
            getattr(self.interp, "tier_stats", None))

    def mpfr_kernels(self, op: str) -> _KernelMap:
        return _KernelMap(op, self.interp)

    def _resolve(self, v):
        interp = self.interp
        if isinstance(v, ConstantInt):
            return v.value
        if isinstance(v, ConstantFloat):
            value = v.value
            return JitRuntime.f32(value) if v.type.bits == 32 else value
        if isinstance(v, ConstantPointerNull):
            return 0
        if isinstance(v, ConstantString):
            return v.text
        if isinstance(v, UndefValue):
            return interp._default(v.type, None)
        if isinstance(v, Constant):
            return interp._constant(v, None)
        if isinstance(v, GlobalVariable):
            return interp.globals[v.name]
        if isinstance(v, Function):
            return v
        raise TypeError(f"cannot resolve {type(v).__name__} at bind time")


class BatchJitRuntime(JitRuntime):
    """Resolver for batch-mode modules: mpfr kernel maps hand out the
    fused N-lane kernels (clamp folded, keyed ``(prec, exp_bits)``) and
    scalar assignments broadcast across the interpreter's lanes."""

    __slots__ = ()

    def mpfr_kernels(self, op: str) -> _BatchKernelMap:
        return _BatchKernelMap(op, self.interp.batch)

    def batch_from_float(self, value, prec: int):
        from ..runtime.batch import VPBatch
        return VPBatch.broadcast(BigFloat.from_float(value, prec),
                                 self.interp.batch.lanes)

    def batch_from_int(self, value, prec: int):
        from ..runtime.batch import VPBatch
        return VPBatch.broadcast(BigFloat.from_int(value, prec),
                                 self.interp.batch.lanes)


def _bind_runtime_refs() -> None:
    # Deferred import: repro.runtime.interpreter imports this package
    # lazily from inside a method, so importing it back at call time is
    # cycle-free; doing it at module import keeps direct `import
    # repro.codegen.pyjit` working too.
    from ..runtime.interpreter import (ExecutionLimitExceeded,
                                       VPRuntimeError, _f32, _trunc_div)

    JitRuntime.f32 = staticmethod(_f32)
    JitRuntime.trunc_div = staticmethod(_trunc_div)
    JitRuntime.VPR = VPRuntimeError
    JitRuntime.XLE = ExecutionLimitExceeded


_bind_runtime_refs()


# ----------------------------------------------------------------- #
# Emitter
# ----------------------------------------------------------------- #

_PRELUDE = """\
_interp = R.interp
_acct = _interp.accounting
_rep = _acct.report
_chg = _rep.charge
_C = _acct.costs
_c_call = _C.call_overhead
_c_ret = _C.ret
_LIM = _interp.max_steps
_LIMMSG = "exceeded %d interpreted instructions" % _LIM
_mem = _interp.memory
_ml = _mem.load
_ms = _mem.store
_alloc = _mem.alloc_stack
_smark = _mem.stack_mark
_srel = _mem.stack_release
_VPR = R.VPR
_XLE = R.XLE
_BF = R.BigFloat
_FIN = R.KFIN
_AB = _interp._as_bigfloat
_f32 = R.f32
_fcmpv = _interp._fcmp_values
_cast = _interp._cast_value
_call = _interp.call_function
_tdiv = R.trunc_div
_fmod = R.fmod
_copysign = R.copysign
_INF = R.inf
_NAN = R.nan
_mreg = _interp.metrics
_MET = _mreg is not None
if _MET:
    _obs = _mreg.observe
    _minc = _mreg.inc
_mcc = _interp._mpfr_cost_cache
_mopc = _C.mpfr_op_cost
_bcat = _rep.by_category
_mstats = _interp.mpfr.stats
_mbump = _mstats.bump
_bfromf = R.batch_from_float
_bfromi = R.batch_from_int
_lbytes = R.limb_bytes
_lbc = {}
_cachem = _acct.cache
_HC = _cachem is not None
if _HC:
    _cacc = _cachem.access"""


class FunctionEmitter:
    """Emits one function's jit module source, or raises _Unsupported."""

    def __init__(self, interp, func: Function):
        self.interp = interp
        self.func = func
        # Batched interpreters carry a BatchContext; their modules use
        # the fused N-lane mpfr kernels and broadcast assignments.
        self.batch = getattr(interp, "batch", None) is not None
        self.names: Dict[int, str] = {}
        self.pool: Dict[int, str] = {}
        self.prelude: List[str] = []
        self._inst_refs: Dict[int, str] = {}
        self._fn_refs: Dict[str, str] = {}
        self._builtin_refs: Dict[str, str] = {}
        self._kernel_refs: Dict[Tuple[str, int, Optional[int]], str] = {}
        self._mpfr_map_refs: Dict[str, str] = {}
        self._default_refs: Dict[int, str] = {}
        # Current block accumulators.  Charges are bulk-counted per
        # block but flushed into *segments* at OpenMP region markers so
        # parallel-region attribution matches the per-instruction
        # engines (see _emit_call).
        self._charges: Dict[str, Dict[str, int]] = {}
        self._mid_flushes: List[Dict[str, Dict[str, int]]] = []
        self._block_segments: List[Dict[str, Dict[str, int]]] = []
        self._tele_bits: Dict[Tuple[str, int], int] = {}
        self._tele_guard: Dict[int, int] = {}
        #: 1-based emitted-source line -> (block, inst index, opcode);
        #: filled by emit().
        self.line_map: Dict[int, tuple] = {}

    # ---- static analysis helpers --------------------------------- #

    def _static_sizeof(self, type_) -> Optional[int]:
        try:
            return self.interp._sizeof(type_, None)
        except Exception:
            return None

    def _vp_static_ok(self, type_) -> bool:
        """True if no dynamic vpfloat attribute can be reached when the
        runtime resolves this type without a frame."""
        if isinstance(type_, VPFloatType):
            attrs = [a for a in (type_.exp_attr, type_.prec_attr,
                                 getattr(type_, "size_attr", None))
                     if a is not None]
            if not all(isinstance(a, ConstantInt) for a in attrs):
                return False
            try:
                self.interp.vp_config(type_, None)
            except Exception:
                # Statically invalid attrs: fall back so the closure
                # engine surfaces the validation error at execution.
                return False
            return True
        if isinstance(type_, ArrayType):
            return self._vp_static_ok(type_.element)
        if isinstance(type_, StructType):
            return all(self._vp_static_ok(f) for f in type_.fields)
        return True

    # ---- operand references -------------------------------------- #

    def ref(self, v, bi: int, ii: int, oi: int) -> str:
        name = self.names.get(id(v))
        if name is not None:
            return name
        if isinstance(v, ConstantInt):
            return repr(v.value)
        if isinstance(v, ConstantPointerNull):
            return "0"
        if isinstance(v, ConstantFloat):
            value = JitRuntime.f32(v.value) if v.type.bits == 32 \
                else v.value
            if math.isfinite(value):
                return repr(value)
            return self._pool(v, bi, ii, oi)
        if isinstance(v, ConstantVPFloat):
            if not self._vp_static_ok(v.type):
                raise _Unsupported("dynamic vpfloat constant")
            return self._pool(v, bi, ii, oi)
        if isinstance(v, UndefValue):
            try:
                self.interp._default(v.type, None)
            except Exception:
                raise _Unsupported("dynamic undef type") from None
            return self._pool(v, bi, ii, oi)
        if isinstance(v, (Constant, GlobalVariable, Function)):
            return self._pool(v, bi, ii, oi)
        raise _Unsupported(f"unsupported operand {type(v).__name__}")

    def _pool(self, v, bi: int, ii: int, oi: int) -> str:
        name = self.pool.get(id(v))
        if name is None:
            name = f"k{len(self.pool)}"
            self.pool[id(v)] = name
            self.prelude.append(f"{name} = R.const({bi}, {ii}, {oi})")
        return name

    def _inst_ref(self, inst, bi: int, ii: int) -> str:
        name = self._inst_refs.get(id(inst))
        if name is None:
            name = f"_i{len(self._inst_refs)}"
            self._inst_refs[id(inst)] = name
            self.prelude.append(f"{name} = R.inst({bi}, {ii})")
        return name

    def _fn_ref(self, func: Function) -> str:
        name = self._fn_refs.get(func.name)
        if name is None:
            name = f"_f{len(self._fn_refs)}"
            self._fn_refs[func.name] = name
            self.prelude.append(f"{name} = R.function({func.name!r})")
        return name

    def _builtin_ref(self, bname: str) -> str:
        name = self._builtin_refs.get(bname)
        if name is None:
            name = f"_h{len(self._builtin_refs)}"
            self._builtin_refs[bname] = name
            self.prelude.append(f"{name} = R.builtin({bname!r})")
        return name

    def _kernel_ref(self, opcode: str, prec: int,
                    exp_bits: Optional[int] = None) -> str:
        key = (opcode, prec, exp_bits)
        name = self._kernel_refs.get(key)
        if name is None:
            name = f"_k{len(self._kernel_refs)}"
            self._kernel_refs[key] = name
            self.prelude.append(
                f"{name} = R.kernel({opcode!r}, {prec}, {exp_bits})")
        return name

    def _mpfr_map_ref(self, op: str) -> str:
        name = self._mpfr_map_refs.get(op)
        if name is None:
            name = f"_mk{len(self._mpfr_map_refs)}"
            self._mpfr_map_refs[op] = name
            self.prelude.append(f"{name} = R.mpfr_kernels({op!r})")
        return name

    def _default_ref(self, inst, bi: int, ii: int) -> str:
        name = self._default_refs.get(id(inst))
        if name is None:
            name = f"_d{len(self._default_refs)}"
            self._default_refs[id(inst)] = name
            self.prelude.append(f"{name} = R.default({bi}, {ii})")
        return name

    # ---- per-block accounting ------------------------------------ #

    def _charge(self, category: str, field: str, mult: int = 1) -> None:
        per_field = self._charges.setdefault(category, {})
        per_field[field] = per_field.get(field, 0) + mult

    def _vp_telemetry(self, opcode: str, prec: int, guard: int) -> None:
        key = (opcode, prec)
        self._tele_bits[key] = self._tele_bits.get(key, 0) + 1
        self._tele_guard[guard] = self._tele_guard.get(guard, 0) + 1

    # ---- entry point --------------------------------------------- #

    def emit(self) -> str:
        func = self.func
        blocks = list(func.blocks)
        if not blocks:
            raise _Unsupported("function has no blocks")
        self.block_index = {id(b): i for i, b in enumerate(blocks)}
        entry_index = self.block_index.get(id(func.entry))
        if entry_index is None:
            raise _Unsupported("entry block not in block list")
        for i, arg in enumerate(func.args):
            self.names[id(arg)] = f"a{i}"
        n = 0
        for block in blocks:
            for inst in block.instructions:
                self.names[id(inst)] = f"v{n}"
                n += 1

        charge_defs: List[str] = []
        block_chunks: List[List[str]] = []
        for bi, block in enumerate(blocks):
            lines = self._emit_block(block, bi, blocks)
            block_chunks.append(lines)
            for seg, charges in enumerate(self._block_segments):
                prefix = f"_q{bi}" if seg == 0 else f"_q{bi}s{seg}"
                for category in sorted(charges):
                    terms = []
                    for field in sorted(charges[category]):
                        count = charges[category][field]
                        terms.append(f"_C.{field}" if count == 1
                                     else f"_C.{field} * {count}")
                    charge_defs.append(f"{prefix}_{category} = "
                                       + " + ".join(terms))

        params = ", ".join(f"a{i}" for i in range(len(func.args)))
        out: List[str] = [
            f"# vpjit v{CODEGEN_VERSION}: function {func.name!r}",
            "# Auto-generated by repro.codegen.pyjit -- straight-line"
            " Python with SSA",
            "# values in locals and per-block bulk cycle accounting;"
            " do not edit.",
            "",
            "def _make(R):",
        ]
        for line in _PRELUDE.splitlines():
            out.append("    " + line)
        for line in self.prelude:
            out.append("    " + line)
        for line in charge_defs:
            out.append("    " + line)
        out.append("")
        out.append(f"    def _fn({params}):")
        out.append(_loc_tag("<fn>", None, None))
        out.append('        _chg("call", _c_call)')
        out.append("        _mark = _smark()")
        out.append(f"        _bb = {entry_index}")
        # Hot-block attribution for traced runs: the traced call path
        # installs a counts dict on the interpreter for the duration of
        # the call; untraced runs pay one None-check per block.
        out.append("        _cnt = _interp._block_counts")
        out.append("        while True:")
        for bi, lines in enumerate(block_chunks):
            kw = "if" if bi == 0 else "elif"
            name = blocks[bi].name
            out.append(_loc_tag(name, None, None))
            out.append(f"            {kw} _bb == {bi}:")
            out.append("                if _cnt is not None:")
            out.append(f"                    _cnt[{name!r}] = "
                       f"_cnt.get({name!r}, 0) + 1")
            for line in lines:
                out.append("                " + line)
        out.append("            else:")
        out.append('                raise _VPR("vpjit: unknown block id")')
        out.append("")
        out.append("    return _fn")
        out.append("")
        # Strip the location tags, turning them into a line map of the
        # final source (1-based line -> (block, inst index, opcode)).
        filtered: List[str] = []
        line_map: Dict[int, tuple] = {}
        current: Optional[tuple] = None
        for line in out:
            stripped = line.lstrip()
            if stripped.startswith(_LOC_MARKER):
                block_name, ii, opcode = \
                    stripped[len(_LOC_MARKER):].split("\x00")
                current = (block_name, int(ii) if ii else None,
                           opcode or None)
                continue
            filtered.append(line)
            if current is not None and stripped:
                line_map[len(filtered)] = current
        self.line_map = line_map
        return "\n".join(filtered)

    # ---- blocks -------------------------------------------------- #

    def _emit_block(self, block, bi: int, blocks) -> List[str]:
        self._charges = {}
        self._mid_flushes = []
        self._tele_bits = {}
        self._tele_guard = {}
        body: List = []
        term = None
        count = 0
        for ii, inst in enumerate(block.instructions):
            if isinstance(inst, PhiInst):
                continue
            count += 1
            if isinstance(inst, (BranchInst, RetInst, UnreachableInst)):
                term = (inst, ii)
            else:
                body.append((inst, ii))

        step_lines: List[str] = []
        for inst, ii in body:
            step_lines.append(_loc_tag(block.name, ii, inst.opcode))
            self._emit_step(inst, bi, ii, step_lines)
        term_lines = []
        if term is not None:
            term_lines.append(_loc_tag(block.name, term[1],
                                       term[0].opcode))
        term_lines.extend(self._emit_terminator(block, term, bi, blocks))

        # Segment the block's bulk charges at OpenMP region markers:
        # segment 0 is charged at block entry, segment k right after
        # the k-th marker call, matching where the per-instruction
        # engines charge relative to parallel_begin/parallel_end.
        self._block_segments = self._mid_flushes + [self._charges]
        if self._mid_flushes:
            expanded: List[str] = []
            seg = 0
            for line in step_lines:
                if line == _FLUSH_MARKER:
                    seg += 1
                    for category in sorted(self._block_segments[seg]):
                        expanded.append(
                            f'_chg({category!r}, _q{bi}s{seg}_{category})')
                else:
                    expanded.append(line)
            step_lines = expanded

        lines = [
            _loc_tag(block.name, None, None),
            f"_n = _interp.steps + {count}",
            "_interp.steps = _n",
            "if _n > _LIM:",
            "    raise _XLE(_LIMMSG)",
            f"_rep.instructions += {count}",
        ]
        for category in sorted(self._block_segments[0]):
            lines.append(f'_chg({category!r}, _q{bi}_{category})')
        if self._tele_bits:
            rounding_key = "precision.rounding." + RNDN.value
            total = sum(self._tele_bits.values())
            lines.append("if _MET:")
            for (opcode, prec) in sorted(self._tele_bits):
                n = self._tele_bits[(opcode, prec)]
                lines.append(f'    _obs("precision.op.{opcode}.bits", '
                             f"{prec}, {n})")
            for guard in sorted(self._tele_guard):
                n = self._tele_guard[guard]
                lines.append(f'    _obs("precision.guard_bits", '
                             f"{guard}, {n})")
            lines.append(f'    _minc({rounding_key!r}, {total})')
        lines.extend(step_lines)
        lines.extend(term_lines)
        return lines

    def _phi_moves(self, cur_block, target) -> List[str]:
        tbi = self.block_index[id(target)]
        lhs: List[str] = []
        rhs: List[str] = []
        for tii, phi in enumerate(target.instructions):
            if not isinstance(phi, PhiInst):
                continue
            for j, pred in enumerate(phi.incoming_blocks):
                if pred is cur_block:
                    lhs.append(self.names[id(phi)])
                    rhs.append(self.ref(phi.operands[j], tbi, tii, j))
        if not lhs:
            return []
        return [f"{', '.join(lhs)} = {', '.join(rhs)}"]

    def _emit_terminator(self, block, term, bi: int, blocks) -> List[str]:
        if term is None:
            msg = f"block {block.name} fell off the end"
            return [f"raise _VPR({msg!r})"]
        inst, ii = term
        if isinstance(inst, RetInst):
            value = "None" if inst.value is None \
                else self.ref(inst.value, bi, ii, 0)
            return ["_srel(_mark)", '_chg("ret", _c_ret)',
                    f"return {value}"]
        if isinstance(inst, BranchInst):
            self._charge("branch", "branch")
            if inst.is_conditional:
                cond = self.ref(inst.condition, bi, ii, 0)
                then_i = self.block_index[id(inst.targets[0])]
                else_i = self.block_index[id(inst.targets[1])]
                lines = [f"if {cond}:"]
                for move in self._phi_moves(block, inst.targets[0]):
                    lines.append("    " + move)
                lines.append(f"    _bb = {then_i}")
                lines.append("else:")
                for move in self._phi_moves(block, inst.targets[1]):
                    lines.append("    " + move)
                lines.append(f"    _bb = {else_i}")
                lines.append("continue")
                return lines
            target_i = self.block_index[id(inst.targets[0])]
            lines = self._phi_moves(block, inst.targets[0])
            lines.append(f"_bb = {target_i}")
            lines.append("continue")
            return lines
        # UnreachableInst
        return ['raise _VPR("executed unreachable instruction")']

    # ---- steps --------------------------------------------------- #

    def _emit_step(self, inst, bi: int, ii: int, out: List[str]) -> None:
        if isinstance(inst, BinaryInst):
            self._emit_binary(inst, bi, ii, out)
        elif isinstance(inst, CallInst):
            self._emit_call(inst, bi, ii, out)
        elif isinstance(inst, LoadInst):
            self._emit_load(inst, bi, ii, out)
        elif isinstance(inst, StoreInst):
            self._emit_store(inst, bi, ii, out)
        elif isinstance(inst, GEPInst):
            self._emit_gep(inst, bi, ii, out)
        elif isinstance(inst, ICmpInst):
            self._emit_icmp(inst, bi, ii, out)
        elif isinstance(inst, FCmpInst):
            self._emit_fcmp(inst, bi, ii, out)
        elif isinstance(inst, CastInst):
            self._emit_cast(inst, bi, ii, out)
        elif isinstance(inst, AllocaInst):
            self._emit_alloca(inst, bi, ii, out)
        elif isinstance(inst, FNegInst):
            self._emit_fneg(inst, bi, ii, out)
        elif isinstance(inst, SelectInst):
            self._emit_select(inst, bi, ii, out)
        else:
            raise _Unsupported(f"unsupported instruction {inst.opcode}")

    def _emit_binary(self, inst: BinaryInst, bi, ii, out) -> None:
        a = self.ref(inst.lhs, bi, ii, 0)
        b = self.ref(inst.rhs, bi, ii, 1)
        if inst.type.is_vpfloat:
            self._emit_vp_binary(inst, a, b, out)
        elif inst.type.is_float:
            self._emit_float_binary(inst, a, b, out)
        else:
            self._emit_int_binary(inst, a, b, out)

    def _emit_vp_binary(self, inst: BinaryInst, a, b, out) -> None:
        name = self.names[id(inst)]
        op = inst.opcode
        vptype = inst.type
        if op not in _VP_OPS:
            msg = f"{op} unsupported on vpfloat"
            out.append(f"raise _VPR({msg!r})")
            return
        if self.batch:
            raise _Unsupported("native vp arithmetic in batch mode")
        if vptype.format == "posit":
            raise _Unsupported("posit vp arithmetic")
        if not self._vp_static_ok(vptype):
            raise _Unsupported("dynamic vpfloat attributes")
        prec = self.interp.vp_config(vptype, None)[0]
        self._charge("vpfloat_native", "f64_other", max(1, prec // 64))
        self._vp_telemetry(op, prec, 0)
        if vptype.format == "mpfr":
            # The destination format's exponent-range clamp is folded
            # into the kernel (all tiers); no per-op clamp block.
            kernel = self._kernel_ref(op, prec, vptype.exp_attr.value)
        else:  # unum: exact intermediate, no per-op re-encoding
            kernel = self._kernel_ref(op, prec)
        out.append(f"{name} = {kernel}(_AB({a}, {prec}), "
                   f"_AB({b}, {prec}))")

    def _emit_float_binary(self, inst: BinaryInst, a, b, out) -> None:
        name = self.names[id(inst)]
        op = inst.opcode
        field = _FLOAT_FIELDS.get(op)
        if field is None:
            raise _Unsupported(f"float op {op}")
        self._charge("f64", field)
        narrow = inst.type.bits == 32
        if op in _FLOAT_SYMS:
            expr = f"{a} {_FLOAT_SYMS[op]} {b}"
        elif op == "frem":
            expr = f"_fmod({a}, {b})"
        else:  # fdiv with C-style inf/nan on division by zero
            out.append(f"_x = {a}")
            out.append(f"_y = {b}")
            expr = ("_x / _y if _y != 0.0 else "
                    "(_copysign(_INF, _x) if _x != 0.0 else _NAN)")
        out.append(f"{name} = _f32({expr})" if narrow
                   else f"{name} = {expr}")

    def _emit_int_binary(self, inst: BinaryInst, a, b, out) -> None:
        name = self.names[id(inst)]
        op = inst.opcode
        bits = inst.type.bits
        umask = (1 << bits) - 1
        shmask = bits - 1
        self._charge("int", "int_op")

        def adjust():
            if bits > 1:
                out.append(f"if {name} >= {1 << (bits - 1)}:")
                out.append(f"    {name} -= {1 << bits}")

        if op in _INT_SYMS:
            out.append(f"{name} = ({a} {_INT_SYMS[op]} {b}) & {umask}")
            adjust()
        elif op in ("sdiv", "srem"):
            msg = ("integer division by zero" if op == "sdiv"
                   else "integer remainder by zero")
            out.append(f"_x = {a}")
            out.append(f"_y = {b}")
            out.append("if _y == 0:")
            out.append(f"    raise _VPR({msg!r})")
            if op == "sdiv":
                out.append(f"{name} = _tdiv(_x, _y) & {umask}")
            else:
                out.append(f"{name} = (_x - _tdiv(_x, _y) * _y) & {umask}")
            adjust()
        elif op in ("udiv", "urem"):
            msg = ("integer division by zero" if op == "udiv"
                   else "integer remainder by zero")
            out.append(f"_x = {a} & {umask}")
            out.append(f"_y = {b} & {umask}")
            out.append("if _y == 0:")
            out.append(f"    raise _VPR({msg!r})")
            out.append(f"{name} = _x {'%' if op == 'urem' else '//'} _y")
            adjust()
        elif op == "shl":
            out.append(f"{name} = ({a} << ({b} & {shmask})) & {umask}")
            adjust()
        elif op == "ashr":
            out.append(f"{name} = ({a} >> ({b} & {shmask})) & {umask}")
            adjust()
        elif op == "lshr":
            out.append(f"{name} = ({a} & {umask}) >> ({b} & {shmask})")
            adjust()
        else:
            raise _Unsupported(f"integer op {op}")

    def _emit_load(self, inst: LoadInst, bi, ii, out) -> None:
        nbytes = self._static_sizeof(inst.type)
        if nbytes is None:
            raise _Unsupported("dynamic load size")
        try:
            self.interp._default(inst.type, None)
        except Exception:
            raise _Unsupported("dynamic load default") from None
        default = self._default_ref(inst, bi, ii)
        pointer = self.ref(inst.pointer, bi, ii, 0)
        name = self.names[id(inst)]
        out.append(f"{name} = _ml(int({pointer}), {nbytes}, {default})")

    def _emit_store(self, inst: StoreInst, bi, ii, out) -> None:
        nbytes = self._static_sizeof(inst.value.type)
        if nbytes is None:
            raise _Unsupported("dynamic store size")
        value = self.ref(inst.value, bi, ii, 0)
        pointer = self.ref(inst.pointer, bi, ii, 1)
        out.append(f"_ms(int({pointer}), {value}, {nbytes})")

    def _emit_alloca(self, inst: AllocaInst, bi, ii, out) -> None:
        elem = self._static_sizeof(inst.allocated_type)
        if elem is None:
            raise _Unsupported("dynamic alloca element size")
        name = self.names[id(inst)]
        self._charge("alloca", "int_op")
        if inst.count is None:
            out.append(f"{name} = _alloc({elem})")
            return
        count = self.ref(inst.count, bi, ii, 0)
        out.append(f"_x = int({count})")
        out.append("if _x < 0:")
        out.append('    raise _VPR("negative VLA extent")')
        out.append(f"{name} = _alloc({elem} * (_x if _x > 1 else 1))")

    def _emit_gep(self, inst: GEPInst, bi, ii, out) -> None:
        pointee = inst.pointer.type.pointee
        stride0 = self._static_sizeof(pointee)
        if stride0 is None:
            raise _Unsupported("dynamic gep pointee")
        const_offset = 0
        terms: List[Tuple[str, int]] = []
        indices = inst.indices
        if isinstance(indices[0], ConstantInt):
            const_offset += indices[0].value * stride0
        else:
            terms.append((self.ref(indices[0], bi, ii, 1), stride0))
        current = pointee
        for m, index in enumerate(indices[1:], start=1):
            if isinstance(current, ArrayType):
                stride = self._static_sizeof(current.element)
                if stride is None:
                    raise _Unsupported("dynamic gep stride")
                if isinstance(index, ConstantInt):
                    const_offset += index.value * stride
                else:
                    terms.append((self.ref(index, bi, ii, 1 + m), stride))
                current = current.element
            elif isinstance(current, StructType):
                if not isinstance(index, ConstantInt):
                    raise _Unsupported("dynamic struct gep index")
                try:
                    const_offset += current.field_offset(index.value)
                except Exception:
                    raise _Unsupported("bad struct gep index") from None
                current = current.fields[index.value]
            else:
                raise _Unsupported("gep into scalar")
        pointer = self.ref(inst.pointer, bi, ii, 0)
        parts = [f"int({pointer})"]
        if const_offset:
            parts.append(repr(const_offset))
        for expr, stride in terms:
            parts.append(f"int({expr})" if stride == 1
                         else f"int({expr}) * {stride}")
        name = self.names[id(inst)]
        self._charge("addr", "int_op")
        out.append(f"{name} = " + " + ".join(parts))

    def _emit_icmp(self, inst: ICmpInst, bi, ii, out) -> None:
        a = self.ref(inst.operands[0], bi, ii, 0)
        b = self.ref(inst.operands[1], bi, ii, 1)
        pred = inst.predicate
        if pred in _SIGNED_CMPS:
            expr = f"{a} {_SIGNED_CMPS[pred]} {b}"
        elif pred in _UNSIGNED_CMPS:
            bits = (inst.operands[0].type.bits
                    if inst.operands[0].type.is_integer else 64)
            umask = (1 << bits) - 1
            expr = (f"({a} & {umask}) {_UNSIGNED_CMPS[pred]} "
                    f"({b} & {umask})")
        else:
            raise _Unsupported(f"icmp predicate {pred}")
        name = self.names[id(inst)]
        self._charge("icmp", "int_op")
        out.append(f"{name} = 1 if {expr} else 0")

    def _emit_fcmp(self, inst: FCmpInst, bi, ii, out) -> None:
        a = self.ref(inst.operands[0], bi, ii, 0)
        b = self.ref(inst.operands[1], bi, ii, 1)
        name = self.names[id(inst)]
        self._charge("fcmp", "f64_other")
        out.append(f"{name} = _fcmpv({a}, {b}, {inst.predicate!r})")

    def _emit_cast(self, inst: CastInst, bi, ii, out) -> None:
        for type_ in (inst.type, inst.source.type):
            if not self._vp_static_ok(type_):
                raise _Unsupported("dynamic vpfloat cast")
        source = self.ref(inst.source, bi, ii, 0)
        name = self.names[id(inst)]
        self._charge("cast", "int_op")
        opcode = inst.opcode
        target = inst.type
        # The simple conversions transcribe _cast_value's static cases
        # directly; everything else (fptosi, vpconv, posit rounding)
        # keeps the shared runtime path.
        if opcode == "zext":
            src_bits = inst.source.type.bits
            out.append(f"{name} = {source} & {(1 << src_bits) - 1}")
            return
        if opcode in ("sext", "trunc"):
            bits = target.bits
            out.append(f"{name} = int({source}) & {(1 << bits) - 1}")
            if bits > 1:
                out.append(f"if {name} >= {1 << (bits - 1)}:")
                out.append(f"    {name} -= {1 << bits}")
            return
        if opcode == "bitcast":
            out.append(f"{name} = {source}")
            return
        if opcode in ("ptrtoint", "inttoptr"):
            out.append(f"{name} = int({source})")
            return
        if opcode in ("sitofp", "uitofp"):
            if target.is_vpfloat:
                if target.format != "posit":
                    prec = self.interp.vp_config(target, None)[0]
                    out.append(f"{name} = _BF.from_int(int({source}), "
                               f"{prec})")
                    return
            elif target.bits == 32:
                out.append(f"{name} = _f32(float(int({source})))")
                return
            else:
                out.append(f"{name} = float(int({source}))")
                return
        elif opcode in ("fpext", "fptrunc"):
            if target.bits == 32:
                out.append(f"{name} = _f32({source})")
            else:
                out.append(f"{name} = float({source})")
            return
        handle = self._inst_ref(inst, bi, ii)
        out.append(f"{name} = _cast({handle}, {source}, None)")

    def _emit_fneg(self, inst: FNegInst, bi, ii, out) -> None:
        if self.batch and inst.type.is_vpfloat:
            raise _Unsupported("native vp negation in batch mode")
        a = self.ref(inst.operands[0], bi, ii, 0)
        name = self.names[id(inst)]
        self._charge("fneg", "f64_other")
        if inst.type.is_float and inst.type.bits == 32:
            out.append(f"_x = {a}")
            out.append(f"{name} = -_x if isinstance(_x, _BF) "
                       f"else _f32(-_x)")
        else:
            out.append(f"{name} = -{a}")

    def _emit_select(self, inst: SelectInst, bi, ii, out) -> None:
        cond = self.ref(inst.condition, bi, ii, 0)
        tv = self.ref(inst.true_value, bi, ii, 1)
        fv = self.ref(inst.false_value, bi, ii, 2)
        name = self.names[id(inst)]
        self._charge("select", "int_op")
        out.append(f"{name} = {tv} if {cond} else {fv}")

    def _emit_call(self, inst: CallInst, bi, ii, out) -> None:
        if not self._vp_static_ok(inst.type):
            raise _Unsupported("dynamic vpfloat call result")
        for operand in inst.operands:
            if not self._vp_static_ok(operand.type):
                raise _Unsupported("dynamic vpfloat call operand")
        args = [self.ref(a, bi, ii, i)
                for i, a in enumerate(inst.operands)]
        name = self.names[id(inst)]
        callee = inst.callee
        if isinstance(callee, Function) and not callee.is_declaration:
            fn = self._fn_ref(callee)
            out.append(f"{name} = _call({fn}, [{', '.join(args)}])")
            return
        bname = callee.name if isinstance(callee, Function) \
            else str(callee)
        if bname not in self.interp._builtins:
            raise _Unsupported(f"unknown builtin {bname}")
        if bname in _MPFR_INLINE and len(args) == _MPFR_INLINE[bname]:
            self._emit_mpfr_builtin(inst, bname, args, bi, ii, out)
            return
        handler = self._builtin_ref(bname)
        handle = self._inst_ref(inst, bi, ii)
        out.append(f"{name} = {handler}([{', '.join(args)}], "
                   f"{handle}, None)")
        if bname in ("__omp_parallel_begin", "__omp_parallel_end"):
            # Region boundary: cycles accumulated so far stay in the
            # current charge segment (emitted before this call); start
            # a fresh segment emitted right after it, so the cost model
            # attributes this block's remaining cycles to the correct
            # side of the parallel region.
            self._mid_flushes.append(self._charges)
            self._charges = {}
            out.append(_FLUSH_MARKER)

    # ---- inlined mpfr builtins ----------------------------------- #
    #
    # The MPFR handlers are the hottest path of lowered kernels; the
    # bodies below are verbatim transcriptions of the installed
    # handlers (interpreter._install_mpfr_builtins) and the backing
    # MpfrLibrary methods, with the call layers flattened and the
    # generic arith kernel replaced by the precision-specialized one.
    # Every cold or failing case (uninitialized handle, use after
    # clear) delegates to the installed handler so error types and
    # messages stay byte-identical.

    def _emit_touch(self, out, reads: List[str], write: str) -> None:
        out.append("    if _HC:")
        out.append("        _t0 = _cachem.access_cycles")
        for var in reads:
            out.append(f"        _pv = {var}.prec")
            out.append("        _nb = _lbc.get(_pv)")
            out.append("        if _nb is None:")
            out.append("            _nb = _lbytes(_pv)")
            out.append("            _lbc[_pv] = _nb")
            out.append(f'        _cacc("r", {var}.limb_addr, _nb)')
        out.append("        _nb = _lbc.get(_p)")
        out.append("        if _nb is None:")
        out.append("            _nb = _lbytes(_p)")
        out.append("            _lbc[_p] = _nb")
        out.append(f'        _cacc("w", {write}.limb_addr, _nb)')
        out.append("        _rep.cycles += _cachem.access_cycles - _t0")

    def _emit_mpfr_charge(self, out, call_name: str) -> None:
        out.append("    _rep.mpfr_calls += 1")
        out.append(f"    _cy = _mcc.get(({call_name!r}, _p))")
        out.append("    if _cy is None:")
        out.append(f"        _cy = _mopc({call_name!r}, _p)")
        out.append(f"        _mcc[({call_name!r}, _p)] = _cy")
        out.append("    _rep.cycles += _cy")
        out.append('    _bcat["mpfr"] += _cy')
        out.append("    if _MET:")
        out.append('        _obs("precision.mpfr.bits", _p)')

    def _emit_mpfr_builtin(self, inst, bname, args, bi, ii, out) -> None:
        name = self.names[id(inst)]
        handler = self._builtin_ref(bname)
        handle = self._inst_ref(inst, bi, ii)
        delegate = (f"    {name} = {handler}([{', '.join(args)}], "
                    f"{handle}, None)")
        op = bname[5:]  # mpfr_<op>
        if op in ("add", "sub", "mul", "div"):
            kmap = self._mpfr_map_ref(op)
            out.append(f"_x = _ml(int({args[0]}), 8)")
            out.append(f"_y = _ml(int({args[1]}), 8)")
            out.append(f"_z = _ml(int({args[2]}), 8)")
            out.append("if (_x is None or _y is None or _z is None or "
                       "not (_x.alive and _y.alive and _z.alive)):")
            out.append(delegate)
            out.append("else:")
            out.append("    _p = _x.prec")
            # Fused kernel with the destination handle's exponent-range
            # clamp folded in (scalar and batch); no per-call clamp.
            out.append(f"    _x.value = {kmap}[_p, _x.exp_bits]"
                       "(_y.value, _z.value)")
            out.append("    _mstats.ops += 1")
            out.append(f"    _mbump({bname!r})")
            self._emit_touch(out, ["_y", "_z"], "_x")
            self._emit_mpfr_charge(out, bname)
            out.append(f"    {name} = None")
        elif op in ("fma", "fms"):
            kmap = self._mpfr_map_ref(op)
            out.append(f"_x = _ml(int({args[0]}), 8)")
            out.append(f"_y = _ml(int({args[1]}), 8)")
            out.append(f"_z = _ml(int({args[2]}), 8)")
            out.append(f"_w = _ml(int({args[3]}), 8)")
            out.append("if (_x is None or _y is None or _z is None or "
                       "_w is None or not (_x.alive and _y.alive and "
                       "_z.alive and _w.alive)):")
            out.append(delegate)
            out.append("else:")
            out.append("    _p = _x.prec")
            out.append(f"    _x.value = {kmap}[_p, _x.exp_bits]"
                       "(_y.value, _z.value, _w.value)")
            out.append("    _mstats.ops += 1")
            out.append(f"    _mbump({bname!r})")
            self._emit_touch(out, ["_y", "_z", "_w"], "_x")
            self._emit_mpfr_charge(out, bname)
            out.append(f"    {name} = None")
        elif op == "set":
            out.append(f"_x = _ml(int({args[0]}), 8)")
            out.append(f"_y = _ml(int({args[1]}), 8)")
            out.append("if (_x is None or _y is None or "
                       "not (_x.alive and _y.alive)):")
            out.append(delegate)
            out.append("else:")
            out.append("    _p = _x.prec")
            out.append("    _x.value = _y.value.round_to(_p)")
            out.append("    _mstats.sets += 1")
            out.append('    _mbump("mpfr_set")')
            self._emit_touch(out, ["_y"], "_x")
            self._emit_mpfr_charge(out, "mpfr_set")
            out.append(f"    {name} = None")
        else:  # set_d / set_si
            ctor = "from_float" if op == "set_d" else "from_int"
            out.append(f"_x = _ml(int({args[0]}), 8)")
            out.append("if _x is None or not _x.alive:")
            out.append(delegate)
            out.append("else:")
            out.append("    _p = _x.prec")
            if self.batch:
                bcast = "_bfromf" if op == "set_d" else "_bfromi"
                out.append(f"    _x.value = {bcast}({args[1]}, _p)")
            else:
                out.append(f"    _x.value = _BF.{ctor}({args[1]}, _p)")
            out.append("    _mstats.sets += 1")
            out.append(f"    _mbump({bname!r})")
            self._emit_touch(out, [], "_x")
            self._emit_mpfr_charge(out, bname)
            out.append(f"    {name} = None")


def emit_function_source(interp, func: Function
                         ) -> Tuple[Optional[str], Optional[str]]:
    """(source, None) when ``func`` is jit-able, else (None, reason)."""
    try:
        return FunctionEmitter(interp, func).emit(), None
    except _Unsupported as e:
        return None, str(e)


# ----------------------------------------------------------------- #
# Store + engine
# ----------------------------------------------------------------- #

class CodegenStore:
    """Per-program store of codegen artifacts (status, reason, source).

    Backed by a :class:`~repro.core.cache.CompileCache` ``.vpcgen``
    sidecar when the program came through the compile cache, so warm
    processes skip re-emission entirely; otherwise purely in-memory
    (still skipping re-emission across runs of one program object).
    Compiled code objects are memoized in-process and never persisted.
    """

    def __init__(self, cache=None, key: Optional[str] = None):
        self.cache = cache
        self.key = key
        self.records: Dict[str, dict] = {}
        self.codes: Dict[str, object] = {}
        self._loaded = False

    def _load(self) -> None:
        if self._loaded:
            return
        self._loaded = True
        if self.cache is None or self.key is None:
            return
        payload = self.cache.get_codegen(self.key)
        if payload:
            functions = payload.get("functions", {})
            if not isinstance(functions, dict):
                return
            for name, record in functions.items():
                # Defence in depth: get_codegen validates sidecar
                # structure, but a store can also be fed a payload
                # directly -- never admit a record _materialize would
                # crash on.
                if (isinstance(record, dict)
                        and record.get("status") in ("jit", "fallback")):
                    self.records.setdefault(name, record)

    def lookup(self, name: str) -> Optional[dict]:
        self._load()
        return self.records.get(name)

    def forget(self, name: str) -> None:
        self._load()
        self.records.pop(name, None)
        self.codes.pop(name, None)

    def record(self, name: str, status: str, reason: Optional[str] = None,
               source: Optional[str] = None,
               line_map: Optional[Dict[int, tuple]] = None) -> None:
        self._load()
        entry = {"status": status, "reason": reason, "source": source}
        if line_map:
            # JSON sidecars stringify keys; store them that way from
            # the start so warm and fresh records look identical.
            entry["line_map"] = {str(lineno): list(loc)
                                 for lineno, loc in line_map.items()}
        self.records[name] = entry
        if self.cache is not None and self.key is not None:
            self.cache.put_codegen(self.key, {
                "version": CODEGEN_VERSION,
                "functions": self.records,
            })

    def statuses(self) -> Dict[str, dict]:
        """name -> {status, reason} for everything decided so far."""
        self._load()
        return {name: {"status": r["status"], "reason": r["reason"]}
                for name, r in self.records.items()}


class JitEngine:
    """Per-interpreter jit front door: ``entry(func)`` returns the
    specialized callable, or None when the function fell back."""

    def __init__(self, interp, store: Optional[CodegenStore] = None):
        self.interp = interp
        self.store = store if store is not None else CodegenStore()
        self._entries: Dict[int, Optional[object]] = {}

    def entry(self, func: Function):
        cached = self._entries.get(id(func), self)
        if cached is not self:
            return cached
        tracer = self.interp.tracer
        if tracer is not None:
            with tracer.span(f"codegen:{func.name}",
                             cat=CAT_COMPILE) as span:
                entry, status, reason, was_cached = \
                    self._materialize(func)
                span.args["cached"] = was_cached
                span.args["status"] = status
                if reason:
                    span.args["reason"] = reason
        else:
            entry, status, reason, was_cached = self._materialize(func)
        metrics = self.interp.metrics
        if metrics is not None:
            if status == "jit":
                metrics.inc("codegen.functions.jit")
                metrics.inc(f"codegen.fn.{func.name}.jit")
            else:
                slug = (reason or "unknown").replace(" ", "-")
                metrics.inc("codegen.functions.fallback")
                metrics.inc(f"codegen.fn.{func.name}.fallback.{slug}")
        self._entries[id(func)] = entry
        return entry

    def _materialize(self, func: Function):
        """-> (entry | None, status, reason, cached)."""
        interp = self.interp
        metrics = interp.metrics
        store = self.store
        name = func.name
        record = store.lookup(name)
        fresh = record is None
        if fresh:
            t0 = time.perf_counter()
            try:
                emitter = FunctionEmitter(interp, func)
                source = emitter.emit()
            except _Unsupported as e:
                if metrics is not None:
                    metrics.observe("codegen.emit_seconds",
                                    time.perf_counter() - t0)
                store.record(name, "fallback", reason=str(e))
                return None, "fallback", str(e), False
            if metrics is not None:
                metrics.observe("codegen.emit_seconds",
                                time.perf_counter() - t0)
            store.record(name, "jit", source=source,
                         line_map=emitter.line_map)
            record = store.lookup(name)
        elif record["status"] == "fallback":
            return None, "fallback", record.get("reason"), True
        source = record.get("source")
        if not source:
            store.forget(name)
            if fresh:
                return None, "fallback", "empty source", False
            return self._materialize(func)
        code = store.codes.get(name)
        if code is None:
            raw_map = record.get("line_map")
            if isinstance(raw_map, dict):
                LINE_MAPS[f"<vpjit:{name}>"] = {
                    int(lineno): tuple(loc)
                    for lineno, loc in raw_map.items()
                    if str(lineno).isdigit() and isinstance(loc, list)
                }
            t0 = time.perf_counter()
            try:
                code = compile(source, f"<vpjit:{name}>", "exec")
            except SyntaxError:
                # A stale or corrupt sidecar: drop it and re-emit once.
                store.forget(name)
                if fresh:
                    return None, "fallback", "compile error", False
                return self._materialize(func)
            if metrics is not None:
                metrics.observe("codegen.compile_seconds",
                                time.perf_counter() - t0)
            store.codes[name] = code
        namespace: Dict[str, object] = {}
        exec(code, namespace)
        runtime_cls = BatchJitRuntime \
            if getattr(interp, "batch", None) is not None else JitRuntime
        try:
            entry = namespace["_make"](runtime_cls(interp, func))
        except Exception as e:
            # Bind-time resolution failed (e.g. an invalid constant):
            # the closure engine reproduces the error at execution.
            return (None, "fallback",
                    f"bind failed: {type(e).__name__}", not fresh)
        return entry, "jit", None, not fresh
