"""AST -> IR lowering (the Clang-CodeGen stand-in)."""

from .irgen import CodegenError, IRGenerator, LITERAL_PRECISION, generate_ir

__all__ = ["IRGenerator", "generate_ir", "CodegenError", "LITERAL_PRECISION"]
