"""AST -> IR lowering (the Clang-CodeGen stand-in) and the jit engine.

Besides the frontend IR generator this package hosts the specializing
Python-source code generator (:mod:`~repro.codegen.pyjit`) and its
precision-specialized arithmetic kernels
(:mod:`~repro.codegen.kernels`); those modules are imported lazily by
the runtime so that importing :mod:`repro.codegen` (as the core
compiler pipeline does) stays cheap.
"""

from .irgen import CodegenError, IRGenerator, LITERAL_PRECISION, generate_ir

#: Version of the emitted jit-module format.  Bump whenever the shape
#: of the generated source, the JitRuntime resolution protocol, or the
#: charge-bulking scheme changes: the value participates in the compile
#: cache fingerprint and in `.vpcgen` sidecar validation, so stale
#: artifacts miss (and are unlinked) instead of being replayed.
CODEGEN_VERSION = 4

__all__ = [
    "IRGenerator",
    "generate_ir",
    "CodegenError",
    "LITERAL_PRECISION",
    "CODEGEN_VERSION",
]
