"""Precision-specialized integer-mantissa kernels for the jit engine.

:mod:`repro.bigfloat.arith` implements every operation generically: the
precision and rounding mode arrive as arguments, and rounding funnels
through :func:`~repro.bigfloat.rounding.round_significand`, which
re-dispatches on the rounding mode per call.  The jit engine knows both
at *emission* time for constant-attribute vpfloat types, so this module
compiles one Python function per ``(op, precision, rounding mode)``
with the finite fast path fully inlined: mantissa alignment, the
normalize/round/carry sequence from ``round_significand``, and the
rounding-mode decision folded to the one or two comparisons that mode
actually needs.

Results are bit-identical to the library functions by construction --
the finite path is a constant-folded transcription of the same
algorithm, and every non-finite (or otherwise cold) case delegates to
the library function itself.  ``tests/test_codegen_kernels.py``
cross-checks the two over randomized inputs for every op, precision
band, and rounding mode.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Tuple

from ..bigfloat import arith
from ..bigfloat.number import BigFloat, Kind
from ..bigfloat.rounding import RoundingMode

#: Operations with a specialized implementation.
KERNEL_OPS = ("add", "sub", "mul", "div", "fma", "fms", "sqrt")

_CACHE: Dict[Tuple[str, int, str], Callable] = {}


# ----------------------------------------------------------------- #
# Rounding (inlined round_significand, mode folded)
# ----------------------------------------------------------------- #

def _sticky_small_cond(rm: RoundingMode):
    """Increment condition for the ``nbits <= prec`` path when the
    sticky bit is set (low=0, half=1 in _should_increment terms)."""
    if rm is RoundingMode.TOWARD_POSITIVE:
        return "_s == 0"
    if rm is RoundingMode.TOWARD_NEGATIVE:
        return "_s == 1"
    # RNDZ never increments; both nearest modes see low(0) < half(1).
    return None


def _incr_cond(rm: RoundingMode, sticky: bool):
    """Increment condition for the ``nbits > prec`` path.  ``_low``,
    ``_half``, ``_q``, ``_s`` (and ``_st`` when ``sticky``) are in
    scope; returns None when the mode never rounds up."""
    if rm is RoundingMode.NEAREST_EVEN:
        tie = "(_st or _q & 1)" if sticky else "_q & 1"
        return f"_low > _half or (_low == _half and {tie})"
    if rm is RoundingMode.NEAREST_AWAY:
        # low == 0 can never reach half (half >= 1), so exactness is
        # implied by the comparison.
        return "_low >= _half"
    if rm is RoundingMode.TOWARD_ZERO:
        return None
    sign = "0" if rm is RoundingMode.TOWARD_POSITIVE else "1"
    inexact = "(_low != 0 or _st)" if sticky else "_low != 0"
    return f"_s == {sign} and {inexact}"


def _clamp_lines(prec: int, exp_bits: int, pad: str) -> list:
    """Exponent-range clamp tail, transcribing the jit engine's
    per-call clamp block (``_emit_clamp``) with the handle's
    ``exp_bits`` constant-folded: finite results whose top exponent
    exceeds ``2**(exp_bits-1)`` overflow to inf, those below
    ``-2**(exp_bits-1)`` underflow to zero."""
    limit = 1 << (exp_bits - 1)
    return [
        f"{pad}_e2 = _e + {prec}",
        f"{pad}if _e2 > {limit}:",
        f"{pad}    return _NINF if _s else _PINF",
        f"{pad}if _e2 < {-limit}:",
        f"{pad}    return _NZ if _s else _PZ",
    ]


def _round_lines(prec: int, rm: RoundingMode, sticky: bool,
                 indent: int, exp_bits=None) -> str:
    """Source block: round ``(_s, _m, _e)`` (+ ``_st``) and return the
    finished BigFloat.  Transcribes ``round_significand`` with ``prec``
    and ``rm`` constant-folded.  With ``exp_bits``, the exponent-range
    clamp is folded in ahead of construction."""
    pad = " " * indent
    lines = [
        f"{pad}_nb = _m.bit_length()",
        f"{pad}if _nb <= {prec}:",
        f"{pad}    _q = _m << ({prec} - _nb)",
        f"{pad}    _e -= {prec} - _nb",
    ]
    small = _sticky_small_cond(rm) if sticky else None
    if small is not None:
        lines += [
            f"{pad}    if _st and {small}:",
            f"{pad}        _q += 1",
            f"{pad}        if _q >> {prec}:",
            f"{pad}            _q >>= 1",
            f"{pad}            _e += 1",
        ]
    lines += [
        f"{pad}else:",
        f"{pad}    _sh = _nb - {prec}",
        f"{pad}    _low = _m & ((1 << _sh) - 1)",
        f"{pad}    _q = _m >> _sh",
        f"{pad}    _e += _sh",
    ]
    cond = _incr_cond(rm, sticky)
    if cond is not None:
        if "_half" in cond:
            lines.append(f"{pad}    _half = 1 << (_sh - 1)")
        lines += [
            f"{pad}    if {cond}:",
            f"{pad}        _q += 1",
            f"{pad}        if _q >> {prec}:",
            f"{pad}            _q >>= 1",
            f"{pad}            _e += 1",
        ]
    if exp_bits is not None:
        lines.extend(_clamp_lines(prec, exp_bits, pad))
    lines.append(f"{pad}return _BF(_KF, _s, _q, _e, {prec})")
    return "\n".join(lines)


# ----------------------------------------------------------------- #
# Per-op sources
# ----------------------------------------------------------------- #

def _addsub_source(prec: int, rm: RoundingMode, flip: bool,
                   exp_bits=None) -> str:
    mb = ("-b.mant if b.sign == 0 else b.mant" if flip
          else "b.mant if b.sign == 0 else -b.mant")
    return f"""\
def _kernel(a, b):
    if a.kind is _KF and b.kind is _KF:
        _ma = a.mant if a.sign == 0 else -a.mant
        _mb = {mb}
        _ea = a.exp
        _eb = b.exp
        if _ea <= _eb:
            _t = _ma + (_mb << (_eb - _ea))
            _e = _ea
        else:
            _t = (_ma << (_ea - _eb)) + _mb
            _e = _eb
        if _t == 0:
            return _SZERO
        if _t < 0:
            _s = 1
            _m = -_t
        else:
            _s = 0
            _m = _t
{_round_lines(prec, rm, False, 8, exp_bits)}
    return _FB(a, b)
"""


def _mul_source(prec: int, rm: RoundingMode, exp_bits=None) -> str:
    return f"""\
def _kernel(a, b):
    if a.kind is _KF and b.kind is _KF:
        _s = a.sign ^ b.sign
        _m = a.mant * b.mant
        _e = a.exp + b.exp
{_round_lines(prec, rm, False, 8, exp_bits)}
    return _FB(a, b)
"""


def _div_source(prec: int, rm: RoundingMode, exp_bits=None) -> str:
    return f"""\
def _kernel(a, b):
    if a.kind is _KF and b.kind is _KF:
        _s = a.sign ^ b.sign
        _am = a.mant
        _bm = b.mant
        _shd = {prec + 2} - (_am.bit_length() - _bm.bit_length())
        if _shd < 0:
            _shd = 0
        _q0, _r = divmod(_am << _shd, _bm)
        _d = {prec + 2} - _q0.bit_length()
        if _d > 0:
            _shd += _d
            _q0, _r = divmod(_am << _shd, _bm)
        _m = _q0
        _e = a.exp - b.exp - _shd
        _st = _r != 0
        _s = _s
{_round_lines(prec, rm, True, 8, exp_bits)}
    return _FB(a, b)
"""


def _fma_source(prec: int, rm: RoundingMode, flip: bool,
                exp_bits=None) -> str:
    mc = ("-c.mant if c.sign == 0 else c.mant" if flip
          else "c.mant if c.sign == 0 else -c.mant")
    return f"""\
def _kernel(a, b, c):
    if a.kind is _KF and b.kind is _KF:
        _ck = c.kind
        if _ck is _KF or _ck is _KZ:
            _ma = a.mant if a.sign == 0 else -a.mant
            _mb = b.mant if b.sign == 0 else -b.mant
            _pm = _ma * _mb
            _pe = a.exp + b.exp
            if _ck is _KF:
                _mc = {mc}
                _ec = c.exp
                if _pe <= _ec:
                    _t = _pm + (_mc << (_ec - _pe))
                    _e = _pe
                else:
                    _t = (_pm << (_pe - _ec)) + _mc
                    _e = _ec
            else:
                _t = _pm
                _e = _pe
            if _t == 0:
                return _SZERO
            if _t < 0:
                _s = 1
                _m = -_t
            else:
                _s = 0
                _m = _t
{_round_lines(prec, rm, False, 12, exp_bits)}
    return _FB(a, b, c)
"""


def _sqrt_source(prec: int, rm: RoundingMode, exp_bits=None) -> str:
    return f"""\
def _kernel(a):
    if a.kind is _KF and a.sign == 0:
        _shq = {2 * (prec + 2)} - a.mant.bit_length()
        if _shq < 0:
            _shq = 0
        if (a.exp - _shq) & 1:
            _shq += 1
        _m0 = a.mant << _shq
        _root = _isqrt(_m0)
        _st = _root * _root != _m0
        _s = 0
        _m = _root
        _e = (a.exp - _shq) >> 1
{_round_lines(prec, rm, True, 8, exp_bits)}
    return _FB(a)
"""


_SOURCES = {
    "add": lambda prec, rm, eb=None: _addsub_source(prec, rm, False, eb),
    "sub": lambda prec, rm, eb=None: _addsub_source(prec, rm, True, eb),
    "mul": _mul_source,
    "div": _div_source,
    "fma": lambda prec, rm, eb=None: _fma_source(prec, rm, False, eb),
    "fms": lambda prec, rm, eb=None: _fma_source(prec, rm, True, eb),
    "sqrt": _sqrt_source,
}

_LIBRARY = {
    "add": arith.add, "sub": arith.sub, "mul": arith.mul,
    "div": arith.div, "fma": arith.fma, "fms": arith.fms,
    "sqrt": arith.sqrt,
}


def kernel_source(op: str, prec: int,
                  rm: RoundingMode = RoundingMode.NEAREST_EVEN,
                  exp_bits=None) -> str:
    """The specialized Python source for ``(op, prec, rm[, exp_bits])``."""
    if op not in _SOURCES:
        raise ValueError(f"no specialized kernel for {op!r}; "
                         f"choose from {KERNEL_OPS}")
    if prec < 1:
        raise ValueError(f"precision must be >= 1, got {prec}")
    return _SOURCES[op](prec, rm, exp_bits)


def clamped_fallback(fallback, prec: int, exp_bits: int) -> Callable:
    """Wrap a library fallback so finite results obey the handle's
    exponent-range clamp, exactly as the jit engine's per-call clamp
    block would have (fallbacks can legitimately produce finite values
    outside the destination handle's exponent range)."""
    limit = 1 << (exp_bits - 1)

    def clamped(*args, _fb=fallback, _p=prec, _lim=limit):
        v = _fb(*args)
        if v.kind is Kind.FINITE:
            e = v.exp + _p
            if e > _lim:
                return BigFloat.inf(_p, v.sign)
            if e < -_lim:
                return BigFloat.zero(_p, v.sign)
        return v

    return clamped


def specialized_kernel(op: str, prec: int,
                       rm: RoundingMode = RoundingMode.NEAREST_EVEN,
                       exp_bits=None) -> Callable:
    """A compiled kernel bit-identical to ``arith.<op>(..., prec, rm)``.

    Binary ops take ``(a, b)``, fused ops ``(a, b, c)``, sqrt ``(a)``;
    all operands must already be BigFloats.  Memoized per
    ``(op, prec, rm, exp_bits)``.  With ``exp_bits``, the destination
    handle's exponent-range clamp is folded into the kernel (finite
    results only), matching the jit engine's per-call clamp block.
    """
    key = (op, prec, rm.value, exp_bits)
    kernel = _CACHE.get(key)
    if kernel is not None:
        return kernel
    source = kernel_source(op, prec, rm, exp_bits)
    library = _LIBRARY[op]
    if op == "sqrt":
        def fallback(a, _lib=library, _p=prec, _r=rm):
            return _lib(a, _p, _r)
    elif op in ("fma", "fms"):
        def fallback(a, b, c, _lib=library, _p=prec, _r=rm):
            return _lib(a, b, c, _p, _r)
    else:
        def fallback(a, b, _lib=library, _p=prec, _r=rm):
            return _lib(a, b, _p, _r)
    if exp_bits is not None:
        fallback = clamped_fallback(fallback, prec, exp_bits)
    namespace = {
        "_KF": Kind.FINITE,
        "_KZ": Kind.ZERO,
        "_BF": BigFloat,
        "_FB": fallback,
        "_isqrt": math.isqrt,
        "_SZERO": BigFloat.zero(
            prec, 1 if rm is RoundingMode.TOWARD_NEGATIVE else 0),
    }
    if exp_bits is not None:
        namespace.update({
            "_PINF": BigFloat.inf(prec, 0),
            "_NINF": BigFloat.inf(prec, 1),
            "_PZ": BigFloat.zero(prec, 0),
            "_NZ": BigFloat.zero(prec, 1),
        })
    code = compile(source,
                   f"<vpkernel:{op}/{prec}/{rm.value}/{exp_bits}>",
                   "exec")
    exec(code, namespace)
    kernel = namespace["_kernel"]
    _CACHE[key] = kernel
    return kernel
