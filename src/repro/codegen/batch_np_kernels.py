"""Single-limb numpy tier for the batched SoA kernels.

The generic batched kernels (:mod:`repro.codegen.batch_kernels`) fuse N
lanes into one Python loop; the loop body is still interpreted Python
per lane.  For the precisions that fit one 64-bit limb this module
replaces the loop with numpy uint64 vector arithmetic over the whole
batch -- no per-lane Python at all, and no lanes×limbs carry loops:
add/sub run under a 3-bit guard/round/sticky alignment so aligned
significands never exceed ``prec + 4 <= 64`` bits no matter how far
the exponents are spread, and mul builds the ``2*prec``-bit product as
a vectorized 32×32 half-word decomposition (two limbs, fixed carry
chain of numpy ops, no loop).

The list<->array boundary is the real cost at scale, so it is paid at
most once per batch: operand batches cache their array form in
``VPBatch._u64`` and results are built array-first
(:meth:`VPBatch._from_u64`) with the lane lists materializing lazily.
A chain of vectorized ops -- a gemm accumulator flowing op to op --
converts nothing; only a consumer that actually reads lanes (a store
comparison, ``lane()``, the generic kernels) triggers ``tolist``.

Eligibility is decided twice:

* **per kernel** (:func:`np_tier_eligible`): op in add/sub/mul,
  round-to-nearest-even, ``NP_MIN_PREC <= prec <= NP_MAX_PREC`` (the
  alignment and product bounds above), numpy importable;
* **per call**: both operands are same-precision VPBatches of at least
  :data:`NP_MIN_LANES` lanes (below that numpy dispatch overhead costs
  more than the fused loop) whose lanes are all FINITE or ZERO and
  whose exponents fit int64.  Ineligible calls run the bound generic
  batched kernel -- bit-identical by construction -- and count as a
  tier bailout on the :class:`~repro.runtime.batch.BatchContext`.

Zero lanes stay vectorized (masked substitution + result overrides
transcribing the exact :mod:`repro.bigfloat.arith` zero rules), like
the generic batched kernels and unlike the scalar tier: zero-filled
accumulators are everywhere in real kernels.  Batches known to be
all-finite (a cached flag, refreshed per result) skip that machinery.

Bit-exactness per lane against the generic batched kernel (and so
against ``arith`` and the scalar engine) is the contract; the
differential fuzzer runs both batch tiers in lockstep and
``tests/test_kernel_tiers.py`` fuzzes the lane math directly.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..bigfloat.number import Kind
from ..bigfloat.rounding import RoundingMode

#: Inclusive precision bounds of the numpy tier.  The lower bound
#: keeps the constant-shift rounding windows nonempty; the upper bound
#: keeps every intermediate (aligned sum ``prec + 4`` bits, extracted
#: quotient/product windows) inside uint64.
NP_MIN_PREC = 2
NP_MAX_PREC = 60

#: Calls on fewer lanes than this run the generic fused loop: below
#: the threshold numpy dispatch overhead (~45 vector ops per call)
#: costs more than the fused per-lane loop.  Module-level so tests can
#: drop it to 1 and drive the vector path on tiny batches.
NP_MIN_LANES = 128

_NP_OPS = ("add", "sub", "mul")

_np = None


def _numpy():
    global _np
    if _np is None:
        try:
            import numpy
        except ImportError:  # pragma: no cover - numpy is baked in
            _np = False
        else:
            _np = numpy
    return _np


def np_tier_eligible(op: str, prec: int, rm: RoundingMode) -> bool:
    """True when ``(op, prec, rm)`` has a numpy-tier kernel."""
    return (op in _NP_OPS
            and rm is RoundingMode.NEAREST_EVEN
            and NP_MIN_PREC <= prec <= NP_MAX_PREC
            and _numpy() is not False)


def _u64_of(np, batch):
    """The batch's cached array form, building (and caching) it from
    the lane lists on first touch.

    Tuple layout: ``(kind codes uint8, sign, mant uint64, exp int64,
    simple, anyzero)`` where ``simple`` means every lane is FINITE or
    ZERO (codes <= 1, the only lanes the vector math handles) and
    ``anyzero`` gates the zero-lane override machinery.  Returns None
    when an exponent overflows int64 (unbounded unum exponents).
    """
    u = batch._u64
    if u is None:
        kinds = batch._kind
        n = len(kinds)
        KF, KZ = Kind.FINITE, Kind.ZERO
        kc = np.fromiter(
            (0 if k is KF else (1 if k is KZ else 2) for k in kinds),
            np.uint8, count=n)
        try:
            mt = np.fromiter(batch._mant, np.uint64, count=n)
            ex = np.fromiter(batch._exp, np.int64, count=n)
        except OverflowError:
            return None
        sg = np.fromiter(batch._sign, np.uint8, count=n)
        simple = not bool((kc > 1).any())
        anyz = bool(kc.any()) if simple else True
        u = (kc, sg, mt, ex, simple, anyz)
        batch._u64 = u
    return u


def _bit_length(np, t):
    """Vectorized ``int.bit_length`` for uint64 ``t >= 1``.

    float64 conversion can round up to the next power of two, making
    frexp overestimate by one; the shift test repairs it (and the
    ``> 64`` clause catches values rounding up to 2**64, where the
    repair shift itself would be out of range).
    """
    nb = np.frexp(t.astype(np.float64))[1].astype(np.int64)
    probe = np.minimum(nb - 1, 63).astype(np.uint64)
    over = (nb > 64) | ((t >> probe) == 0)
    return nb - over


def _build(np, VPBatch, prec, limit, okind, osign, omant, oexp, anyz):
    """Array-backed result batch (ZERO/INF lanes canonical: mant/exp
    zeroed like the BigFloat constructors).

    ``anyz`` says nonzero codes *may* exist before clamping; with an
    exponent range the clamp itself mints ZERO/INF lanes, so the codes
    are re-probed whenever either source is possible.
    """
    if anyz or limit is not None:
        simple = (limit is None
                  or not bool((okind > 1).any()))
        nonzero = bool(okind.any())
        if nonzero:
            nonfin = okind != 0
            omant = np.where(nonfin, np.uint64(0), omant)
            oexp = np.where(nonfin, 0, oexp)
        anyz = nonzero if simple else True
    else:
        simple = True
    return VPBatch._from_u64(
        (okind, osign, omant, oexp, simple, anyz), prec)


def make_np_kernel(op: str, prec: int, exp_bits: Optional[int],
                   ctx, generic: Callable) -> Callable:
    """The numpy-tier kernel for ``(op, prec, RNDN, exp_bits)``.

    ``generic`` is the bound generic batched kernel, used verbatim for
    per-call-ineligible inputs; ``ctx`` is the run's BatchContext
    (lane/op accounting plus the numpy-tier counters).
    """
    np = _numpy()
    from ..runtime.batch import VPBatch

    if op == "mul":
        return _make_mul(np, VPBatch, prec, exp_bits, ctx, generic)
    return _make_addsub(np, VPBatch, prec, exp_bits, ctx, generic,
                        flip=(op == "sub"))


def _note_np(ctx, n):
    ctx.note(n, 0)
    ctx.np_ops += 1
    ctx.np_lanes += n


def _min_lanes(ctx):
    """Policy "small" waives the crossover floor: the user asked for the
    specialized tier wherever it is legal, lane count be damned."""
    return 1 if getattr(ctx, "kernel_tier", "auto") == "small" \
        else NP_MIN_LANES


def _make_addsub(np, VPBatch, prec, exp_bits, ctx, generic, flip):
    p = prec
    U0, U1, U3 = np.uint64(0), np.uint64(1), np.uint64(3)
    UP = np.uint64(p)
    DUMMY = np.uint64(1 << (p - 1))
    limit = None if exp_bits is None else 1 << (exp_bits - 1)

    def kernel(a, b):
        if (type(a) is not VPBatch or type(b) is not VPBatch
                or a.prec != p or b.prec != p
                or len(a) < _min_lanes(ctx)):
            ctx.np_bailouts += 1
            return generic(a, b)
        ua = _u64_of(np, a)
        ub = _u64_of(np, b) if ua is not None else None
        if ub is None or not (ua[4] and ub[4]):
            ctx.np_bailouts += 1
            return generic(a, b)
        ak, sa, ma, ea, _, az = ua
        bk, sb, mb, eb, _, bz = ub
        n = len(ak)
        sbe = sb ^ 1 if flip else sb
        anyz = az or bz

        if anyz:
            afin = ak == 0
            bfin = bk == 0
            # Zero lanes get a harmless normalized dummy so the vector
            # arithmetic stays in range; their results are overridden.
            ma_s = np.where(afin, ma, DUMMY)
            ea_s = np.where(afin, ea, 0)
            mb_s = np.where(bfin, mb, DUMMY)
            eb_s = np.where(bfin, eb, 0)
        else:
            ma_s, ea_s, mb_s, eb_s = ma, ea, mb, eb

        # Order by magnitude (equal precisions: exponent, then
        # significand); the larger operand's sign wins cancellation.
        agrt = (ea_s > eb_s) | ((ea_s == eb_s) & (ma_s >= mb_s))
        hm = np.where(agrt, ma_s, mb_s)
        lm = np.where(agrt, mb_s, ma_s)
        he = np.where(agrt, ea_s, eb_s)
        le = np.where(agrt, eb_s, ea_s)
        hs = np.where(agrt, sa, sbe)
        same = sa == sbe

        d = he - le
        near = d <= 3
        # Near: exact alignment (<= 3 bit shift).  Far: 3-bit
        # guard/round window plus a sticky bit; the window round below
        # keeps >= 2 window bits, which with sticky decides every
        # rounding case exactly.
        tn = hm << np.where(near, d, 0).astype(np.uint64)
        rs = np.where(near, 0, d - 3)
        rsbig = rs >= 64
        rsc = np.minimum(rs, 63).astype(np.uint64)
        lw = np.where(rsbig, U0, lm >> rsc)
        rem = np.where(rsbig, lm, lm & ((U1 << rsc) - U1))
        st = (~near) & (rem != 0)
        base = np.where(near, tn, hm << U3)
        lo_term = np.where(near, lm, lw)
        t = np.where(same, base + lo_term,
                     base - lo_term - st.astype(np.uint64))
        e = np.where(near, le, he - 3)
        cancel = t == 0
        if anyz:
            cancel = afin & bfin & cancel
            c_any = True
        else:
            c_any = bool(cancel.any())

        # Round to nearest-even at compile-time precision p.
        t_s = np.where(cancel, U1, t) if c_any else t
        if anyz:
            t_s = np.where(afin & bfin, t_s, U1)
        nb = _bit_length(np, t_s)
        sh = nb - p
        shp = np.maximum(sh, 0).astype(np.uint64)
        shn = np.maximum(-sh, 0).astype(np.uint64)
        q = (t_s >> shp) << shn
        low = t_s & ((U1 << shp) - U1)
        half = (U1 << shp) >> U1
        e = e + sh
        inc = (sh > 0) & ((low > half)
                          | ((low == half) & (st | ((q & U1) == U1))))
        q = q + inc
        ovf = (q >> UP) != 0
        q = np.where(ovf, q >> U1, q)
        e = e + ovf

        okind = np.zeros(n, np.uint8)
        osign = hs
        if c_any:
            # Exact cancellation: +0 under round-to-nearest.
            okind = np.where(cancel, 1, okind)
            osign = np.where(cancel, 0, osign)
        if anyz:
            # Zero-operand rules (arith.add/sub transcription).
            onez_a = (~afin) & bfin
            osign = np.where(onez_a, sbe, osign)
            q = np.where(onez_a, mb, q)
            e = np.where(onez_a, eb, e)
            onez_b = (~bfin) & afin
            osign = np.where(onez_b, sa, osign)
            q = np.where(onez_b, ma, q)
            e = np.where(onez_b, ea, e)
            bothz = (~afin) & (~bfin)
            okind = np.where(bothz, 1, okind)
            osign = np.where(bothz, np.where(sa == sbe, sa, 0), osign)

        if limit is not None:
            fin_out = okind == 0
            e2 = e + p
            okind = np.where(fin_out & (e2 > limit), 2, okind)
            okind = np.where(fin_out & (e2 < -limit), 1, okind)
        _note_np(ctx, n)
        return _build(np, VPBatch, p, limit, okind, osign, q, e, c_any)

    return kernel


def _make_mul(np, VPBatch, prec, exp_bits, ctx, generic):
    p = prec
    U1, U32 = np.uint64(1), np.uint64(32)
    UP = np.uint64(p)
    M32 = np.uint64(0xFFFFFFFF)
    DUMMY = np.uint64(1 << (p - 1))
    top_bit = 2 * p - 1
    limit = None if exp_bits is None else 1 << (exp_bits - 1)

    def kernel(a, b):
        if (type(a) is not VPBatch or type(b) is not VPBatch
                or a.prec != p or b.prec != p
                or len(a) < _min_lanes(ctx)):
            ctx.np_bailouts += 1
            return generic(a, b)
        ua = _u64_of(np, a)
        ub = _u64_of(np, b) if ua is not None else None
        if ub is None or not (ua[4] and ub[4]):
            ctx.np_bailouts += 1
            return generic(a, b)
        ak, sa, ma, ea, _, az = ua
        bk, sb, mb, eb, _, bz = ub
        n = len(ak)
        anyz = az or bz

        if anyz:
            anyzero = (ak == 1) | (bk == 1)
            ma_s = np.where(anyzero, DUMMY, ma)
            mb_s = np.where(anyzero, DUMMY, mb)
        else:
            ma_s, mb_s = ma, mb

        # 2p-bit product as two uint64 limbs via 32x32 half-words;
        # the carry chain is three vector ops, no per-lane loop.
        ah = ma_s >> U32
        al = ma_s & M32
        bh = mb_s >> U32
        bl = mb_s & M32
        mid = ah * bl + al * bh
        lo = al * bl
        lo1 = lo + ((mid & M32) << U32)
        carry = (lo1 < lo).astype(np.uint64)
        hi = ah * bh + (mid >> U32) + carry

        # Product width is 2p or 2p-1: constant-shift windows.
        if top_bit < 64:
            big = (lo1 >> np.uint64(top_bit)) != 0
        else:
            big = (hi >> np.uint64(top_bit - 64)) != 0
        sh = np.where(big, p, p - 1).astype(np.uint64)
        q = lo1 >> sh
        if p > 1:
            q = q | (hi << (np.uint64(64) - sh))
        low = lo1 & ((U1 << sh) - U1)
        half = U1 << (sh - U1)
        inc = (low > half) | ((low == half) & ((q & U1) == U1))
        q = q + inc
        ovf = (q >> UP) != 0
        q = np.where(ovf, q >> U1, q)
        e = ea + eb + sh.astype(np.int64) + ovf

        if anyz:
            okind = np.where(anyzero, np.uint8(1), np.uint8(0))
        else:
            okind = np.zeros(n, np.uint8)
        osign = sa ^ sb
        if limit is not None:
            fin_out = okind == 0
            e2 = e + p
            okind = np.where(fin_out & (e2 > limit), 2, okind)
            okind = np.where(fin_out & (e2 < -limit), 1, okind)
        _note_np(ctx, n)
        return _build(np, VPBatch, p, limit, okind, osign, q, e, anyz)

    return kernel
