"""Tier-1/2 "smallfloat" kernels: 1--2 limb precisions, fully inlined.

:mod:`repro.codegen.kernels` already specializes on ``(op, prec, rm)``
but keeps the library's fully general shape: unbounded alignment
shifts, a shared two-branch rounding tail, and the validating
:class:`~repro.bigfloat.number.BigFloat` constructor (which re-checks
``bit_length`` on every op).  For the precisions the paper's workloads
actually live at -- one or two 64-bit limbs -- that generality is the
dominant cost.

This module compiles a *tiered* kernel per ``(op, prec, rm, exp_bits)``
for precisions up to :data:`SMALLFLOAT_MAX_PREC` that exploits the
normalization invariant (operand significands are exactly ``prec`` bits
wide, enforced by a cheap entry guard):

* **add/sub** use a guard/round/sticky alignment capped at ``prec + 3``
  bits: operands further apart than the cap contribute one shifted limb
  plus a sticky bit, so intermediates never exceed ``2*prec + 4`` bits
  no matter how far the exponents are spread, and the far path skips
  the ``nbits <= prec`` rounding branch entirely (the sum is provably
  wider than ``prec``).
* **mul** exploits the two-valued product width (``2*prec`` or
  ``2*prec - 1``): both rounding cases run under compile-time-constant
  shifts, masks and half-ulp constants.
* **div** needs no width probe or deficit retry: equal operand widths
  pin the quotient shift at ``prec + 2`` and the quotient width to two
  cases, again with constant masks.
* **sqrt** pins the scaling shift to ``prec + 4``/``prec + 5`` by
  exponent parity and rounds under two constant shift cases.
* **fma/fms** keep the library's exact product+addend alignment (the
  addend can land anywhere relative to a ``2*prec``-bit product) but
  inline the rounding and fold the mode like every other kernel here.
* every kernel constructs results through
  :class:`~repro.bigfloat.number._FastBigFloat`, skipping field
  validation that the rounding tail already guarantees, and folds the
  destination handle's exponent-range clamp (``exp_bits``) into the
  tail with precomputed inf/zero constants.

Zero operands are handled inline (transcribing the exact
:mod:`repro.bigfloat.arith` special-value rules); NaN/inf operands,
negative sqrt and mixed-precision operands fall back to the library
function, optionally reporting the reason through the ``notes`` hooks
so the tier telemetry can attribute fallbacks.

Bit-exactness is the contract: every result is identical to
``arith.<op>(..., prec, rm)``.  ``tests/test_kernel_tiers.py``
cross-checks the inlined rounding against ``round_significand`` across
all five modes and both tiers, and the differential fuzzer runs the
generic and specialized tiers in lockstep on every generated program.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from ..bigfloat import arith
from ..bigfloat.number import BigFloat, Kind, _FastBigFloat
from ..bigfloat.rounding import RoundingMode
from .kernels import KERNEL_OPS, _incr_cond, _sticky_small_cond

#: Largest precision with a smallfloat kernel (two 64-bit limbs).
SMALLFLOAT_MAX_PREC = 128
#: Tier-1 boundary: mantissas that fit one 64-bit limb.
TIER1_MAX_PREC = 64

#: Kernel-tier selection policies (the ``--kernel-tier`` knob):
#: ``auto`` tiers by precision, ``generic`` forces the generic
#: kernels everywhere (the ablation baseline), ``small`` insists on
#: the specialized tier wherever one exists -- identical scalar
#: selection to ``auto``, but the batched numpy tier additionally
#: ignores its minimum-lane-count heuristic.
KERNEL_TIER_POLICIES = ("auto", "generic", "small")

#: Alignment cap for add/sub beyond the kept significand: guard bits
#: plus the window the rounding tail needs.  Anything shifted further
#: out contributes only a sticky bit.
_ALIGN_GUARD = 3

_CODE_CACHE: Dict[Tuple[str, int, str, Optional[int]], object] = {}
_KERNEL_CACHE: Dict[Tuple[str, int, str, Optional[int]], Callable] = {}


def kernel_tier(prec: int) -> int:
    """1 for one-limb precisions, 2 for two limbs, 0 for generic."""
    if prec <= TIER1_MAX_PREC:
        return 1
    if prec <= SMALLFLOAT_MAX_PREC:
        return 2
    return 0


def tier_label(prec: int) -> str:
    tier = kernel_tier(prec)
    return f"tier{tier}" if tier else "generic"


# ----------------------------------------------------------------- #
# Source fragments
# ----------------------------------------------------------------- #

def _finish_lines(prec: int, exp_bits: Optional[int], pad: str) -> list:
    """Clamp (when ``exp_bits``) and construct the final value from
    ``_s``/``_q``/``_e`` without re-validating the fields."""
    lines = []
    if exp_bits is not None:
        limit = 1 << (exp_bits - 1)
        lines += [
            f"{pad}_e2 = _e + {prec}",
            f"{pad}if _e2 > {limit}:",
            f"{pad}    return _NINF if _s else _PINF",
            f"{pad}if _e2 < {-limit}:",
            f"{pad}    return _Z1 if _s else _Z0",
        ]
    lines += [
        f"{pad}_v = _NEW(_MBF)",
        f"{pad}_v.kind = _KF",
        f"{pad}_v.sign = _s",
        f"{pad}_v.mant = _q",
        f"{pad}_v.exp = _e",
        f"{pad}_v.prec = {prec}",
        f"{pad}return _v",
    ]
    return lines


def _exact_round_lines(prec: int, rm: RoundingMode, pad: str) -> list:
    """Round the exact positive ``_m`` at ``_e``: full two-branch
    rounding (cancellation can leave fewer than ``prec`` bits)."""
    lines = [
        f"{pad}_nb = _m.bit_length()",
        f"{pad}if _nb <= {prec}:",
        f"{pad}    _q = _m << ({prec} - _nb)",
        f"{pad}    _e -= {prec} - _nb",
        f"{pad}else:",
        f"{pad}    _sh = _nb - {prec}",
        f"{pad}    _low = _m & ((1 << _sh) - 1)",
        f"{pad}    _q = _m >> _sh",
        f"{pad}    _e += _sh",
    ]
    cond = _incr_cond(rm, False)
    if cond is not None:
        if "_half" in cond:
            lines.append(f"{pad}    _half = 1 << (_sh - 1)")
        lines += [
            f"{pad}    if {cond}:",
            f"{pad}        _q += 1",
            f"{pad}        if _q >> {prec}:",
            f"{pad}            _q >>= 1",
            f"{pad}            _e += 1",
        ]
    return lines


def _window_round_lines(prec: int, rm: RoundingMode, pad: str) -> list:
    """Round ``_t`` (guaranteed wider than ``prec`` bits) with the
    sticky flag ``_st`` in scope; variable shift."""
    lines = [
        f"{pad}_sh = _t.bit_length() - {prec}",
        f"{pad}_low = _t & ((1 << _sh) - 1)",
        f"{pad}_q = _t >> _sh",
        f"{pad}_e += _sh",
    ]
    cond = _incr_cond(rm, True)
    if cond is not None:
        if "_half" in cond:
            lines.append(f"{pad}_half = 1 << (_sh - 1)")
        lines += [
            f"{pad}if {cond}:",
            f"{pad}    _q += 1",
            f"{pad}    if _q >> {prec}:",
            f"{pad}        _q >>= 1",
            f"{pad}        _e += 1",
        ]
    return lines


def _const_window_lines(prec: int, rm: RoundingMode, sh: int,
                        sticky: bool, pad: str) -> list:
    """Round ``_t`` under a compile-time-constant shift ``sh``:
    masks and the half-ulp constant are folded to literals."""
    if sh == 0:
        # Exact: _t already has exactly `prec` bits.
        return [f"{pad}_q = _t"]
    mask = (1 << sh) - 1
    half = 1 << (sh - 1)
    lines = [
        f"{pad}_low = _t & {mask}",
        f"{pad}_q = _t >> {sh}",
        f"{pad}_e += {sh}",
    ]
    cond = _incr_cond(rm, sticky)
    if cond is not None:
        cond = cond.replace("_half", str(half))
        lines += [
            f"{pad}if {cond}:",
            f"{pad}    _q += 1",
            f"{pad}    if _q >> {prec}:",
            f"{pad}        _q >>= 1",
            f"{pad}        _e += 1",
        ]
    return lines


def _passthrough_lines(prec: int, exp_bits: Optional[int], src: str,
                       negate: bool, pad: str) -> list:
    """Return the finite operand ``src`` (sign-flipped when ``negate``)
    as the result, honoring the destination clamp like every other
    finite result."""
    sign = f"{src}.sign ^ 1" if negate else f"{src}.sign"
    lines = []
    if exp_bits is not None:
        limit = 1 << (exp_bits - 1)
        lines += [
            f"{pad}_e2 = {src}.exp + {prec}",
            f"{pad}if _e2 > {limit}:",
            f"{pad}    return _NINF if {sign} else _PINF",
            f"{pad}if _e2 < {-limit}:",
            f"{pad}    return _Z1 if {sign} else _Z0",
        ]
    if negate:
        lines += [
            f"{pad}_v = _NEW(_MBF)",
            f"{pad}_v.kind = _KF",
            f"{pad}_v.sign = {sign}",
            f"{pad}_v.mant = {src}.mant",
            f"{pad}_v.exp = {src}.exp",
            f"{pad}_v.prec = {prec}",
            f"{pad}return _v",
        ]
    else:
        lines.append(f"{pad}return {src}")
    return lines


# ----------------------------------------------------------------- #
# Per-op sources
# ----------------------------------------------------------------- #

def _addsub_branch(prec: int, rm: RoundingMode, exp_bits: Optional[int],
                   hi: str, lo: str, shi: str, slo: str,
                   pad: str) -> list:
    """One alignment orientation of add/sub: ``hi`` has the larger (or
    equal) exponent, ``_d`` its nonnegative exponent lead."""
    cap = prec + _ALIGN_GUARD
    A = []
    A.append(f"{pad}if _d <= {cap}:")
    A.append(f"{pad}    _e = {lo}.exp")
    A.append(f"{pad}    if {shi} == {slo}:")
    A.append(f"{pad}        _m = ({hi}.mant << _d) + {lo}.mant")
    A.append(f"{pad}        _s = {slo}")
    A.append(f"{pad}    else:")
    A.append(f"{pad}        _t = ({hi}.mant << _d) - {lo}.mant")
    A.append(f"{pad}        if _t == 0:")
    A.append(f"{pad}            return _SZERO")
    A.append(f"{pad}        if _t < 0:")
    A.append(f"{pad}            _m = -_t")
    A.append(f"{pad}            _s = {slo}")
    A.append(f"{pad}        else:")
    A.append(f"{pad}            _m = _t")
    A.append(f"{pad}            _s = {shi}")
    A.extend(_exact_round_lines(prec, rm, pad + "    "))
    A.extend(_finish_lines(prec, exp_bits, pad + "    "))
    A.append(f"{pad}else:")
    A.append(f"{pad}    _rs = _d - {cap}")
    A.append(f"{pad}    if _rs >= {prec}:")
    A.append(f"{pad}        _lw = 0")
    A.append(f"{pad}        _st = True")
    A.append(f"{pad}    else:")
    A.append(f"{pad}        _lw = {lo}.mant >> _rs")
    A.append(f"{pad}        _st = {lo}.mant & ((1 << _rs) - 1) != 0")
    A.append(f"{pad}    _s = {shi}")
    A.append(f"{pad}    _e = {hi}.exp - {cap}")
    A.append(f"{pad}    if {shi} == {slo}:")
    A.append(f"{pad}        _t = ({hi}.mant << {cap}) + _lw")
    A.append(f"{pad}    else:")
    A.append(f"{pad}        _t = ({hi}.mant << {cap}) - _lw")
    A.append(f"{pad}        if _st:")
    A.append(f"{pad}            _t -= 1")
    A.extend(_window_round_lines(prec, rm, pad + "    "))
    A.extend(_finish_lines(prec, exp_bits, pad + "    "))
    return A


def _addsub_source(prec: int, rm: RoundingMode, flip: bool,
                   exp_bits: Optional[int]) -> str:
    p = prec
    sb = "b.sign ^ 1" if flip else "b.sign"
    A = []
    A.append("def _kernel(a, b):")
    A.append("    _ak = a.kind")
    A.append("    _bk = b.kind")
    A.append("    if _ak is _KF and _bk is _KF:")
    A.append(f"        if a.prec != {p} or b.prec != {p}:")
    A.append("            _nprec()")
    A.append("            return _FB(a, b)")
    A.append("        _sa = a.sign")
    A.append(f"        _sb = {sb}")
    A.append("        _ea = a.exp")
    A.append("        _eb = b.exp")
    A.append("        if _ea <= _eb:")
    A.append("            _d = _eb - _ea")
    A.extend(_addsub_branch(p, rm, exp_bits, "b", "a", "_sb", "_sa",
                            " " * 12))
    A.append("        else:")
    A.append("            _d = _ea - _eb")
    A.extend(_addsub_branch(p, rm, exp_bits, "a", "b", "_sa", "_sb",
                            " " * 12))
    # Inline zeros (exact arith.add/sub special-value rules).
    A.append("    if _ak is _KF and _bk is _KZ:")
    A.append(f"        if a.prec != {p}:")
    A.append("            _nprec()")
    A.append("            return _FB(a, b)")
    A.extend(_passthrough_lines(p, exp_bits, "a", False, " " * 8))
    A.append("    if _ak is _KZ and _bk is _KF:")
    A.append(f"        if b.prec != {p}:")
    A.append("            _nprec()")
    A.append("            return _FB(a, b)")
    A.extend(_passthrough_lines(p, exp_bits, "b", flip, " " * 8))
    A.append("    if _ak is _KZ and _bk is _KZ:")
    A.append(f"        if a.sign == {sb}:")
    A.append("            return _Z1 if a.sign else _Z0")
    A.append("        return _SZERO")
    A.append("    _nspec()")
    A.append("    return _FB(a, b)")
    return "\n".join(A) + "\n"


def _mul_source(prec: int, rm: RoundingMode,
                exp_bits: Optional[int]) -> str:
    p = prec
    top = 1 << (2 * p - 1)
    A = []
    A.append("def _kernel(a, b):")
    A.append("    _ak = a.kind")
    A.append("    _bk = b.kind")
    A.append("    if _ak is _KF and _bk is _KF:")
    A.append(f"        if a.prec != {p} or b.prec != {p}:")
    A.append("            _nprec()")
    A.append("            return _FB(a, b)")
    A.append("        _s = a.sign ^ b.sign")
    A.append("        _t = a.mant * b.mant")
    A.append("        _e = a.exp + b.exp")
    # Product width is 2p or 2p-1: two constant rounding cases.
    A.append(f"        if _t >= {top}:")
    A.extend(_const_window_lines(p, rm, p, False, " " * 12))
    A.append("        else:")
    A.extend(_const_window_lines(p, rm, p - 1, False, " " * 12))
    A.extend(_finish_lines(p, exp_bits, " " * 8))
    A.append("    if (_ak is _KF or _ak is _KZ) and "
             "(_bk is _KF or _bk is _KZ):")
    A.append("        return _Z1 if a.sign ^ b.sign else _Z0")
    A.append("    _nspec()")
    A.append("    return _FB(a, b)")
    return "\n".join(A) + "\n"


def _div_source(prec: int, rm: RoundingMode,
                exp_bits: Optional[int]) -> str:
    p = prec
    shd = p + 2
    A = []
    A.append("def _kernel(a, b):")
    A.append("    _ak = a.kind")
    A.append("    _bk = b.kind")
    A.append("    if _ak is _KF and _bk is _KF:")
    A.append(f"        if a.prec != {p} or b.prec != {p}:")
    A.append("            _nprec()")
    A.append("            return _FB(a, b)")
    A.append("        _s = a.sign ^ b.sign")
    A.append(f"        _t, _r = divmod(a.mant << {shd}, b.mant)")
    A.append("        _st = _r != 0")
    A.append(f"        _e = a.exp - b.exp - {shd}")
    # Equal operand widths pin the quotient to p+2 or p+3 bits.
    A.append(f"        if _t >> {p + 2}:")
    A.extend(_const_window_lines(p, rm, 3, True, " " * 12))
    A.append("        else:")
    A.extend(_const_window_lines(p, rm, 2, True, " " * 12))
    A.extend(_finish_lines(p, exp_bits, " " * 8))
    A.append("    if _ak is _KZ and _bk is _KF:")
    A.append("        return _Z1 if a.sign ^ b.sign else _Z0")
    A.append("    if _ak is _KF and _bk is _KZ:")
    A.append("        return _NINF if a.sign ^ b.sign else _PINF")
    A.append("    _nspec()")
    A.append("    return _FB(a, b)")
    return "\n".join(A) + "\n"


def _sqrt_source(prec: int, rm: RoundingMode,
                 exp_bits: Optional[int]) -> str:
    p = prec
    sh0 = p + 4  # 2*(p+2) - p: operand significand is exactly p bits
    A = []
    A.append("def _kernel(a):")
    A.append("    _ak = a.kind")
    A.append("    if _ak is _KF and a.sign == 0:")
    A.append(f"        if a.prec != {p}:")
    A.append("            _nprec()")
    A.append("            return _FB(a)")
    A.append("        _ex = a.exp")
    A.append(f"        if (_ex - {sh0}) & 1:")
    A.append(f"            _m0 = a.mant << {sh0 + 1}")
    A.append(f"            _e = (_ex - {sh0 + 1}) >> 1")
    A.append("        else:")
    A.append(f"            _m0 = a.mant << {sh0}")
    A.append(f"            _e = (_ex - {sh0}) >> 1")
    A.append("        _t = _isqrt(_m0)")
    A.append("        _st = _t * _t != _m0")
    A.append("        _s = 0")
    # Root width is p+2 or p+3 bits: two constant rounding cases.
    A.append(f"        if _t >> {p + 2}:")
    A.extend(_const_window_lines(p, rm, 3, True, " " * 12))
    A.append("        else:")
    A.extend(_const_window_lines(p, rm, 2, True, " " * 12))
    A.extend(_finish_lines(p, exp_bits, " " * 8))
    A.append("    if _ak is _KZ:")
    A.append("        return _Z1 if a.sign else _Z0")
    A.append("    _nspec()")
    A.append("    return _FB(a)")
    return "\n".join(A) + "\n"


def _fma_source(prec: int, rm: RoundingMode, flip: bool,
                exp_bits: Optional[int]) -> str:
    p = prec
    sc = "c.sign ^ 1" if flip else "c.sign"
    A = []
    A.append("def _kernel(a, b, c):")
    A.append("    _ak = a.kind")
    A.append("    _bk = b.kind")
    A.append("    _ck = c.kind")
    A.append("    if _ak is _KF and _bk is _KF:")
    A.append(f"        if a.prec != {p} or b.prec != {p}:")
    A.append("            _nprec()")
    A.append("            return _FB(a, b, c)")
    A.append("        if _ck is _KF:")
    A.append(f"            if c.prec != {p}:")
    A.append("                _nprec()")
    A.append("                return _FB(a, b, c)")
    A.append("            _pm = (a.mant if a.sign == 0 else -a.mant)"
             " * (b.mant if b.sign == 0 else -b.mant)")
    A.append("            _pe = a.exp + b.exp")
    A.append(f"            _mc = c.mant if {sc} == 0 else -c.mant")
    A.append("            _ec = c.exp")
    A.append("            if _pe <= _ec:")
    A.append("                _t = _pm + (_mc << (_ec - _pe))")
    A.append("                _e = _pe")
    A.append("            else:")
    A.append("                _t = (_pm << (_pe - _ec)) + _mc")
    A.append("                _e = _ec")
    A.append("        elif _ck is _KZ:")
    A.append("            _t = (a.mant if a.sign == 0 else -a.mant)"
             " * (b.mant if b.sign == 0 else -b.mant)")
    A.append("            _e = a.exp + b.exp")
    A.append("        else:")
    A.append("            _nspec()")
    A.append("            return _FB(a, b, c)")
    A.append("        if _t == 0:")
    A.append("            return _SZERO")
    A.append("        if _t < 0:")
    A.append("            _s = 1")
    A.append("            _m = -_t")
    A.append("        else:")
    A.append("            _s = 0")
    A.append("            _m = _t")
    A.extend(_exact_round_lines(p, rm, " " * 8))
    A.extend(_finish_lines(p, exp_bits, " " * 8))
    # Zero product (a or b zero, the other finite or zero).
    A.append("    if (_ak is _KF or _ak is _KZ) and "
             "(_bk is _KF or _bk is _KZ):")
    A.append("        if _ck is _KZ:")
    A.append(f"            if a.sign ^ b.sign == {sc}:")
    A.append("                return _Z1 if a.sign ^ b.sign else _Z0")
    A.append("            return _SZERO")
    A.append("        if _ck is _KF:")
    A.append(f"            if c.prec != {p}:")
    A.append("                _nprec()")
    A.append("                return _FB(a, b, c)")
    A.extend(_passthrough_lines(p, exp_bits, "c", flip, " " * 12))
    A.append("    _nspec()")
    A.append("    return _FB(a, b, c)")
    return "\n".join(A) + "\n"


_SOURCES = {
    "add": lambda p, rm, eb: _addsub_source(p, rm, False, eb),
    "sub": lambda p, rm, eb: _addsub_source(p, rm, True, eb),
    "mul": _mul_source,
    "div": _div_source,
    "fma": lambda p, rm, eb: _fma_source(p, rm, False, eb),
    "fms": lambda p, rm, eb: _fma_source(p, rm, True, eb),
    "sqrt": _sqrt_source,
}

_LIBRARY = {
    "add": arith.add, "sub": arith.sub, "mul": arith.mul,
    "div": arith.div, "fma": arith.fma, "fms": arith.fms,
    "sqrt": arith.sqrt,
}


def smallfloat_source(op: str, prec: int,
                      rm: RoundingMode = RoundingMode.NEAREST_EVEN,
                      exp_bits: Optional[int] = None) -> str:
    """The tiered kernel source for ``(op, prec, rm[, exp_bits])``."""
    if op not in _SOURCES:
        raise ValueError(f"no smallfloat kernel for {op!r}; "
                         f"choose from {KERNEL_OPS}")
    if not 1 <= prec <= SMALLFLOAT_MAX_PREC:
        raise ValueError(
            f"smallfloat kernels cover 1..{SMALLFLOAT_MAX_PREC} bits, "
            f"got {prec}")
    return _SOURCES[op](prec, rm, exp_bits)


def _noop() -> None:
    pass


class TierStats:
    """Per-interpreter kernel-tier telemetry.

    Only constructed when the run is observing (metrics registry or
    ledger active): the hot path then routes through per-tier counting
    closures, while unobserved runs bind the raw kernels and pay
    nothing.  ``sites`` counts kernel specializations (one per
    ``(op, prec, rm, exp_bits)`` call-site key), ``ops`` dynamic kernel
    invocations, ``fallbacks`` the reasons tiered kernels punted to the
    generic library path ("prec": operand/destination precision
    mismatch, "special": NaN/Inf operand or negative sqrt).
    """

    __slots__ = ("ops", "sites", "fallbacks")

    def __init__(self):
        self.ops = {"tier1": 0, "tier2": 0, "generic": 0}
        self.sites = {"tier1": 0, "tier2": 0, "generic": 0}
        self.fallbacks = {"prec": 0, "special": 0}

    def counting(self, label: str, kernel: Callable) -> Callable:
        ops = self.ops

        def counted(*args, _k=kernel, _ops=ops, _label=label):
            _ops[_label] += 1
            return _k(*args)

        return counted

    def notes(self) -> Tuple[Callable, Callable]:
        fallbacks = self.fallbacks

        def note_prec():
            fallbacks["prec"] += 1

        def note_special():
            fallbacks["special"] += 1

        return note_prec, note_special

    def total_ops(self) -> int:
        return sum(self.ops.values())

    def as_dict(self) -> dict:
        return {
            "ops": dict(self.ops),
            "sites": dict(self.sites),
            "fallbacks": dict(self.fallbacks),
        }

    def merge(self, other: "TierStats") -> None:
        for label, n in other.ops.items():
            self.ops[label] = self.ops.get(label, 0) + n
        for label, n in other.sites.items():
            self.sites[label] = self.sites.get(label, 0) + n
        for reason, n in other.fallbacks.items():
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + n


def select_scalar_kernel(op: str, prec: int, exp_bits: Optional[int],
                         policy: str = "auto",
                         stats: Optional[TierStats] = None,
                         rm: RoundingMode = RoundingMode.NEAREST_EVEN,
                         ) -> Callable:
    """The scalar kernel the jit binds for one call-site key.

    ``policy`` is the run's kernel-tier override: "auto"/"small" pick
    the tiered kernel whenever the precision has one, "generic" forces
    the generic specialized kernel (the bisect lever).  With ``stats``
    the chosen kernel is wrapped in a per-tier counting closure and
    tiered kernels report fallback reasons.
    """
    tier = 0 if policy == "generic" else kernel_tier(prec)
    if tier:
        notes = stats.notes() if stats is not None else None
        kernel = smallfloat_kernel(op, prec, rm, exp_bits, notes=notes)
        label = f"tier{tier}"
    else:
        from .kernels import specialized_kernel
        kernel = specialized_kernel(op, prec, rm, exp_bits)
        label = "generic"
    if stats is not None:
        stats.sites[label] += 1
        kernel = stats.counting(label, kernel)
    return kernel


def smallfloat_kernel(op: str, prec: int,
                      rm: RoundingMode = RoundingMode.NEAREST_EVEN,
                      exp_bits: Optional[int] = None,
                      notes: Optional[Tuple[Callable, Callable]] = None,
                      ) -> Callable:
    """A compiled tiered kernel bit-identical to ``arith.<op>``.

    With ``exp_bits``, the destination's exponent-range clamp is folded
    in (finite results only), matching the jit engine's clamp block.
    ``notes`` is an optional ``(note_prec, note_special)`` pair called
    (cheaply, off the hot path) whenever the kernel falls back to the
    library because of a precision mismatch or a special value; kernels
    without hooks are memoized globally, hooked ones are rebound per
    caller over the same compiled code object.
    """
    key = (op, prec, rm.value, exp_bits)
    if notes is None:
        kernel = _KERNEL_CACHE.get(key)
        if kernel is not None:
            return kernel
    code = _CODE_CACHE.get(key)
    if code is None:
        source = smallfloat_source(op, prec, rm, exp_bits)
        code = compile(
            source, f"<vpsmall:{op}/{prec}/{rm.value}/{exp_bits}>",
            "exec")
        _CODE_CACHE[key] = code
    library = _LIBRARY[op]
    if op == "sqrt":
        def fallback(a, _lib=library, _p=prec, _r=rm):
            return _lib(a, _p, _r)
    elif op in ("fma", "fms"):
        def fallback(a, b, c, _lib=library, _p=prec, _r=rm):
            return _lib(a, b, c, _p, _r)
    else:
        def fallback(a, b, _lib=library, _p=prec, _r=rm):
            return _lib(a, b, _p, _r)
    if exp_bits is not None:
        from .kernels import clamped_fallback
        fallback = clamped_fallback(fallback, prec, exp_bits)
    note_prec, note_special = notes if notes is not None \
        else (_noop, _noop)
    namespace = {
        "_KF": Kind.FINITE,
        "_KZ": Kind.ZERO,
        "_NEW": object.__new__,
        "_MBF": _FastBigFloat,
        "_FB": fallback,
        "_isqrt": math.isqrt,
        "_nprec": note_prec,
        "_nspec": note_special,
        "_SZERO": BigFloat.zero(
            prec, 1 if rm is RoundingMode.TOWARD_NEGATIVE else 0),
        "_Z0": BigFloat.zero(prec, 0),
        "_Z1": BigFloat.zero(prec, 1),
        "_PINF": BigFloat.inf(prec, 0),
        "_NINF": BigFloat.inf(prec, 1),
    }
    exec(code, namespace)
    kernel = namespace["_kernel"]
    if notes is None:
        _KERNEL_CACHE[key] = kernel
    return kernel
