"""Reproduction of "Seamless Compiler Integration of Variable Precision
Floating-Point Arithmetic" (CGO 2021).

Subpackages (see DESIGN.md for the full inventory):

- :mod:`repro.bigfloat` -- correctly-rounded arbitrary-precision FP (the
  MPFR stand-in) and the C-style MPFR object API;
- :mod:`repro.unum` -- UNUM type-I codec and the coprocessor model;
- :mod:`repro.lang` -- the C dialect with ``vpfloat<...>`` types;
- :mod:`repro.ir` -- SSA IR with first-class vpfloat types;
- :mod:`repro.codegen` -- AST -> IR;
- :mod:`repro.passes` -- the -O3 pipeline + Polly-lite;
- :mod:`repro.backends` -- MPFR lowering, Boost baseline, UNUM ISA;
- :mod:`repro.runtime` -- interpreter, memory, cost model, UNUM machine;
- :mod:`repro.blas` / :mod:`repro.solvers` -- variable-precision BLAS and
  the conjugate-gradient study;
- :mod:`repro.workloads` -- PolyBench / RAJAPerf kernels in the dialect;
- :mod:`repro.evaluation` -- drivers regenerating every table and figure.

Quickstart::

    from repro import compile_source

    program = compile_source(C_SOURCE, backend="mpfr")
    result = program.run("kernel", [64])
    print(result.value, result.report.cycles)
"""

from .core import (
    BACKENDS,
    CompileOptions,
    CompiledProgram,
    CompilerDriver,
    compile_source,
)

__version__ = "1.0.0"

__all__ = [
    "CompilerDriver",
    "CompiledProgram",
    "CompileOptions",
    "compile_source",
    "BACKENDS",
    "__version__",
]
