"""Telemetry across the parallel engine + the no-perturbation contract.

Two guarantees from the observability tentpole:

* worker shards record into fresh telemetry objects and the parent
  merges them, so a ``run_grid(jobs=N)`` sweep produces the same merged
  metric totals as the serial run and a trace with per-worker tracks;
* telemetry never touches modeled state: kernel outputs are
  bit-identical and cycle reports equal with tracing on vs off, for
  every dispatch engine.
"""

import pytest

from repro.evaluation.harness import run_kernel
from repro.evaluation.parallel import GridPoint, run_grid
from repro.observability import (
    install_telemetry,
    telemetry_session,
)
from repro.observability.stats import validate_trace_document
from repro.workloads.polybench import KERNELS

#: Small but real sweep: 2 kernels x 2 types = 4 points over 2 workers.
GRID = [
    GridPoint.make("gemm", "double", 8),
    GridPoint.make("gemm", "vpfloat<mpfr, 16, 128>", 8),
    GridPoint.make("jacobi-1d", "double", 16),
    GridPoint.make("jacobi-1d", "vpfloat<mpfr, 16, 128>", 16),
]

#: Counters that must be exactly the sum of the shards' work.
SUMMED = ("eval.points", "runtime.cycles", "runtime.instructions",
          "compile.count")


@pytest.fixture(autouse=True)
def _no_leaked_telemetry():
    previous = install_telemetry(None, None)
    try:
        yield
    finally:
        install_telemetry(*previous)


def _bits(value):
    """Exact content tuple for a BigFloat (or the raw value)."""
    if hasattr(value, "mant"):
        return (value.kind, value.sign, value.mant, value.exp, value.prec)
    return value


def _report_tuple(report):
    return (report.cycles, report.instructions, report.mpfr_calls,
            report.mpfr_allocations, report.heap_allocations,
            report.llc_misses, report.dram_bytes,
            report.parallel_cycles, sorted(report.by_category.items()))


class TestParallelMerge:
    def test_run_grid_merges_worker_metrics(self, tmp_path):
        # Serial reference run, telemetry on.
        with telemetry_session(metrics=True) as (_, serial_reg):
            serial = run_grid(GRID, jobs=1,
                              cache_dir=str(tmp_path / "serial"),
                              compile_cache=False)
        # Parallel run: shards record independently, parent merges.
        with telemetry_session(trace=True, metrics=True) \
                as (tracer, merged_reg):
            parallel = run_grid(GRID, jobs=2,
                                cache_dir=str(tmp_path / "par"),
                                compile_cache=False)
        assert merged_reg.counters["eval.points"] == len(GRID)
        for name in SUMMED:
            assert merged_reg.counters[name] == \
                serial_reg.counters[name], name
        # Outcomes themselves are unchanged by the engine.
        for a, b in zip(serial, parallel):
            assert [_bits(x) for x in a.outputs] == \
                [_bits(x) for x in b.outputs]
            assert a.report.cycles == b.report.cycles
        # The trace holds each worker's lifetime span on its own
        # process track, and validates as a Chrome trace.
        doc = tracer.to_chrome()
        validate_trace_document(doc)
        shard_spans = [e for e in doc["traceEvents"]
                       if e["ph"] == "X" and e["name"] == "worker.shard"]
        if len({e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "X"}) > 1:
            # Genuine multi-process run (not the serial fallback).
            assert len(shard_spans) == 2
            assert len({e["pid"] for e in shard_spans}) == 2
            assert all(e["args"]["tasks"] == 2 for e in shard_spans)

    def test_parallel_precision_histograms_merge(self, tmp_path):
        with telemetry_session(metrics=True) as (_, registry):
            run_grid(GRID, jobs=2, cache_dir=str(tmp_path / "c"),
                     compile_cache=False)
        hist = registry.histograms.get("precision.op.fadd.bits")
        assert hist and 128 in hist

    def test_disabled_parent_ships_no_telemetry(self, tmp_path):
        # No telemetry installed: the sweep must work exactly as before.
        outcomes = run_grid(GRID[:2], jobs=2,
                            cache_dir=str(tmp_path / "c"),
                            compile_cache=False)
        assert len(outcomes) == 2


class TestNoPerturbation:
    """Tracing on vs off: bit-identical outputs, identical cycles."""

    @pytest.mark.parametrize("dispatch", ("fast", "unfused", "legacy"))
    @pytest.mark.parametrize("kernel,n", (("gemm", 8), ("jacobi-1d", 16)))
    def test_outputs_and_report_identical(self, kernel, n, dispatch):
        ftype = "vpfloat<mpfr, 16, 128>"
        baseline = run_kernel(kernel, ftype, n, backend="none",
                              dispatch=dispatch, compile_cache=None)
        with telemetry_session(trace=True, metrics=True):
            traced = run_kernel(kernel, ftype, n, backend="none",
                                dispatch=dispatch, compile_cache=None)
        assert [_bits(x) for x in baseline.outputs] == \
            [_bits(x) for x in traced.outputs]
        assert _report_tuple(baseline.report) == \
            _report_tuple(traced.report)

    @pytest.mark.parametrize("dispatch", ("fast", "unfused", "legacy"))
    def test_mpfr_backend_identical(self, dispatch):
        baseline = run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 8,
                              backend="mpfr", dispatch=dispatch,
                              compile_cache=None)
        with telemetry_session(trace=True, metrics=True):
            traced = run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 8,
                                backend="mpfr", dispatch=dispatch,
                                compile_cache=None)
        assert [_bits(x) for x in baseline.outputs] == \
            [_bits(x) for x in traced.outputs]
        assert _report_tuple(baseline.report) == \
            _report_tuple(traced.report)
