"""Differential tests for the specializing jit codegen engine.

Every PolyBench and RAJAPerf kernel is executed under both the ``jit``
engine (compiled Python source, :mod:`repro.codegen.pyjit`) and the
``legacy`` reference walker; outputs must be bit-identical and the
modeled cycle reports identical field by field.  Dynamic-precision
kernels exercise the per-function fallback path, and the CompileCache
round-trip checks that warm runs skip re-emission.
"""

import pytest

from repro.codegen.pyjit import CodegenStore, emit_function_source
from repro.core import CompileCache, CompilerDriver, compile_source
from repro.evaluation.harness import _read_interpreter_outputs
from repro.observability import telemetry_session
from repro.workloads import RAJA_KERNELS, raja_source
from repro.workloads.polybench import KERNELS, source_for

POLYBENCH_FTYPE = "vpfloat<mpfr, 16, 128>"
RAJA_FTYPE = "vpfloat<mpfr, 16, 96>"
RAJA_N = 20


def _report_fields(report):
    return {
        "cycles": report.cycles,
        "instructions": report.instructions,
        "mpfr_calls": report.mpfr_calls,
        "heap_allocations": report.heap_allocations,
        "by_category": dict(report.by_category),
    }


def _assert_identical(jit, legacy):
    assert _report_fields(jit.report) == _report_fields(legacy.report)


class TestPolyBenchDifferential:
    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_jit_matches_legacy(self, kernel):
        # One compile, both engines: instruction order out of the -O3
        # pipeline feeds the cache model, so comparing across separate
        # compiles would compare two different (equally valid) layouts.
        spec = KERNELS[kernel]
        n = spec.size_for("mini")
        program = compile_source(source_for(kernel, POLYBENCH_FTYPE),
                                 backend="mpfr")
        jit = program.run("run", [n], engine="jit")
        legacy = program.run("run", [n], engine="legacy")
        assert jit.value == legacy.value
        jit_out = _read_interpreter_outputs(
            jit.interpreter, int(jit.value), spec.outputs(n),
            POLYBENCH_FTYPE, "mpfr")
        legacy_out = _read_interpreter_outputs(
            legacy.interpreter, int(legacy.value), spec.outputs(n),
            POLYBENCH_FTYPE, "mpfr")
        assert jit_out == legacy_out
        _assert_identical(jit, legacy)


class TestRajaPerfDifferential:
    @pytest.mark.parametrize("kernel", RAJA_KERNELS)
    def test_jit_matches_legacy(self, kernel):
        source = raja_source(kernel, RAJA_FTYPE, openmp=False)
        program = compile_source(source, backend="mpfr")
        jit = program.run("run", [RAJA_N], engine="jit")
        legacy = program.run("run", [RAJA_N], engine="legacy")
        assert jit.value == legacy.value
        _assert_identical(jit, legacy)


DYNAMIC_PREC_SRC = """
vpfloat<mpfr, 16, 256> out;

int run(int n) {
    int p = 64 + n;
    vpfloat<mpfr, 16, p> acc = 0.0;
    vpfloat<mpfr, 16, p> step = 1.25;
    for (int i = 0; i < n; i = i + 1) {
        acc = acc + step * step;
    }
    out = (vpfloat<mpfr, 16, 256>)acc;
    return n;
}
"""

MIXED_SRC = """
vpfloat<mpfr, 16, 256> out;

vpfloat<mpfr, 16, 256> scale(vpfloat<mpfr, 16, 256> x, int k) {
    vpfloat<mpfr, 16, 256> y = x;
    for (int i = 0; i < k; i = i + 1) {
        y = y * 1.5;
    }
    return y;
}

int dyn(int p, int k) {
    vpfloat<mpfr, 16, p> acc = 3.25;
    for (int i = 0; i < k; i = i + 1) {
        acc = acc / 2.0;
    }
    return p;
}

int run(int n) {
    out = scale(1.0, n);
    return dyn(96, n);
}
"""


class TestDynamicPrecisionFallback:
    def test_dynamic_kernel_falls_back_bit_identical(self):
        program = compile_source(DYNAMIC_PREC_SRC, backend="mpfr")
        jit = program.run("run", [6], engine="jit")
        legacy = program.run("run", [6], engine="legacy")
        assert jit.value == legacy.value
        _assert_identical(jit, legacy)
        statuses = program._codegen_store.statuses()
        assert statuses["run"]["status"] == "fallback"
        assert statuses["run"]["reason"]

    def test_mixed_module_per_function_status(self):
        # Inlining would fold dyn(96, n) into run and constant-fold the
        # precision (making everything static); keep the calls to get
        # one jit and one fallback function in the same module.
        program = compile_source(MIXED_SRC, backend="mpfr",
                                 enable_inlining=False)
        jit = program.run("run", [5], engine="jit")
        legacy = program.run("run", [5], engine="legacy")
        assert jit.value == legacy.value
        _assert_identical(jit, legacy)
        statuses = program._codegen_store.statuses()
        # The static functions specialize; the dynamic-precision one
        # must fall back to the closure-table engine -- per function,
        # not per module.
        assert statuses["dyn"]["status"] == "fallback"
        assert statuses["run"]["status"] == "jit"
        assert statuses["scale"]["status"] == "jit"

    def test_fallback_metrics_and_reason(self):
        program = compile_source(DYNAMIC_PREC_SRC, backend="mpfr")
        with telemetry_session(metrics=True) as (_, registry):
            program.run("run", [4], engine="jit")
        assert registry.counters.get("codegen.functions.fallback", 0) >= 1
        assert any(k.startswith("codegen.fn.run.fallback.")
                   for k in registry.counters)

    def test_emit_rejects_dynamic_precision(self):
        program = compile_source(DYNAMIC_PREC_SRC, backend="mpfr")
        interp = program.interpreter(engine="fast")
        func = program.module.get_function("run")
        source, reason = emit_function_source(interp, func)
        assert source is None
        assert reason


class TestCodegenCacheRoundTrip:
    def test_warm_run_skips_reemission(self, tmp_path):
        source = raja_source("DAXPY", RAJA_FTYPE, openmp=False)
        results = []
        span_args = []
        for _ in range(2):
            with telemetry_session(trace=True) as (tracer, _):
                driver = CompilerDriver(backend="mpfr",
                                        cache=str(tmp_path))
                program = driver.compile(source, "daxpy")
                results.append(program.run("run", [RAJA_N]))
            span_args.append([
                e["args"] for e in tracer.events
                if e.get("name", "").startswith("codegen:")
            ])
        cold, warm = span_args
        assert cold and not any(a.get("cached") for a in cold)
        assert warm and all(a.get("cached") for a in warm)
        assert results[0].value == results[1].value
        assert results[0].report.cycles == results[1].report.cycles
        sidecars = list(tmp_path.glob("*.vpcgen"))
        assert sidecars

    def test_stale_sidecar_version_is_dropped(self, tmp_path):
        cache = CompileCache(str(tmp_path))
        cache.put_codegen("k1", {"version": -1, "functions": {}})
        assert cache.get_codegen("k1") is None
        assert not list(tmp_path.glob("k1.vpcgen"))

    def test_fingerprint_varies_with_engine(self):
        options = CompilerDriver(backend="mpfr").options
        keys = {
            CompileCache.fingerprint("int run() { return 0; }", options,
                                     engine=engine)
            for engine in (None, "jit", "fast", "legacy")
        }
        assert len(keys) == 4


class TestEngineSelection:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            CompilerDriver(backend="mpfr", engine="fused")

    def test_profile_runs_use_closure_tables(self):
        # Opcode-level profiling needs per-instruction dispatch; the
        # jit mode transparently degrades to the fast engine for it.
        program = compile_source(MIXED_SRC, backend="mpfr")
        result = program.run("run", [3], engine="jit", profile=True)
        baseline = program.run("run", [3], engine="legacy")
        assert result.profile is not None
        assert result.value == baseline.value
        assert result.report.cycles == baseline.report.cycles

    def test_in_memory_store_reused_across_runs(self):
        program = compile_source(MIXED_SRC, backend="mpfr")
        program.run("run", [3])
        store = program._codegen_store
        assert isinstance(store, CodegenStore)
        program.run("run", [4])
        assert program._codegen_store is store
        assert store.statuses()["run"]["status"] == "jit"
