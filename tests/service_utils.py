"""Shared driver for the service tests: an in-process daemon on a
temporary socket plus asyncio clients, all inside one ``asyncio.run``.

Synchronization is by observable state only -- the ``stats`` op is
answered inline by the daemon (never queued behind workers), so tests
park workers on file latches and poll stats with a bounded deadline
instead of sleeping and hoping.
"""

import asyncio
import contextlib

from repro.service import AsyncServiceClient, ServiceConfig, VpfloatDaemon

FTYPE = "vpfloat<mpfr, 16, 64>"


@contextlib.asynccontextmanager
async def service(tmp_path, **overrides):
    """A running daemon on a socket under ``tmp_path`` (debug ops
    enabled -- this is the fault-injection harness)."""
    overrides.setdefault("workers", 1)
    overrides.setdefault("request_timeout", 60.0)
    overrides.setdefault("allow_debug", True)
    config = ServiceConfig(
        socket_path=str(tmp_path / "serve.sock"),
        cache_dir=str(tmp_path / "store"), **overrides)
    daemon = VpfloatDaemon(config)
    await daemon.start()
    try:
        yield daemon
    finally:
        daemon._stopping.set()
        await daemon._shutdown()


async def connect(daemon) -> AsyncServiceClient:
    return await AsyncServiceClient(daemon.config.socket_path).connect()


async def wait_until(predicate, deadline: float = 30.0,
                     message: str = "condition"):
    """Poll an observable condition to a hard deadline (the bounded
    replacement for sleeps-as-synchronization)."""
    loop = asyncio.get_running_loop()
    end = loop.time() + deadline
    while True:
        result = predicate()
        if asyncio.iscoroutine(result):
            result = await result
        if result:
            return result
        if loop.time() >= end:
            raise AssertionError(f"timed out waiting for {message}")
        await asyncio.sleep(0.01)


async def park_worker(daemon, client, latch_path) -> int:
    """Send a ``wait_for_file`` debug request and wait until the shard
    is verifiably blocked on it (no free workers, nothing queued);
    returns the request id (release with ``latch_path.touch()``)."""
    request_id = await client.send("debug", action="wait_for_file",
                                   path=str(latch_path))
    await wait_until(
        lambda: daemon._free.qsize() == 0
        and daemon._pending_count() == 0,
        message="worker parked on the latch")
    return request_id


def serial_digest(kernel: str, n: int, ftype: str = FTYPE) -> str:
    """The in-process serial reference digest for one point."""
    from repro.evaluation.harness import run_kernel
    from repro.validation.certificate import values_digest

    outcome = run_kernel(kernel, ftype, n, backend="mpfr",
                         engine="jit")
    return values_digest([outcome.value] + list(outcome.outputs))
