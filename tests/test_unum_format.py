"""UNUM format codec: geometry (Table II), literals (Table III), round trips."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bigfloat import RNDD, RNDU, BigFloat, from_str
from repro.unum import (
    UnumConfig,
    UnumConfigError,
    chunked_hex,
    decode,
    encode,
    extract_fields,
    mpfr_literal_bits,
    paper_literal_bits,
    sizeof_vpfloat,
)


class TestGeometryTableII:
    """Exactly the five rows of paper Table II."""

    @pytest.mark.parametrize(
        "ess,fss,size,exp_bits,prec_bits,size_bytes",
        [
            (3, 6, None, 8, 64, 11),
            (3, 6, 6, 8, 29, 6),
            (3, 8, 60, 8, 256, 60),
            (4, 9, 20, 16, 129, 20),
            (4, 9, None, 16, 512, 68),
        ],
    )
    def test_row(self, ess, fss, size, exp_bits, prec_bits, size_bytes):
        c = UnumConfig(ess, fss, size)
        assert c.exponent_bits == exp_bits
        assert c.fraction_bits == prec_bits
        assert c.size_bytes == size_bytes

    def test_max_configuration(self):
        c = UnumConfig(4, 9)
        assert c.exponent_bits == 16
        assert c.fraction_bits == 512
        assert c.size_bytes == 68  # the ISA's 68-byte ceiling

    def test_non_power_of_two_sizes(self):
        """The toolchain supports byte-granular sizes (paper: 25, 67 bytes)."""
        c25 = UnumConfig(4, 9, 25)
        assert c25.size_bytes == 25
        assert c25.fraction_bits == 25 * 8 - (2 + 16 + 4 + 9)
        c67 = UnumConfig(4, 9, 67)
        assert c67.size_bytes == 67
        assert c67.fraction_bits == 505

    def test_attribute_range_validation(self):
        with pytest.raises(UnumConfigError):
            UnumConfig(0, 5)
        with pytest.raises(UnumConfigError):
            UnumConfig(5, 5)
        with pytest.raises(UnumConfigError):
            UnumConfig(2, 10)
        with pytest.raises(UnumConfigError):
            UnumConfig(2, 5, 0)
        with pytest.raises(UnumConfigError):
            UnumConfig(2, 5, 69)

    def test_size_too_small_for_fields(self):
        with pytest.raises(UnumConfigError):
            UnumConfig(4, 9, 3)  # tag+exponent alone exceed 3 bytes

    def test_sizeof_vpfloat_runtime_entry(self):
        assert sizeof_vpfloat(3, 6) == 11
        assert sizeof_vpfloat(3, 6, 6) == 6
        with pytest.raises(UnumConfigError):
            sizeof_vpfloat(7, 3)


class TestLiteralsTableIII:
    """The hex encodings of 1.3 published in paper Table III."""

    def setup_method(self):
        self.value = from_str("1.3", 600)

    def test_unum_3_6_6(self):
        c = UnumConfig(3, 6, 6)
        bits = paper_literal_bits(self.value, c)
        assert chunked_hex(bits, c.total_bits, "V") == "0xV001FE999999A"

    def test_mpfr_8_48(self):
        bits = mpfr_literal_bits(self.value, 8, 48)
        # Fields: sign=0, stored exponent 0xFF, fraction 0.3 * 2**48.
        assert bits >> 48 == 0xFF
        assert bits & ((1 << 48) - 1) == 0x4CCCCCCCCCCD

    def test_mpfr_8_64(self):
        bits = mpfr_literal_bits(self.value, 8, 64)
        text = chunked_hex(bits, 1 + 8 + 64, "Y")
        assert text == "0xY4CCCCCCCCCCCCCCD0FF"

    def test_mpfr_16_100(self):
        bits = mpfr_literal_bits(self.value, 16, 100)
        assert (bits >> 100) == 0xFFFF  # biased exponent field
        frac = bits & ((1 << 100) - 1)
        # fraction = round(0.3 * 2**100)
        assert frac == (3 * (1 << 100) + 5) // 10

    def test_unum_4_9_20_tail_fields(self):
        c = UnumConfig(4, 9, 20)
        bits = paper_literal_bits(self.value, c)
        # The paper's displayed value ends ...0001FFFE: stored exponent
        # 0xFFFF sits just above the 129-bit fraction.
        assert (bits >> 129) & 0xFFFF == 0xFFFF
        assert (bits >> 145) == 0  # utag fields reserved as zero


class TestRoundTrip:
    @pytest.mark.parametrize("ess,fss,size", [(3, 6, None), (3, 6, 6),
                                              (4, 9, 20)])
    @pytest.mark.parametrize("x", [1.3, -2.5, 0.1, 1e10, -1e-10, 3.14159, 1.0])
    def test_float_round_trip(self, ess, fss, size, x):
        c = UnumConfig(ess, fss, size)
        v = BigFloat.from_float(x, c.precision)
        assert float(decode(encode(v, c), c)) == pytest.approx(x, rel=2e-7)

    def test_small_format_round_trip(self):
        c = UnumConfig(2, 4)  # 4 exponent bits, 16 fraction bits
        for x in (1.3, -2.5, 0.1, 1.0):
            v = BigFloat.from_float(x, c.precision)
            got = float(decode(encode(v, c), c))
            assert got == pytest.approx(x, rel=2.0 ** -(c.fraction_bits - 1))

    def test_exact_round_trip_at_format_precision(self):
        c = UnumConfig(3, 6)
        v = BigFloat.from_float(1.25, c.precision)
        assert decode(encode(v, c), c) == v

    def test_specials(self):
        c = UnumConfig(2, 5)
        assert decode(encode(BigFloat.nan(), c), c).is_nan()
        assert decode(encode(BigFloat.inf(), c), c).is_inf()
        ninf = decode(encode(BigFloat.inf(53, 1), c), c)
        assert ninf.is_inf() and ninf.sign == 1
        nz = decode(encode(BigFloat.zero(53, 1), c), c)
        assert nz.is_zero() and nz.sign == 1

    def test_overflow_saturates_to_inf(self):
        c = UnumConfig(1, 3)  # 2 exponent bits: tiny range
        big = BigFloat.from_float(1e30, 64)
        assert decode(encode(big, c), c).is_inf()

    def test_underflow_to_subnormal_then_zero(self):
        c = UnumConfig(2, 4)  # 4 exponent bits, bias 7
        tiny = BigFloat.from_fraction(1, 1 << 9, 32)  # subnormal range
        d = decode(encode(tiny, c), c)
        assert not d.is_zero()
        assert float(d) == pytest.approx(2.0**-9)
        vanishing = BigFloat.from_fraction(1, 1 << 100, 32)
        assert decode(encode(vanishing, c), c).is_zero()

    def test_directed_rounding_on_encode(self):
        c = UnumConfig(3, 3)  # 8 fraction bits
        v = from_str("1.3", 200)
        lo = decode(encode(v, c, RNDD), c)
        hi = decode(encode(v, c, RNDU), c)
        assert lo < v < hi

    def test_fields_extraction(self):
        c = UnumConfig(3, 6, 6)
        v = BigFloat.from_float(1.5, c.precision)
        fields = extract_fields(encode(v, c), c)
        assert fields["sign"] == 0
        assert fields["ubit"] == 0
        assert fields["es_minus_1"] == c.exponent_bits - 1
        assert fields["fs_minus_1"] == c.fraction_bits - 1
        assert fields["biased_exponent"] == c.bias  # exponent 0
        assert fields["fraction"] == 1 << (c.fraction_bits - 1)  # .5


@given(
    st.floats(allow_nan=False, allow_infinity=False, allow_subnormal=False,
              min_value=-1e30, max_value=1e30).filter(lambda x: x != 0),
)
def test_decode_encode_is_identity_on_representable(x):
    """encode(decode(bits)) == bits for values already in the format."""
    c = UnumConfig(3, 6)
    v = BigFloat.from_float(x, c.precision)
    bits = encode(v, c)
    assert encode(decode(bits, c), c) == bits


@given(st.integers(min_value=1, max_value=4), st.integers(min_value=1, max_value=9))
def test_default_size_formula(ess, fss):
    """Default size matches ceil((2 + es + 2**fss + ess + fss) / 8)."""
    c = UnumConfig(ess, fss)
    expected = (2 + (1 << ess) + (1 << fss) + ess + fss + 7) // 8
    assert c.size_bytes == expected
    assert c.size_bytes <= 68
