"""Parser: declarations, vpfloat types, statements, expressions."""

import pytest

from repro.lang import SourceError, ast, parse
from repro.lang.ctypes import (
    ArrayT,
    AttrConst,
    AttrRef,
    DOUBLE,
    FloatT,
    IntT,
    PointerT,
    VPFloatT,
)


def parse_one(source):
    unit = parse(source)
    assert len(unit.declarations) == 1
    return unit.declarations[0]


class TestVPFloatTypes:
    def test_mpfr_constant_attrs(self):
        func = parse_one("void f(vpfloat<mpfr, 16, 256> x) {}")
        ptype = func.params[0].type
        assert isinstance(ptype, VPFloatT)
        assert ptype.format == "mpfr"
        assert ptype.exp == AttrConst(16)
        assert ptype.prec == AttrConst(256)
        assert ptype.size is None
        assert ptype.is_static

    def test_unum_with_size(self):
        func = parse_one("void f(vpfloat<unum, 3, 6, 6> x) {}")
        ptype = func.params[0].type
        assert ptype.format == "unum"
        assert ptype.size == AttrConst(6)

    def test_dynamic_attribute(self):
        func = parse_one(
            "void f(unsigned prec, vpfloat<mpfr, 16, prec> x) {}")
        ptype = func.params[1].type
        assert ptype.prec == AttrRef("prec")
        assert not ptype.is_static

    def test_pointer_to_vpfloat(self):
        func = parse_one("void f(vpfloat<mpfr, 16, 128> *x) {}")
        assert isinstance(func.params[0].type, PointerT)
        assert isinstance(func.params[0].type.pointee, VPFloatT)

    def test_posit_accepted(self):
        """posit joined mpfr/unum as a supported format (DESIGN.md §5)."""
        func = parse_one("void f(vpfloat<posit, 2, 16> x) {}")
        assert func.params[0].type.format == "posit"

    def test_bfloat16_reports_no_backend(self):
        """The grammar admits bfloat16 (paper's syntax), but the
        toolchain reports the missing backend."""
        with pytest.raises(SourceError, match="no backend"):
            parse("void f(vpfloat<bfloat16, 8, 8> x) {}")

    def test_unknown_format(self):
        with pytest.raises(SourceError, match="unknown vpfloat format"):
            parse("void f(vpfloat<ieee754, 8, 23> x) {}")

    def test_wrong_attr_count(self):
        with pytest.raises(SourceError):
            parse("void f(vpfloat<mpfr, 16> x) {}")
        with pytest.raises(SourceError):
            parse("void f(vpfloat<unum, 4, 9, 20, 1> x) {}")


class TestDeclarations:
    def test_function_with_body(self):
        func = parse_one("int add(int a, int b) { return a + b; }")
        assert func.name == "add"
        assert len(func.params) == 2
        assert isinstance(func.body, ast.Block)

    def test_function_declaration_only(self):
        func = parse_one("double f(double x);")
        assert func.body is None

    def test_void_param_list(self):
        func = parse_one("int f(void) { return 0; }")
        assert func.params == []

    def test_global_variable(self):
        decl = parse_one("int limit = 10;")
        assert isinstance(decl, ast.VarDecl)
        assert decl.is_global
        assert decl.init.value == 10

    def test_multiple_declarators(self):
        unit = parse("int a, b = 2, c;")
        assert [d.name for d in unit.declarations] == ["a", "b", "c"]

    def test_fixed_array(self):
        func = parse_one("void f() { double A[10]; }")
        decl = func.body.statements[0].decls[0]
        assert isinstance(decl.type, ArrayT)
        assert decl.type.size == 10

    def test_vla(self):
        func = parse_one("void f(int n) { double A[n*n]; }")
        decl = func.body.statements[0].decls[0]
        assert isinstance(decl.type, ArrayT)
        assert decl.type.is_vla

    def test_unsigned_long(self):
        func = parse_one("void f(unsigned long x) {}")
        assert func.params[0].type == IntT(64, False)


class TestStatements:
    def test_for_loop(self):
        func = parse_one(
            "void f(int n) { for (int i = 0; i < n; i++) n = n; }")
        loop = func.body.statements[0]
        assert isinstance(loop, ast.For)
        assert isinstance(loop.init, ast.DeclStmt)
        assert loop.cond.op == "<"

    def test_omp_parallel_for(self):
        source = """
        void f(int n, double *x) {
          #pragma omp parallel for
          for (int i = 0; i < n; i++) x[i] = 0.0;
        }
        """
        func = parse(source).declarations[0]
        assert func.body.statements[0].omp_parallel

    def test_omp_pragma_requires_for(self):
        with pytest.raises(SourceError):
            parse("void f() {\n#pragma omp parallel for\nint x;\n}")

    def test_if_else_chain(self):
        func = parse_one(
            "int f(int x) { if (x > 0) return 1; else if (x < 0) "
            "return -1; else return 0; }")
        stmt = func.body.statements[0]
        assert isinstance(stmt, ast.If)
        assert isinstance(stmt.else_body, ast.If)

    def test_do_while(self):
        func = parse_one("void f(int n) { do { n = n - 1; } while (n); }")
        assert isinstance(func.body.statements[0], ast.DoWhile)

    def test_break_continue(self):
        func = parse_one(
            "void f() { while (1) { if (1) break; continue; } }")
        body = func.body.statements[0].body
        assert isinstance(body.statements[0].then_body, ast.Break)
        assert isinstance(body.statements[1], ast.Continue)


class TestExpressions:
    def _expr(self, text):
        func = parse_one(f"void f(int a, int b, int c) {{ a = {text}; }}")
        return func.body.statements[0].expr.value

    def test_precedence(self):
        expr = self._expr("a + b * c")
        assert expr.op == "+"
        assert expr.rhs.op == "*"

    def test_left_associativity(self):
        expr = self._expr("a - b - c")
        assert expr.op == "-"
        assert expr.lhs.op == "-"

    def test_comparison_vs_logical(self):
        expr = self._expr("a < b && b < c")
        assert expr.op == "&&"

    def test_ternary(self):
        expr = self._expr("a ? b : c")
        assert isinstance(expr, ast.Ternary)

    def test_cast_vs_paren(self):
        expr = self._expr("(double)b")
        assert isinstance(expr, ast.Cast)
        assert expr.target_type == DOUBLE
        grouped = self._expr("(b)")
        assert isinstance(grouped, ast.Ident)

    def test_cast_to_vpfloat(self):
        expr = self._expr("(vpfloat<mpfr, 16, 100>)b")
        assert isinstance(expr, ast.Cast)
        assert isinstance(expr.target_type, VPFloatT)

    def test_sizeof_type_and_expr(self):
        expr = self._expr("sizeof(double)")
        assert isinstance(expr, ast.SizeofType)
        expr = self._expr("sizeof b")
        assert isinstance(expr, ast.SizeofExpr)

    def test_index_chain(self):
        func = parse_one("void f(double *A, int i) { A[i] = A[i+1]; }")
        target = func.body.statements[0].expr.target
        assert isinstance(target, ast.Index)

    def test_unary_chain(self):
        expr = self._expr("-b")
        assert isinstance(expr, ast.Unary)
        expr = self._expr("*(&b)")
        assert isinstance(expr, ast.Deref)
        assert isinstance(expr.operand, ast.AddressOf)

    def test_call_with_args(self):
        expr = self._expr("g(b, c + 1)")
        assert isinstance(expr, ast.Call)
        assert len(expr.args) == 2

    def test_compound_assignment(self):
        func = parse_one("void f(int a) { a += 2; }")
        assert func.body.statements[0].expr.op == "+="

    def test_vpfloat_literal_suffix(self):
        func = parse_one(
            "void f() { vpfloat<mpfr,16,100> x = 1.3y; }")
        init = func.body.statements[0].decls[0].init
        assert isinstance(init, ast.FloatLit)
        assert init.suffix == "y"

    def test_error_messages_carry_position(self):
        with pytest.raises(SourceError) as excinfo:
            parse("void f() { int x = ; }")
        assert excinfo.value.line == 1
