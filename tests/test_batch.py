"""Batched SoA execution engine: kernels, runtime, plumbing.

Locks the batched engine's contract at every layer:

* the fused N-lane arithmetic kernels are bit-identical per lane to
  ``repro.bigfloat.arith`` (and hence to the scalar specialized
  kernels) across precisions, rounding modes, exponent clamps, and
  special values -- including the ZERO-operand fast paths;
* :class:`~repro.runtime.batch.VPBatch` semantics (broadcast, lanes,
  uniform guards, SoA interchange);
* end-to-end ``run_batch`` on real kernels: per-lane values and cycle
  reports bit-identical to serial jit runs, serial bailout for
  non-jittable programs;
* the ``serial↔batched`` transition: TRANSITIONS registry, evaluation
  harness certification, fuzzer cross-check, CLI path;
* compile-cache keying of batch-mode codegen sidecars.
"""

import pytest

from repro.bigfloat import BigFloat, arith
from repro.bigfloat.number import Kind
from repro.bigfloat.rounding import RNDA, RNDD, RNDN, RNDU, RNDZ
from repro.codegen.batch_kernels import (
    BATCH_KERNEL_OPS,
    batch_kernel_factory,
)
from repro.core import CompileCache, CompileOptions, CompilerDriver
from repro.runtime.batch import (
    BatchContext,
    BatchDivergence,
    VPBatch,
    lane_view,
)

ALL_MODES = (RNDN, RNDZ, RNDU, RNDD, RNDA)

_ORACLES = {
    "add": arith.add, "sub": arith.sub, "mul": arith.mul,
    "div": arith.div, "fma": arith.fma, "fms": arith.fms,
    "sqrt": arith.sqrt,
}


def _clamped(value, exp_bits):
    """The destination exponent clamp (MpfrLibrary._clamp, per-lane)."""
    if exp_bits is None or not value.is_finite() or value.is_zero():
        return value
    limit = 1 << (exp_bits - 1)
    exponent = value.exponent()
    if exponent > limit:
        return BigFloat.inf(value.prec, value.sign)
    if exponent < -limit:
        return BigFloat.zero(value.prec, value.sign)
    return value


def _token(v):
    return (v.kind, v.sign, v.mant, v.exp, v.prec)


def _lane_values(prec):
    """Operand lanes covering the fast paths and every fallback class:
    normals, exact cancellations, signed zeros, huge/tiny magnitudes,
    negatives (sqrt fallback), and the non-finite specials."""
    f = lambda x: BigFloat.from_float(x, prec)
    return [
        f(1.5), f(-2.25), f(3.0), f(3.0), f(0.1),
        f(0.0), -f(0.0), f(1e300), f(1e-300), f(-7.0),
        BigFloat.inf(prec), BigFloat.inf(prec, 1), BigFloat.nan(prec),
        BigFloat.zero(prec), f(2.0),
    ]


class TestBatchKernelsBitExact:
    @pytest.mark.parametrize("op", BATCH_KERNEL_OPS)
    @pytest.mark.parametrize("prec", (24, 53, 128))
    def test_matches_arith_all_modes(self, op, prec):
        self._check(op, prec, exp_bits=None)

    @pytest.mark.parametrize("op", BATCH_KERNEL_OPS)
    def test_matches_arith_clamped(self, op):
        # A narrow exponent field so the huge/tiny lanes actually
        # overflow/underflow through the folded clamp.
        self._check(op, 53, exp_bits=10)

    @staticmethod
    def _check(op, prec, exp_bits):
        lanes_a = _lane_values(prec)
        n = len(lanes_a)
        lanes_b = list(reversed(lanes_a))
        lanes_c = lanes_a[n // 2:] + lanes_a[:n // 2]
        oracle = _ORACLES[op]
        for rm in ALL_MODES:
            ctx = BatchContext(n)
            kernel = batch_kernel_factory(op, prec, rm, exp_bits)(ctx)
            if op == "sqrt":
                batch = kernel(VPBatch.from_lanes(lanes_a))
                expected = [oracle(a, prec, rm) for a in lanes_a]
            elif op in ("fma", "fms"):
                batch = kernel(VPBatch.from_lanes(lanes_a),
                               VPBatch.from_lanes(lanes_b),
                               VPBatch.from_lanes(lanes_c))
                expected = [oracle(a, b, c, prec, rm) for a, b, c
                            in zip(lanes_a, lanes_b, lanes_c)]
            else:
                batch = kernel(VPBatch.from_lanes(lanes_a),
                               VPBatch.from_lanes(lanes_b))
                expected = [oracle(a, b, prec, rm) for a, b
                            in zip(lanes_a, lanes_b)]
            got = [_token(batch.lane(i)) for i in range(n)]
            want = [_token(_clamped(v, exp_bits)) for v in expected]
            assert got == want, f"{op} prec={prec} rm={rm.value}"

    def test_zero_operands_stay_on_fast_path(self):
        """The gemm-shaped case: zero accumulators/operands must not
        fall back to the per-lane library routine."""
        prec = 128
        zero = BigFloat.zero(prec)
        x = BigFloat.from_float(1.5, prec)
        for op, operands in (("add", (zero, x)), ("sub", (x, zero)),
                             ("mul", (zero, x)), ("div", (zero, x)),
                             ("sqrt", (zero,))):
            ctx = BatchContext(4)
            kernel = batch_kernel_factory(op, prec, RNDN, None)(ctx)
            kernel(*(VPBatch.broadcast(v, 4) for v in operands))
            assert ctx.scalar_fallbacks == 0, op
        ctx = BatchContext(4)
        kernel = batch_kernel_factory("fma", prec, RNDN, None)(ctx)
        kernel(VPBatch.broadcast(zero, 4), VPBatch.broadcast(x, 4),
               VPBatch.broadcast(x, 4))
        assert ctx.scalar_fallbacks == 0

    def test_specials_take_scalar_fallback(self):
        prec = 64
        ctx = BatchContext(3)
        kernel = batch_kernel_factory("add", prec, RNDN, None)(ctx)
        a = VPBatch.from_lanes([BigFloat.nan(prec), BigFloat.inf(prec),
                                BigFloat.from_float(1.0, prec)])
        b = VPBatch.broadcast(BigFloat.from_float(2.0, prec), 3)
        result = kernel(a, b)
        assert ctx.scalar_fallbacks == 2  # NaN and Inf lanes only
        assert result.lane(0).is_nan()
        assert result.lane(1).kind is Kind.INF
        assert _token(result.lane(2)) == _token(
            arith.add(a.lane(2), b.lane(2), prec, RNDN))


class TestVPBatch:
    def test_broadcast_and_lanes(self):
        v = BigFloat.from_float(2.5, 64)
        batch = VPBatch.broadcast(v, 3)
        assert len(batch) == 3
        assert [_token(x) for x in batch.lanes()] == [_token(v)] * 3
        assert _token(batch.uniform_lane()) == _token(v)

    def test_from_lanes_rejects_mixed_precision(self):
        with pytest.raises(ValueError):
            VPBatch.from_lanes([BigFloat.from_float(1.0, 64),
                                BigFloat.from_float(1.0, 128)])

    def test_uniform_lane_raises_on_divergence(self):
        batch = VPBatch.from_lanes([BigFloat.from_float(1.0, 64),
                                    BigFloat.from_float(2.0, 64)])
        with pytest.raises(BatchDivergence):
            batch.uniform_lane()

    def test_round_to(self):
        batch = VPBatch.broadcast(BigFloat.from_float(1.0 / 3.0, 128), 2)
        rounded = batch.round_to(24)
        assert rounded.prec == 24
        assert _token(rounded.lane(1)) == _token(
            batch.lane(1).round_to(24))

    def test_soa_round_trip(self):
        numpy = pytest.importorskip("numpy")
        lanes = [BigFloat.from_float(x, 192)
                 for x in (1.5, -0.25, 3e10, 0.0)]
        lanes[-1] = BigFloat.nan(192)
        batch = VPBatch.from_lanes(lanes)
        soa = batch.to_soa()
        assert soa["limbs"].shape == (4, 3)  # 192 bits -> 3 limbs
        assert soa["limbs"].dtype == numpy.uint64
        back = VPBatch.from_soa(soa)
        assert [_token(v) for v in back.lanes()] == \
            [_token(v) for v in batch.lanes()]

    def test_lane_view_passthrough(self):
        assert lane_view(7, 1) == 7
        batch = VPBatch.from_lanes([BigFloat.from_float(1.0, 64),
                                    BigFloat.from_float(2.0, 64)])
        assert _token(lane_view(batch, 1)) == _token(batch.lane(1))


GEMM_SOURCE = None  # filled lazily from the workload templates


def _gemm_program(**kwargs):
    from repro.workloads.polybench import source_for

    source = source_for("gemm", "vpfloat<mpfr, 16, 128>")
    return CompilerDriver(backend="mpfr", **kwargs).compile(
        source, name="gemm")


def _report_token(report):
    return (report.cycles, report.instructions, report.mpfr_calls,
            report.parallel_cycles, report.bytes_read,
            report.bytes_written, dict(report.by_category))


class TestRunBatch:
    def test_lanes_and_report_bit_identical_to_serial(self):
        program = _gemm_program()
        serial = program.run("run", [4], engine="jit")
        batch = program.run_batch("run", [4], lanes=3)
        assert batch.mode == "batched"
        assert batch.values == [serial.value] * 3
        assert [_report_token(r) for r in batch.reports] == \
            [_report_token(serial.report)] * 3

    def test_non_mpfr_backend_rejected(self):
        from repro.core import compile_source

        program = compile_source("int f() { return 1; }", backend="none")
        with pytest.raises(ValueError, match="mpfr backend"):
            program.run_batch("f", [], lanes=2)

    def test_non_jittable_program_falls_back_to_serial(self):
        # A runtime precision attribute keeps the function off the jit
        # path, so the batch must bail out to per-lane serial runs --
        # still correct, mode reported.
        from repro.core import compile_source

        source = """
        double f(unsigned prec) {
          vpfloat<mpfr, 16, prec> x = 1.5;
          vpfloat<mpfr, 16, prec> y = x * x + x;
          return (double)(y);
        }
        """
        program = compile_source(source, backend="mpfr", engine="jit")
        serial = program.run("f", [96], engine="jit")
        batch = program.run_batch("f", [96], lanes=2)
        assert batch.mode == "serial"
        assert batch.fallback_reason
        assert batch.values == [serial.value] * 2


class TestBatchCacheKeying:
    def test_fingerprint_differs_by_batch(self):
        options = CompileOptions(backend="mpfr")
        serial = CompileCache.fingerprint("double f();", options,
                                          engine="jit", batch=False)
        batched = CompileCache.fingerprint("double f();", options,
                                           engine="jit", batch=True)
        assert serial != batched


class TestTransitions:
    def test_registry_names_serial_batched_exact(self):
        from repro.validation import STRICTNESS, TRANSITIONS

        assert TRANSITIONS["serial↔batched"] == "exact"
        assert set(TRANSITIONS.values()) <= set(STRICTNESS)


class TestHarnessBatch:
    def test_run_kernel_batched_matches_serial(self):
        from repro.evaluation.harness import run_kernel

        ftype = "vpfloat<mpfr, 16, 128>"
        serial = run_kernel("gemm", ftype, 4, backend="mpfr",
                            compile_cache=None)
        batched = run_kernel("gemm", ftype, 4, backend="mpfr",
                             compile_cache=None, batch=3)
        assert batched.batch == 3
        assert batched.batch_mode == "batched"
        assert [_token(v) for v in batched.outputs] == \
            [_token(v) for v in serial.outputs]
        assert _report_token(batched.report) == \
            _report_token(serial.report)

    def test_run_kernel_batched_validate_certifies(self):
        from repro.evaluation.harness import run_kernel

        outcome = run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 4,
                             backend="mpfr", compile_cache=None,
                             batch=2, validate=True)
        certificate = outcome.certificate
        assert certificate is not None and certificate.passed
        labels = [check.label for check in certificate.checks]
        assert labels == ["batch2.lane0", "batch2.lane1",
                          "tier.generic.lane0", "tier.generic.lane1"]
        assert all(check.strictness == "exact"
                   for check in certificate.checks)

    def test_run_kernel_batch_rejects_other_engines(self):
        from repro.evaluation.harness import run_kernel

        with pytest.raises(ValueError, match="jit engine"):
            run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 4,
                       backend="mpfr", compile_cache=None, batch=2,
                       engine="fast")
        with pytest.raises(ValueError, match="mpfr"):
            run_kernel("gemm", "double", 4, backend="none",
                       compile_cache=None, batch=2)


class TestFuzzerBatch:
    def test_cross_check_batched_passes_on_pinned_programs(self):
        import random

        from repro.validation import cross_check_batched, generate_program

        rng = random.Random(7)
        for _ in range(3):
            program = generate_program(rng, max_ops=6)
            assert cross_check_batched(program, lanes=(2,)) is None

    def test_cross_check_batched_flags_a_bad_lane(self, monkeypatch):
        """A simulated miscompile (one lane value perturbed) must come
        back as a 'batch'-stage mismatch."""
        import random

        from repro.validation import fuzzer

        program = fuzzer.generate_program(random.Random(3), max_ops=5)

        from repro.core import compile_source as real_compile_source

        class _Tampered:
            def __init__(self, compiled):
                self._compiled = compiled

            def run(self, *args, **kwargs):
                return self._compiled.run(*args, **kwargs)

            def run_batch(self, name, args, lanes=1, **kwargs):
                result = self._compiled.run_batch(name, args,
                                                  lanes=lanes, **kwargs)
                result.values[-1] = -1234.5  # perturb the last lane
                return result

        import repro.core

        monkeypatch.setattr(
            repro.core, "compile_source",
            lambda *a, **k: _Tampered(real_compile_source(*a, **k)))
        mismatch = fuzzer.cross_check_batched(program, lanes=(2,))
        assert mismatch is not None
        assert mismatch.stage == "batch"
        assert "lane1" in mismatch.label


class TestCLIBatch:
    def test_cli_batch_validate(self, tmp_path, capsys):
        from repro.cli import main
        from repro.workloads.polybench import source_for

        source = tmp_path / "gemm.c"
        source.write_text(source_for("gemm", "vpfloat<mpfr, 16, 128>"))
        assert main([str(source), "--backend", "mpfr", "--run", "run",
                     "--args", "4", "--batch", "3", "--report",
                     "--validate", "--no-compile-cache"]) == 0
        out = capsys.readouterr().out
        assert "[3 lanes, batched]" in out
        assert "batch3.lane2" in out
        assert "PASS" in out

    def test_cli_batch_requires_mpfr(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "k.c"
        source.write_text("int f() { return 1; }")
        assert main([str(source), "--backend", "none", "--run", "f",
                     "--batch", "2", "--no-compile-cache"]) == 1
        assert "--backend mpfr" in capsys.readouterr().err
