"""Concurrency behavior of the compile/run daemon.

Covers the scheduler's three contracts under concurrent clients:
same-point requests coalesce into one batched dispatch with per-lane
replies bit-identical to serial runs, round-robin fairness keeps a
flooding client from starving anyone, and admission control bounds the
queue with structured ``overloaded`` rejections.  Worker parking uses
file latches; progress is observed through the inline ``stats`` op.
"""

import asyncio

from repro.service import ServiceError, coalesce_key, request

from service_utils import (
    FTYPE,
    connect,
    park_worker,
    serial_digest,
    service,
    wait_until,
)


def test_same_point_requests_coalesce_into_one_dispatch(tmp_path):
    """Four clients ask for the same point while the only shard is
    busy; one batched dispatch answers all four, every lane
    bit-identical to a serial run, and one certificate covers the
    batch for the client that asked for validation."""

    async def scenario():
        async with service(tmp_path, workers=1, max_batch=8) as daemon:
            parker = await connect(daemon)
            latch = tmp_path / "release"
            park_id = await park_worker(daemon, parker, latch)
            clients = [await connect(daemon) for _ in range(4)]
            ids = []
            for index, client in enumerate(clients):
                fields = {"backend": "mpfr"}
                if index == 0:
                    fields["validate"] = True
                ids.append(await client.send("run", kernel="trmm",
                                             ftype=FTYPE, n=4,
                                             **fields))
            await wait_until(lambda: daemon._pending_count() == 4,
                             message="all four requests queued")
            latch.touch()
            assert (await parker.reply(park_id))["ok"]
            replies = [await client.reply(request_id)
                       for client, request_id in zip(clients, ids)]
            reference = serial_digest("trmm", 4)
            lanes_seen = set()
            for index, reply in enumerate(replies):
                assert reply["ok"], reply
                result = reply["result"]
                assert result["lanes"] == 4
                assert result["digest"] == reference
                lanes_seen.add(result["lane"])
            assert lanes_seen == {0, 1, 2, 3}
            seqs = {r["result"]["seq"] for r in replies}
            assert len(seqs) == 1, "coalesced batch must share one seq"
            certificate = replies[0]["result"]["certificate"]
            assert certificate["passed"] is True
            assert len(certificate["checks"]) == 4
            assert "certificate" not in replies[1]["result"]
            counters = daemon.registry.counters
            assert counters.get("service.coalesced") == 4
            assert counters.get("service.batches") == 1
            for client in [parker] + clients:
                await client.close()

    asyncio.run(scenario())


def test_round_robin_fairness_under_flooding_client(tmp_path):
    """A client with six queued requests only advances one per
    rotation turn: the single request of a second client is dispatched
    immediately after the flooder's first."""

    async def scenario():
        async with service(tmp_path, workers=1) as daemon:
            parker = await connect(daemon)
            latch = tmp_path / "release"
            park_id = await park_worker(daemon, parker, latch)
            flooder = await connect(daemon)
            patient = await connect(daemon)
            flood_ids = [await flooder.send("run", kernel="trmm",
                                            ftype=FTYPE, n=n,
                                            backend="mpfr")
                         for n in range(4, 10)]
            patient_id = await patient.send("run", kernel="jacobi-1d",
                                            ftype=FTYPE, n=4,
                                            backend="mpfr")
            await wait_until(lambda: daemon._pending_count() == 7,
                             message="all seven requests queued")
            latch.touch()
            assert (await parker.reply(park_id))["ok"]
            flood_seqs = []
            for request_id in flood_ids:
                reply = await flooder.reply(request_id)
                assert reply["ok"], reply
                flood_seqs.append(reply["result"]["seq"])
            patient_reply = await patient.reply(patient_id)
            assert patient_reply["ok"], patient_reply
            patient_seq = patient_reply["result"]["seq"]
            # Exactly one flooder dispatch precedes the patient's.
            assert sum(1 for seq in flood_seqs
                       if seq < patient_seq) == 1
            assert patient_seq == min(flood_seqs) + 1
            for client in (parker, flooder, patient):
                await client.close()

    asyncio.run(scenario())


def test_mixed_workload_matches_serial_references(tmp_path):
    """Interleaved compile and validated run requests from two clients
    all come back bit-identical to in-process serial execution."""

    points = [("trmm", 4), ("jacobi-1d", 4), ("trmm", 5)]

    async def scenario():
        async with service(tmp_path, workers=2) as daemon:
            first = await connect(daemon)
            second = await connect(daemon)
            results = []
            for kernel, n in points:
                await first.call("compile", kernel=kernel, ftype=FTYPE,
                                 backend="mpfr")
                results.append((kernel, n, await second.call(
                    "run", kernel=kernel, ftype=FTYPE, n=n,
                    backend="mpfr", validate=True)))
            stats = await first.call("stats")
            for client in (first, second):
                await client.close()
            return results, stats

    results, stats = asyncio.run(scenario())
    for kernel, n, result in results:
        assert result["digest"] == serial_digest(kernel, n)
        assert result["certificate"]["passed"] is True
    # The compile requests warmed the shared store for the runs.
    hits = (stats["counters"].get("service.store.memory_hits", 0)
            + stats["counters"].get("service.store.disk_hits", 0))
    assert hits >= 1
    assert stats["store"]["entries"] >= 2


def test_admission_control_rejects_overload_with_structured_error(tmp_path):
    """Beyond ``queue_limit`` queued requests, new work is rejected
    immediately with ``overloaded`` -- and the already-admitted
    requests still complete."""

    async def scenario():
        async with service(tmp_path, workers=1,
                           queue_limit=2) as daemon:
            parker = await connect(daemon)
            latch = tmp_path / "release"
            park_id = await park_worker(daemon, parker, latch)
            client = await connect(daemon)
            admitted = [await client.send("run", kernel="trmm",
                                          ftype=FTYPE, n=4,
                                          backend="mpfr")
                        for _ in range(2)]
            await wait_until(lambda: daemon._pending_count() == 2,
                             message="queue to fill")
            rejected_id = await client.send("run", kernel="trmm",
                                            ftype=FTYPE, n=4,
                                            backend="mpfr")
            rejection = await client.reply(rejected_id)
            assert not rejection["ok"]
            assert rejection["error"]["code"] == "overloaded"
            # Inline ops stay available at full queue.
            assert (await client.call("ping"))["pong"] is True
            latch.touch()
            assert (await parker.reply(park_id))["ok"]
            reference = serial_digest("trmm", 4)
            for request_id in admitted:
                reply = await client.reply(request_id)
                assert reply["ok"], reply
                assert reply["result"]["digest"] == reference
            assert daemon.registry.counters.get(
                "service.rejected") == 1
            for c in (parker, client):
                await c.close()

    asyncio.run(scenario())


def test_malformed_requests_get_bad_request_not_disconnect(tmp_path):
    """Protocol violations are answered, not fatal to the connection."""

    async def scenario():
        async with service(tmp_path, workers=1) as daemon:
            client = await connect(daemon)
            from repro.service import encode

            client._writer.write(encode({"v": 1, "op": "nope",
                                         "id": 9}))
            await client._writer.drain()
            reply = await client.reply(9)
            assert not reply["ok"]
            assert reply["error"]["code"] == "bad_request"
            # Same connection still serves valid requests.
            assert (await client.call("ping"))["pong"] is True
            try:
                await client.call("run", kernel="no-such-kernel",
                                  ftype=FTYPE, n=4, backend="mpfr")
                raise AssertionError("unknown kernel was accepted")
            except ServiceError as error:
                assert error.code == "task_failed"
            await client.close()

    asyncio.run(scenario())


def test_coalesce_key_discriminates_points():
    """Unit-level: only genuinely identical run requests share a key."""
    base = request("run", 1, kernel="trmm", ftype=FTYPE, n=4,
                   backend="mpfr")
    same = request("run", 2, kernel="trmm",
                   ftype="vpfloat<mpfr,16,64>", n=4, backend="mpfr")
    assert coalesce_key(base) is not None
    assert coalesce_key(base) == coalesce_key(same)
    for variation in (
            request("run", 3, kernel="trmm", ftype=FTYPE, n=5,
                    backend="mpfr"),
            request("run", 4, kernel="gemm", ftype=FTYPE, n=4,
                    backend="mpfr"),
            request("run", 5, kernel="trmm",
                    ftype="vpfloat<mpfr, 16, 128>", n=4,
                    backend="mpfr"),
    ):
        assert coalesce_key(variation) != coalesce_key(base)
    assert coalesce_key(request("run", 6, kernel="trmm", ftype=FTYPE,
                                n=4, backend="unum")) is None
    assert coalesce_key(request("compile", 7, kernel="trmm",
                                ftype=FTYPE)) is None
