"""Boost baseline lowering: the structural handicap it must reproduce."""

import pytest

from repro import compile_source
from repro.backends import BoostLoweringPass, MPFRLoweringPass
from repro.codegen import generate_ir
from repro.ir import CallInst, LoopInfo, verify_module
from repro.lang import analyze, parse
from repro.passes import build_o3_pipeline

AXPY = """
void axpy(int n, vpfloat<mpfr, 16, 256> a,
          vpfloat<mpfr, 16, 256> *X, vpfloat<mpfr, 16, 256> *Y) {
  for (int i = 0; i < n; i++)
    Y[i] = a * X[i] + Y[i];
}
"""


def lower_boost(source):
    module = generate_ir(analyze(parse(source)))
    build_o3_pipeline().run(module)
    BoostLoweringPass().run_module(module)
    verify_module(module)
    return module


class TestTemporaryChurn:
    def test_init_and_clear_inside_the_loop(self):
        """The wrapper constructs/destroys temporaries per iteration --
        the defining difference from the vpfloat backend."""
        module = lower_boost(AXPY)
        func = module.get_function("axpy")
        loops = LoopInfo(func).loops
        assert loops
        loop_blocks = loops[0].blocks
        in_loop = [getattr(i.callee, "name", "")
                   for b in loop_blocks for i in b.instructions
                   if isinstance(i, CallInst)]
        assert "mpfr_init2" in in_loop
        assert "mpfr_clear" in in_loop

    def test_no_specialized_entry_points(self):
        source = """
        void f(int n, double d, vpfloat<mpfr, 16, 128> *X) {
          for (int i = 0; i < n; i++) X[i] = X[i] * d;
        }
        """
        module = lower_boost(source)
        names = {getattr(i.callee, "name", "")
                 for i in module.get_function("f").instructions()
                 if isinstance(i, CallInst)}
        assert "mpfr_mul_d" not in names
        assert "mpfr_set_d" in names  # explicit conversion temporary

    def test_runtime_traffic_exceeds_vpfloat(self):
        program_fast = compile_source(AXPY + DRIVER, backend="mpfr")
        program_slow = compile_source(AXPY + DRIVER, backend="boost")
        fast = program_fast.run("drive", [16])
        slow = program_slow.run("drive", [16])
        assert slow.value == fast.value
        assert slow.report.mpfr_calls > fast.report.mpfr_calls
        assert slow.report.heap_allocations > fast.report.heap_allocations
        assert slow.report.cycles > fast.report.cycles

    def test_lifetimes_balance(self):
        program = compile_source(AXPY + DRIVER, backend="boost")
        interp = program.interpreter(cache=False)
        interp.run("drive", [16])
        stats = interp.mpfr.stats
        # Statement temporaries balance exactly; named values hoisted to
        # the entry may keep function-exit clears.
        assert stats.clears <= stats.inits
        assert stats.inits - stats.clears <= 4


DRIVER = """
double drive(int n) {
  vpfloat<mpfr, 16, 256> X[32];
  vpfloat<mpfr, 16, 256> Y[32];
  vpfloat<mpfr, 16, 256> a = 2.0;
  for (int i = 0; i < n; i++) { X[i] = i; Y[i] = 1.0; }
  axpy(n, a, X, Y);
  double s = 0.0;
  for (int i = 0; i < n; i++) s = s + (double)Y[i];
  return s;
}
"""


class TestComparisonFairness:
    def test_boost_gets_the_same_mid_level_pipeline(self):
        """Both lowerings run after the same -O3 passes: the measured gap
        is the lowering strategy, nothing else."""
        source = AXPY + DRIVER
        module_a = generate_ir(analyze(parse(source)))
        module_b = generate_ir(analyze(parse(source)))
        build_o3_pipeline().run(module_a)
        build_o3_pipeline().run(module_b)
        # Same IR before the backends diverge.
        assert str(module_a.get_function("drive")) == \
            str(module_b.get_function("drive"))

    def test_boost_loads_alias_like_cpp_references(self):
        """Boost reads elements by reference: loads never copy."""
        module = lower_boost(AXPY)
        names = [getattr(i.callee, "name", "")
                 for i in module.get_function("axpy").instructions()
                 if isinstance(i, CallInst)]
        # The only mpfr_set in axpy is the element store (plus none for
        # loads): count must equal the store count (1 per iteration
        # pattern appears once in the IR).
        assert names.count("mpfr_set") + names.count("mpfr_swap") == 1
