"""Run-ledger tests: record shape, cross-process integrity, compare.

The ledger's contract is an append-only JSONL file that any number of
processes may share -- each record is one ``O_APPEND`` write of a whole
line, so concurrent writers never tear each other's records -- plus a
noise-aware comparator (``compare_ledgers`` / ``vpfloat-stats
compare``) that gates model metrics exactly and wall time on
median-of-k with a MAD allowance.
"""

import json
import os

import pytest

from repro.evaluation.harness import run_kernel
from repro.evaluation.parallel import GridPoint, run_grid
from repro.observability import (
    LEDGER_SCHEMA_VERSION,
    LedgerError,
    RunLedger,
    compare_ledgers,
    current_ledger,
    install_ledger,
    ledger_session,
    read_ledger,
    validate_record,
)
from repro.observability.ledger import comparison_key

MPFR = "vpfloat<mpfr, 16, 128>"


@pytest.fixture(autouse=True)
def _no_ambient_ledger(monkeypatch):
    """Tests must not inherit a ledger from the environment."""
    monkeypatch.delenv("VPFLOAT_LEDGER", raising=False)
    previous = install_ledger(None)
    yield
    install_ledger(previous)


# ----------------------------------------------------------------- #
# Record shape / writer
# ----------------------------------------------------------------- #

def test_record_shape_and_validation(tmp_path):
    path = tmp_path / "ledger.jsonl"
    ledger = RunLedger(path)
    entry = ledger.record("run", function="run", backend="mpfr",
                          engine="jit", cycles=123, instructions=45,
                          wall_seconds=0.5)
    ledger.close()
    assert entry["schema"] == LEDGER_SCHEMA_VERSION
    assert entry["host"]["pid"] == os.getpid()
    records, problems = read_ledger(path)
    assert problems == []
    assert len(records) == 1
    validate_record(records[0])
    assert records[0]["cycles"] == 123


def test_unknown_event_rejected(tmp_path):
    ledger = RunLedger(tmp_path / "ledger.jsonl")
    with pytest.raises(LedgerError):
        ledger.record("frobnicate", cycles=1)


def test_validate_record_rejects_malformed():
    with pytest.raises(LedgerError):
        validate_record([])
    with pytest.raises(LedgerError):
        validate_record({"event": "run"})  # no schema
    with pytest.raises(LedgerError):
        validate_record({"schema": LEDGER_SCHEMA_VERSION,
                         "event": "nonsense", "ts": 1.0, "host": {}})
    with pytest.raises(LedgerError):
        validate_record({"schema": LEDGER_SCHEMA_VERSION, "event": "run",
                         "ts": 1.0, "host": {}, "cycles": "many"})


def test_read_ledger_skips_torn_lines(tmp_path):
    path = tmp_path / "ledger.jsonl"
    with ledger_session(path) as ledger:
        ledger.record("run", function="f", cycles=1)
        ledger.record("run", function="g", cycles=2)
    with open(path, "a") as handle:
        handle.write('{"schema": 1, "event": "run", "truncat\n')
        handle.write("not json at all\n")
    records, problems = read_ledger(path)
    assert [r["function"] for r in records] == ["f", "g"]
    assert len(problems) == 2
    with pytest.raises(LedgerError):
        read_ledger(path, strict=True)


def test_read_missing_and_empty_files(tmp_path):
    with pytest.raises(OSError):
        read_ledger(tmp_path / "absent.jsonl")
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    records, problems = read_ledger(empty)
    assert records == [] and problems == []


def test_env_var_installs_ledger(tmp_path, monkeypatch):
    import repro.observability.ledger as mod

    path = tmp_path / "env.jsonl"
    monkeypatch.setenv("VPFLOAT_LEDGER", str(path))
    monkeypatch.setattr(mod, "_LEDGER", None)
    monkeypatch.setattr(mod, "_ENV_CHECKED", False)
    ledger = current_ledger()
    try:
        assert ledger is not None and ledger.path == str(path)
        ledger.record("run", function="f", cycles=1)
    finally:
        install_ledger(None)
    records, problems = read_ledger(path)
    assert len(records) == 1 and problems == []


def test_ledger_session_restores_previous(tmp_path):
    assert current_ledger() is None
    with ledger_session(tmp_path / "a.jsonl") as ledger:
        assert current_ledger() is ledger
    assert current_ledger() is None


# ----------------------------------------------------------------- #
# Automatic recording through the stack
# ----------------------------------------------------------------- #

def test_run_records_compile_run_eval_point(tmp_path):
    path = tmp_path / "ledger.jsonl"
    with ledger_session(path):
        outcome = run_kernel("gemm", MPFR, 4, backend="mpfr")
    records, problems = read_ledger(path)
    assert problems == []
    events = [r["event"] for r in records]
    assert events == ["compile", "run", "eval_point"]
    for record in records:
        validate_record(record)
    point = records[-1]
    assert point["kernel"] == "gemm" and point["n"] == 4
    assert point["cycles"] == outcome.report.cycles
    assert point["wall_seconds"] > 0


def test_batch_run_records_lanes(tmp_path):
    path = tmp_path / "ledger.jsonl"
    with ledger_session(path):
        run_kernel("gemm", MPFR, 4, backend="mpfr", batch=3)
    records, _ = read_ledger(path)
    batch = [r for r in records if r["event"] == "batch_run"]
    assert len(batch) == 1 and batch[0]["lanes"] == 3
    point = [r for r in records if r["event"] == "eval_point"][0]
    assert point["lanes"] == 3


def test_cross_process_grid_integrity(tmp_path):
    """run_grid with jobs=2 must leave exactly one well-formed
    eval_point record per task and no torn lines, even with two
    worker processes appending to one file."""
    path = tmp_path / "ledger.jsonl"
    points = [GridPoint.make("gemm", MPFR, n, "mpfr") for n in (4, 5)] \
        + [GridPoint.make("jacobi-1d", MPFR, n, "mpfr") for n in (8, 10)]
    with ledger_session(path):
        outcomes = run_grid(points, jobs=2,
                            cache_dir=str(tmp_path / "cache"))
    assert len(outcomes) == len(points)
    # Every line parses and validates -- no torn or interleaved writes.
    with open(path) as handle:
        for line in handle:
            validate_record(json.loads(line))
    records, problems = read_ledger(path)
    assert problems == []
    eval_points = [(r["kernel"], r["n"]) for r in records
                   if r["event"] == "eval_point"]
    assert sorted(eval_points) == sorted(
        (p.kernel, p.n) for p in points)


# ----------------------------------------------------------------- #
# Comparison / regression gating
# ----------------------------------------------------------------- #

def _bench_record(cycles, wall, n=6, kernel="gemm"):
    return {"schema": LEDGER_SCHEMA_VERSION, "event": "bench",
            "ts": 0.0, "host": {"hostname": "h", "pid": 1},
            "kernel": kernel, "ftype": MPFR, "n": n, "backend": "mpfr",
            "engine": "jit", "lanes": None, "cycles": cycles,
            "instructions": cycles // 2, "wall_seconds": wall}


def test_compare_identical_ledgers_is_clean():
    records = [_bench_record(1000, 0.01) for _ in range(3)]
    regressions, improvements, compared, skipped = compare_ledgers(
        records, records)
    assert regressions == [] and improvements == []
    assert compared > 0


def test_compare_flags_deterministic_regression():
    base = [_bench_record(1000, 0.01)]
    cand = [_bench_record(1100, 0.01)]
    regressions, _, _, _ = compare_ledgers(base, cand)
    assert any(r.metric == "cycles" for r in regressions)
    # ... and improvements are not regressions.
    _, improvements, _, _ = compare_ledgers(cand, base)
    assert any(r.metric == "cycles" for r in improvements)


def test_compare_wall_noise_tolerated_cycles_not():
    base = [_bench_record(1000, 0.010 + 0.001 * i) for i in range(5)]
    cand = [_bench_record(1000, 0.0105 + 0.001 * i) for i in range(5)]
    regressions, _, _, _ = compare_ledgers(base, cand)
    assert regressions == []  # within the MAD/floor allowance


def test_compare_gate_wall_requires_same_host():
    base = [_bench_record(1000, 0.010)]
    cand = [dict(_bench_record(1000, 0.100),
                 host={"hostname": "other", "pid": 2})]
    regressions, _, compared_auto, _ = compare_ledgers(base, cand)
    assert regressions == []  # cross-host wall deltas are not gated
    regressions, _, compared_on, _ = compare_ledgers(base, cand,
                                                     gate_wall=True)
    assert compared_on > compared_auto  # wall only examined when gated
    assert any(r.metric == "wall_seconds" for r in regressions)
    assert any(r.metric == "wall_seconds" for r in regressions)


def test_comparison_key_groups_by_configuration():
    a = _bench_record(1, 0.1, n=6)
    b = _bench_record(1, 0.1, n=8)
    assert comparison_key(a) != comparison_key(b)
    assert comparison_key(a) == comparison_key(_bench_record(2, 0.2, n=6))


def test_self_compare_of_real_bench_ledger(tmp_path):
    """vpfloat-bench --quick round-trips through compare cleanly."""
    from repro.observability.bench import main as bench_main

    path = tmp_path / "bench.jsonl"
    assert bench_main(["--quick", "--reps", "1",
                       "--ledger", str(path),
                       "--cache-dir", str(tmp_path / "cache")]) == 0
    records, problems = read_ledger(path)
    assert problems == []
    assert any(r["event"] == "bench" and r["kernel"] == "gemm"
               for r in records)
    regressions, _, compared, _ = compare_ledgers(records, records)
    assert regressions == [] and compared > 0
    # ... and through the CLI spelling with its exit codes.
    from repro.observability.stats import main as stats_main

    assert stats_main(["compare", str(path), str(path)]) == 0


def test_compare_cli_exit_codes(tmp_path):
    from repro.observability.stats import main as stats_main

    base = tmp_path / "base.jsonl"
    cand = tmp_path / "cand.jsonl"
    with open(base, "w") as handle:
        handle.write(json.dumps(_bench_record(1000, 0.01)) + "\n")
    with open(cand, "w") as handle:
        handle.write(json.dumps(_bench_record(2000, 0.01)) + "\n")
    assert stats_main(["compare", str(base), str(base)]) == 0
    assert stats_main(["compare", str(base), str(cand)]) == 3
    assert stats_main(["compare", str(base),
                       str(tmp_path / "absent.jsonl")]) == 1
