"""UNUM backend: addrcomp, isel, fpconfig, regalloc, machine execution."""

import pytest

from repro import compile_source
from repro.backends.unum_backend import (
    UnumAddressComputationPass,
    compile_to_unum,
)
from repro.bigfloat import BigFloat
from repro.codegen import generate_ir
from repro.lang import analyze, parse
from repro.passes import build_o3_pipeline
from repro.unum import UnumConfig, decode, encode
from repro.runtime.unum_machine import UnumMachine, UnumMachineError


def compile_unum(source, **kwargs):
    return compile_source(source, backend="unum", **kwargs)


def seed_array(machine, config, values, prec=520):
    base = machine.memory.alloc_heap(len(values) * config.size_bytes)
    for i, v in enumerate(values):
        bits = encode(BigFloat.from_value(v, prec), config)
        machine.memory.store_bytes(base + i * config.size_bytes,
                                   bits.to_bytes(config.size_bytes,
                                                 "little"))
    return base


def read_array(machine, config, base, count):
    out = []
    for i in range(count):
        raw = machine.memory.load_bytes(base + i * config.size_bytes,
                                        config.size_bytes)
        out.append(float(decode(int.from_bytes(raw, "little"), config)))
    return out


class TestAddressComputation:
    def test_dynamic_gep_rewritten(self):
        source = """
        void f(unsigned fss, int n, vpfloat<unum, 4, fss> *X) {
          for (int i = 0; i < n; i++) X[i] = 1.0;
        }
        """
        module = generate_ir(analyze(parse(source)))
        build_o3_pipeline(enable_loop_idiom=False).run(module)
        changed = UnumAddressComputationPass().run(
            module.get_function("f"))
        assert changed >= 1
        f = module.get_function("f")
        from repro.ir import CallInst, GEPInst

        # No GEPs over dynamic unum pointers remain.
        for inst in f.instructions():
            if isinstance(inst, GEPInst):
                pointee = inst.pointer.type.pointee
                assert not (pointee.is_vpfloat and not pointee.is_static)
        names = [getattr(i.callee, "name", "") for i in f.instructions()
                 if isinstance(i, CallInst)]
        assert "__sizeof_vpfloat" in names

    def test_static_gep_untouched(self):
        source = """
        void f(int n, vpfloat<unum, 4, 8> *X) {
          for (int i = 0; i < n; i++) X[i] = 1.0;
        }
        """
        module = generate_ir(analyze(parse(source)))
        build_o3_pipeline(enable_loop_idiom=False).run(module)
        assert UnumAddressComputationPass().run(
            module.get_function("f")) == 0


class TestFPConfig:
    def test_single_config_hoisted_to_entry(self):
        source = """
        void f(int n, vpfloat<unum, 3, 6> *X, vpfloat<unum, 3, 6> *Y) {
          for (int i = 0; i < n; i++) Y[i] = X[i] + Y[i];
        }
        """
        program = compile_unum(source)
        asm = program.asm.functions["f"]
        entry_ops = [i.opcode for i in asm.blocks[0].instructions]
        assert "sucfg.ess" in entry_ops
        assert "sucfg.fss" in entry_ops
        assert "sucfg.wgp" in entry_ops
        # Config must not repeat inside the loop blocks.
        for block in asm.blocks[1:]:
            assert not any(i.opcode.startswith("sucfg")
                           for i in block.instructions)

    def test_two_types_reconfigure(self):
        source = """
        void f(int n, vpfloat<unum, 3, 6> *X, vpfloat<unum, 4, 8> *Y) {
          for (int i = 0; i < n; i++) X[i] = 1.0;
          for (int i = 0; i < n; i++) Y[i] = 2.0;
        }
        """
        program = compile_unum(source)
        asm = program.asm.functions["f"]
        count = sum(1 for i in asm.instructions()
                    if i.opcode == "sucfg.fss")
        assert count >= 2  # at least one per configuration


class TestExecution:
    def test_axpy_static(self):
        source = """
        void axpy(int n, vpfloat<unum, 4, 8> a,
                  vpfloat<unum, 4, 8> *X, vpfloat<unum, 4, 8> *Y) {
          for (int i = 0; i < n; i++)
            Y[i] = a * X[i] + Y[i];
        }
        """
        program = compile_unum(source)
        machine = program.machine()
        config = UnumConfig(4, 8)
        xs = seed_array(machine, config, list(range(10)))
        ys = seed_array(machine, config, [1.0] * 10)
        machine.run("axpy", [10, BigFloat.from_float(2.5, 300), xs, ys])
        assert read_array(machine, config, ys, 10) == \
            [1.0 + 2.5 * i for i in range(10)]

    def test_dot_with_reduction(self):
        source = """
        vpfloat<unum, 4, 8> dot(int n, vpfloat<unum, 4, 8> *X,
                                vpfloat<unum, 4, 8> *Y) {
          vpfloat<unum, 4, 8> s = 0.0;
          for (int i = 0; i < n; i++)
            s = s + X[i] * Y[i];
          return s;
        }
        """
        program = compile_unum(source)
        machine = program.machine()
        config = UnumConfig(4, 8)
        xs = seed_array(machine, config, [1.0, 2.0, 3.0, 4.0])
        ys = seed_array(machine, config, [2.0] * 4)
        result = machine.run("dot", [4, xs, ys])
        assert result.to_float() == 20.0

    def test_sqrt_and_compare(self):
        source = """
        double f(double x) {
          vpfloat<unum, 4, 8> v = x;
          vpfloat<unum, 4, 8> r = vp_sqrt(v);
          if (r > (vpfloat<unum, 4, 8>)1.0) return (double)r;
          return 0.0 - (double)r;
        }
        """
        program = compile_unum(source)
        assert program.machine().run("f", [4.0]) == 2.0
        assert program.machine().run("f", [0.25]) == -0.5

    def test_mbb_truncation_affects_precision(self):
        """The size-info attribute truncates the stored mantissa."""
        source = """
        double roundtrip(double x) {
          FTYPE a = x;
          FTYPE b[1];
          b[0] = a;
          return (double)b[0];
        }
        """
        wide = compile_unum(source.replace("FTYPE", "vpfloat<unum, 3, 6>"))
        narrow = compile_unum(
            source.replace("FTYPE", "vpfloat<unum, 3, 6, 4>"))
        x = 1.0 + 2.0**-20  # needs > 13 mantissa bits
        assert wide.machine().run("roundtrip", [x]) == x
        got = narrow.machine().run("roundtrip", [x])
        assert got != x  # truncated to the 13 fraction bits of 4 bytes

    def test_dynamic_precision_kernel(self):
        source = """
        void scale(unsigned fss, int n, vpfloat<unum, 4, fss> *X) {
          for (int i = 0; i < n; i++)
            X[i] = X[i] * 2.0;
        }
        """
        program = compile_unum(source)
        for fss in (6, 8):
            machine = program.machine()
            config = UnumConfig(4, fss)
            base = seed_array(machine, config, [1.5, 2.5, 3.5])
            machine.run("scale", [fss, 3, base])
            assert read_array(machine, config, base, 3) == [3.0, 5.0, 7.0]

    def test_attribute_check_traps_on_machine(self):
        source = """
        void use(unsigned fss, vpfloat<unum, 4, fss> *X) {}
        void driver(unsigned fss) {
          vpfloat<unum, 4, fss> X[2];
          unsigned other = fss + 1;
          use(other, X);
        }
        """
        program = compile_unum(source)
        with pytest.raises(UnumMachineError, match="attribute mismatch"):
            program.machine().run("driver", [6])

    def test_coprocessor_cycles_accrue(self):
        source = """
        void f(int n, vpfloat<unum, 4, 9> *X) {
          for (int i = 0; i < n; i++) X[i] = X[i] * X[i];
        }
        """
        program = compile_unum(source)
        machine = program.machine()
        config = UnumConfig(4, 9)
        base = seed_array(machine, config, [1.0] * 8)
        machine.run("f", [8, base])
        assert machine.coprocessor.cycles > 0
        assert machine.coprocessor.stats.by_opcode.get("gmul") == 8
        assert machine.coprocessor.stats.loads == 8
        assert machine.coprocessor.stats.stores == 8


class TestRegisterPressure:
    def test_spilling_many_live_values(self):
        """More than 32 simultaneously-live integers forces spills."""
        decls = "\n".join(f"  int v{i} = n + {i};" for i in range(40))
        uses = " + ".join(f"v{i}" for i in range(40))
        source = f"""
        int f(int n) {{
        {decls}
          return {uses};
        }}
        """
        program = compile_source(source, backend="unum",
                                 enable_unroll=False)
        result = program.machine().run("f", [100])
        assert result == sum(100 + i for i in range(40))
        asm = program.asm.functions["f"]
        opcodes = [i.opcode for i in asm.instructions()]
        assert "sdspill" in opcodes or "ldspill" in opcodes
