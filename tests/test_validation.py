"""Translation validation: certificates, harness, fuzzer, minimizer.

The acceptance bar for the validation subsystem: ``--validate`` runs on
real kernels produce passing certificates and leave the primary run
bit-identical; the fuzzer's differential agrees across every
engine/optimization configuration; a seeded miscompile shrinks to a
tiny deterministic reproducer that persists and replays.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bigfloat import RNDN, RNDZ, BigFloat, arith
from repro.evaluation.harness import run_kernel
from repro.observability import telemetry_session
from repro.validation import (
    Certificate,
    CertificateError,
    FuzzOp,
    FuzzProgram,
    Mismatch,
    compare_reports,
    cross_check,
    finish_certificate,
    fuzz_programs,
    generate_program,
    load_reproducer,
    make_check,
    minimize,
    replay,
    save_reproducer,
    validate_engines,
    validate_passes,
    value_token,
)
from repro.validation.fuzzer import REFERENCE_KERNELS, eval_reference

SOURCE = """
double f(int n) {
  vpfloat<mpfr, 16, 96> acc = 0.25;
  vpfloat<mpfr, 16, 96> step = 1.5;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc * step + 0.125;
  }
  return acc;
}
"""


# ----------------------------------------------------------------- #
# Certificate primitives
# ----------------------------------------------------------------- #

class TestValueToken:
    def test_bigfloat_bit_identity(self):
        a = BigFloat.from_float(1.5, 64)
        b = BigFloat.from_float(1.5, 64)
        assert value_token(a) == value_token(b)
        assert value_token(a) != value_token(BigFloat.from_float(1.5, 65))

    def test_signed_zero_distinct(self):
        assert value_token(BigFloat.zero(53, 0)) != \
            value_token(BigFloat.zero(53, 1))
        assert value_token(0.0) != value_token(-0.0)

    def test_nan_equals_nan(self):
        assert value_token(BigFloat.nan(53)) == \
            value_token(BigFloat.nan(53))
        assert value_token(float("nan")) == value_token(float("nan"))

    def test_float_vs_bigfloat_distinct(self):
        assert value_token(1.5) != value_token(BigFloat.from_float(1.5, 53))


class TestCompareReports:
    REF = {"cycles": 100, "instructions": 40, "mpfr_calls": 10,
           "mpfr_allocations": 2, "heap_allocations": 2, "llc_misses": 1,
           "dram_bytes": 64, "parallel_cycles": 0,
           "by_category": {"arith": 90}}

    def test_exact_catches_any_field(self):
        candidate = dict(self.REF)
        candidate["cycles"] = 101
        assert compare_reports(self.REF, self.REF, "exact") is None
        assert compare_reports(self.REF, candidate, "exact") is not None

    def test_traffic_ignores_cycles_but_not_calls(self):
        candidate = dict(self.REF, cycles=9999, parallel_cycles=5)
        assert compare_reports(self.REF, candidate, "traffic") is None
        candidate = dict(self.REF, mpfr_calls=11)
        assert compare_reports(self.REF, candidate, "traffic") is not None

    def test_sane_only_wants_positive_work(self):
        assert compare_reports(self.REF, dict(self.REF, cycles=5,
                                              instructions=1),
                               "sane") is None
        assert compare_reports(self.REF, dict(self.REF, cycles=0),
                               "sane") is not None

    def test_unknown_strictness_rejected(self):
        with pytest.raises(ValueError):
            compare_reports(self.REF, self.REF, "fuzzy")


class TestCertificateObject:
    def _cert(self, passed: bool) -> Certificate:
        check = make_check("engine.fast", "exact", (1,),
                           (1,) if passed else (2,),
                           TestCompareReports.REF, TestCompareReports.REF)
        return Certificate(kind="engines", subject="t",
                           reference="engine.jit", checks=[check],
                           witness={})

    def test_render_mentions_outcome(self):
        assert "PASS" in self._cert(True).render()
        assert "FAIL" in self._cert(False).render()

    def test_round_trips_through_dict(self):
        cert = self._cert(True)
        again = Certificate.from_dict(json.loads(
            json.dumps(cert.to_dict())))
        assert again.passed and again.subject == cert.subject
        assert len(again.checks) == len(cert.checks)

    def test_strict_failure_raises(self):
        with pytest.raises(CertificateError):
            finish_certificate(self._cert(False), strict=True)
        assert finish_certificate(self._cert(False), strict=False) \
            .passed is False


# ----------------------------------------------------------------- #
# Harness: engine + pass certificates on real sources
# ----------------------------------------------------------------- #

class TestValidateHarness:
    def test_engines_certificate_passes(self):
        cert = validate_engines(SOURCE, "f", (12,), backend="mpfr",
                                cache=None, strict=True)
        assert cert.passed
        labels = {check.label for check in cert.checks}
        # jit is the mpfr reference; the others plus the pool toggle.
        assert {"engine.fast", "engine.unfused", "engine.legacy",
                "pool.off"} <= labels

    def test_passes_certificate_passes(self):
        cert = validate_passes(SOURCE, "f", (12,), backend="mpfr",
                               cache=None, strict=True)
        assert cert.passed
        labels = {check.label for check in cert.checks}
        assert "opt.O0" in labels

    def test_unum_rejected(self):
        with pytest.raises(ValueError):
            validate_engines(SOURCE, "f", (4,), backend="unum",
                             cache=None)

    def test_counters_emitted(self):
        with telemetry_session(metrics=True) as (_tracer, registry):
            validate_engines(SOURCE, "f", (4,), backend="mpfr",
                             cache=None, strict=True)
            counters = registry.to_dict()["counters"]
        assert counters.get("validate.certificates") == 1
        assert counters.get("validate.passed") == 1
        assert not counters.get("validate.failed")


class TestRunKernelValidate:
    FTYPE = "vpfloat<mpfr, 16, 128>"

    @pytest.mark.parametrize("kernel,n", [("gemm", 5), ("jacobi-1d", 8)])
    @pytest.mark.parametrize("engine", ["jit", "fast", "unfused",
                                        "legacy"])
    def test_certificate_passes_and_primary_untouched(self, kernel, n,
                                                      engine):
        plain = run_kernel(kernel, self.FTYPE, n, backend="mpfr",
                           engine=engine, compile_cache=None)
        checked = run_kernel(kernel, self.FTYPE, n, backend="mpfr",
                             engine=engine, compile_cache=None,
                             validate=True)
        assert checked.certificate is not None
        assert checked.certificate.passed
        # The primary observation is bit-identical to a plain run.
        assert value_token(checked.value) == value_token(plain.value)
        assert [value_token(v) for v in checked.outputs] == \
            [value_token(v) for v in plain.outputs]
        assert checked.report.cycles == plain.report.cycles
        assert checked.report.instructions == plain.report.instructions
        assert checked.report.mpfr_calls == plain.report.mpfr_calls

    def test_validate_off_attaches_nothing(self):
        outcome = run_kernel("gemm", self.FTYPE, 4, backend="mpfr",
                             compile_cache=None)
        assert outcome.certificate is None


# ----------------------------------------------------------------- #
# Fuzzer
# ----------------------------------------------------------------- #

class TestFuzzer:
    def test_generation_is_deterministic(self):
        import random

        a = generate_program(random.Random(7))
        b = generate_program(random.Random(7))
        assert a == b and a.digest() == b.digest()

    def test_renders_compilable_source(self):
        import random

        from repro.core import compile_source

        program = generate_program(random.Random(1))
        compiled = compile_source(program.render_source(), backend="mpfr")
        compiled.run("f", [], cache=False)

    def test_random_programs_cross_check_clean(self):
        import random

        for seed in (0, 1, 2):
            program = generate_program(random.Random(seed), max_ops=8)
            mismatch = cross_check(program, engines=(seed == 0))
            assert mismatch is None, mismatch.describe()

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(fuzz_programs(max_ops=6))
    def test_rounding_differential_property(self, program):
        from repro.validation import cross_check_rounding

        mismatch = cross_check_rounding(program)
        assert mismatch is None, mismatch.describe()

    def test_json_round_trip(self):
        import random

        program = generate_program(random.Random(5))
        again = FuzzProgram.from_json(json.loads(
            json.dumps(program.to_json())))
        assert again == program


# ----------------------------------------------------------------- #
# Minimizer: a seeded miscompile shrinks to a tiny reproducer
# ----------------------------------------------------------------- #

def _broken_kernels():
    """A deliberately miscompiled ``mul``: nearest rounding silently
    degrades to truncation (a classic one-ulp bug)."""
    kernels = dict(REFERENCE_KERNELS)

    def bad_mul(a, b, prec, rm):
        return arith.mul(a, b, prec, RNDZ if rm is RNDN else rm)

    kernels["mul"] = bad_mul
    return kernels


def _miscompiled(program: FuzzProgram) -> bool:
    broken = value_token(eval_reference(program, RNDN,
                                        kernels=_broken_kernels()))
    good = value_token(eval_reference(program, RNDN))
    return broken != good


SEEDED = FuzzProgram(prec=64, ops=(
    FuzzOp("lit", ("1.1",)),
    FuzzOp("lit", ("1.7",)),
    FuzzOp("lit", ("2.0",)),
    FuzzOp("add", (0, 2)),
    FuzzOp("neg", (3,)),
    FuzzOp("mul", (0, 1)),      # 1.1 * 1.7 rounds up under RNDN at 64b
    FuzzOp("abs", (5,)),
    FuzzOp("lit", ("0.0",)),
    FuzzOp("add", (6, 7)),
    FuzzOp("loop", (2, 8, 2, 7)),
))


class TestMinimizer:
    def test_seeded_miscompile_shrinks_small_and_deterministic(self):
        assert _miscompiled(SEEDED)
        first = minimize(SEEDED, _miscompiled)
        second = minimize(SEEDED, _miscompiled)
        assert first == second  # deterministic replay
        assert len(first) <= 5
        assert _miscompiled(first)

    def test_healthy_program_rejected(self):
        healthy = FuzzProgram(prec=64, ops=(FuzzOp("lit", ("1.5",)),))
        with pytest.raises(ValueError):
            minimize(healthy, _miscompiled)

    def test_counters_emitted(self):
        with telemetry_session(metrics=True) as (_tracer, registry):
            minimize(SEEDED, _miscompiled)
            counters = registry.to_dict()["counters"]
        assert counters.get("validate.minimize.runs") == 1
        assert counters.get("validate.minimize.evaluations", 0) > 0


# ----------------------------------------------------------------- #
# Corpus persistence + replay
# ----------------------------------------------------------------- #

class TestCorpus:
    def test_save_load_round_trip(self, tmp_path):
        program = minimize(SEEDED, _miscompiled)
        mismatch = Mismatch("rounding", "mpfr_api", "arith",
                            "expected-token", "got-token",
                            rounding="RNDN")
        path = save_reproducer(program, mismatch, str(tmp_path))
        loaded, info = load_reproducer(path)
        assert loaded == program
        assert info["label"] == "mpfr_api"
        assert program.digest() in path

    def test_replay_of_healthy_reproducer_passes(self, tmp_path):
        # The arithmetic itself is sound, so replaying any saved
        # program against the real kernels finds no divergence.
        program = FuzzProgram(prec=64, ops=(
            FuzzOp("lit", ("1.25",)), FuzzOp("lit", ("3.0",)),
            FuzzOp("div", (0, 1))))
        mismatch = Mismatch("rounding", "x", "arith", "a", "b")
        path = save_reproducer(program, mismatch, str(tmp_path))
        assert replay(path) is None

    def test_corpus_dir_env_override(self, tmp_path, monkeypatch):
        from repro.validation import corpus_dir

        monkeypatch.setenv("VPFLOAT_FUZZ_CORPUS", str(tmp_path / "c"))
        assert corpus_dir() == str(tmp_path / "c")


# ----------------------------------------------------------------- #
# CLI entry points
# ----------------------------------------------------------------- #

class TestCli:
    def test_vpfloat_cc_validate_exits_zero(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "k.c"
        source.write_text(SOURCE)
        status = main([str(source), "--backend", "mpfr", "--run", "f",
                       "--args", "6", "--validate",
                       "--no-compile-cache"])
        captured = capsys.readouterr()
        assert status == 0
        assert "PASS" in captured.out

    def test_fuzz_module_bounded_run(self, tmp_path, capsys):
        from repro.validation.__main__ import main

        status = main(["fuzz", "--budget", "2", "--seed", "0",
                       "--max-ops", "6", "--no-engines",
                       "--corpus-dir", str(tmp_path)])
        assert status == 0

    def test_stats_renders_validation_summary(self, capsys):
        from repro.observability.stats import render_validation_summary

        text = render_validation_summary({"counters": {
            "validate.certificates": 2, "validate.passed": 2,
            "validate.failed": 0,
            "validate.check.engine.fast.passed": 2,
            "validate.fuzz.programs": 3}})
        assert "2 certificate(s)" in text
        assert "engine.fast" in text
        assert render_validation_summary({"counters": {}}) == ""
