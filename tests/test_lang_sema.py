"""Semantic analysis: the paper's typing rules (§III-A)."""

import pytest

from repro.lang import SemanticError, analyze, parse
from repro.lang.ctypes import VPFloatT


def check(source):
    return analyze(parse(source))


def expect_error(source, pattern):
    with pytest.raises(SemanticError, match=pattern):
        check(source)


class TestAttributeRules:
    def test_attr_must_be_in_scope(self):
        expect_error(
            "void f(vpfloat<mpfr, 16, prec> x) {}",
            "does not name an in-scope integer",
        )

    def test_attr_must_precede_parameter(self):
        """Paper: a parameter's attributes reference *previously declared*
        parameters."""
        expect_error(
            "void f(vpfloat<mpfr, 16, prec> x, unsigned prec) {}",
            "does not name an in-scope integer",
        )

    def test_return_type_may_use_any_parameter(self):
        """Paper Listing 3: example_dyn_type_return is legal."""
        check("""
        vpfloat<mpfr, 16, prec> make(unsigned prec) {
          vpfloat<mpfr, 16, prec> a = 1.3y;
          return a;
        }
        """)

    def test_return_type_unknown_attr_rejected(self):
        """Paper Listing 3: example_dyn_type_return_error is caught."""
        expect_error("""
        vpfloat<mpfr, 16, prec> make(unsigned p) {
          vpfloat<mpfr, 16, p> a = 1.3y;
          return a;
        }
        """, "does not name an in-scope integer")

    def test_attr_must_be_integer(self):
        expect_error(
            "void f(double prec, vpfloat<mpfr, 16, prec> x) {}",
            "must have integer type",
        )

    def test_local_attr_from_local_variable(self):
        check("""
        void f() {
          int p = 100;
          vpfloat<mpfr, 16, p> x = 0.0;
        }
        """)

    def test_constant_attr_range_checked(self):
        expect_error("void f(vpfloat<unum, 7, 5> x) {}", "ess must be in")
        expect_error("void f(vpfloat<unum, 4, 12> x) {}", "fss must be in")
        expect_error("void f(vpfloat<unum, 4, 9, 70> x) {}",
                     "size must be in")
        expect_error("void f(vpfloat<mpfr, 32, 128> x) {}",
                     "exponent width")
        expect_error("void f(vpfloat<mpfr, 16, 1> x) {}", "precision")

    def test_dynamic_vpfloat_global_rejected(self):
        """VLA rule: dynamically-sized types are locals/parameters only."""
        expect_error(
            "int p = 100; vpfloat<mpfr, 16, p> g;",
            "only be declared as local variables",
        )


class TestTypeEquality:
    def test_mixed_vpfloat_arithmetic_rejected(self):
        """No implicit conversions between distinct vpfloat types."""
        expect_error("""
        void f(vpfloat<mpfr, 16, 100> a, vpfloat<mpfr, 16, 200> b) {
          a = a + b;
        }
        """, "different vpfloat types")

    def test_explicit_cast_heals_it(self):
        check("""
        void f(vpfloat<mpfr, 16, 100> a, vpfloat<mpfr, 16, 200> b) {
          a = a + (vpfloat<mpfr, 16, 100>)b;
        }
        """)

    def test_plain_assignment_converts(self):
        """Assignment is the one implicit conversion (paper §III-A3)."""
        check("""
        void f(vpfloat<mpfr, 16, 100> a, vpfloat<mpfr, 16, 200> b,
               double d) {
          a = b;
          d = a;
          b = d;
        }
        """)

    def test_primitive_mixing_allowed(self):
        """Listing 2 multiplies double elements by vpfloat values."""
        check("""
        void f(int n, double *A, vpfloat<mpfr, 16, 100> *X) {
          for (int i = 0; i < n; i++)
            X[i] = A[i] * X[i] + 1.0;
        }
        """)

    def test_unum_and_mpfr_never_mix(self):
        expect_error("""
        void f(vpfloat<mpfr, 16, 100> a, vpfloat<unum, 4, 7> b) {
          a = a + b;
        }
        """, "different vpfloat types")


class TestCallChecking:
    HEADER = """
    void vaxpy(unsigned p, int n, vpfloat<mpfr,16,p> a,
               vpfloat<mpfr,16,p> *X) {}
    """

    def test_constant_mismatch_compile_error(self):
        """Paper Listing 3 line 10."""
        expect_error(self.HEADER + """
        void caller() {
          vpfloat<mpfr,16,200> a;
          vpfloat<mpfr,16,200> X[4];
          vaxpy(100, 4, a, X);
        }
        """, "compile-time mismatch")

    def test_matching_constant_ok(self):
        check(self.HEADER + """
        void caller() {
          vpfloat<mpfr,16,200> a;
          vpfloat<mpfr,16,200> X[4];
          vaxpy(200, 4, a, X);
        }
        """)

    def test_dynamic_binding_generates_runtime_checks(self):
        unit = check(self.HEADER + """
        void caller(unsigned p) {
          vpfloat<mpfr,16,p> a;
          vpfloat<mpfr,16,p> X[4];
          vaxpy(p, 4, a, X);
        }
        """)
        caller = unit.functions()[1]
        call = caller.body.statements[2].expr
        assert getattr(call, "runtime_attr_checks", [])

    def test_format_mismatch_rejected(self):
        expect_error(self.HEADER + """
        void caller() {
          vpfloat<unum,4,7> a;
          vpfloat<unum,4,7> X[4];
          vaxpy(200, 4, a, X);
        }
        """, "expects format")

    def test_arity_mismatch(self):
        expect_error(self.HEADER + "void g() { vaxpy(1, 2); }",
                     "expected 4 arguments")

    def test_unknown_function(self):
        expect_error("void f() { mystery(1); }", "undeclared function")

    def test_dependent_return_type_substitution(self):
        unit = check("""
        vpfloat<mpfr, 16, prec> one(unsigned prec) {
          vpfloat<mpfr, 16, prec> a = 1.0;
          return a;
        }
        void caller() {
          vpfloat<mpfr, 16, 300> x;
          x = one(300);
        }
        """)
        caller = unit.functions()[1]
        call = caller.body.statements[1].expr.value
        assert isinstance(call.ctype, VPFloatT)
        # The dependent return type resolved to the literal binding.
        from repro.lang.ctypes import AttrConst

        assert call.ctype.prec == AttrConst(300)


class TestGeneralChecks:
    def test_undeclared_identifier(self):
        expect_error("void f() { x = 1; }", "undeclared identifier")

    def test_redeclaration(self):
        expect_error("void f() { int x; int x; }", "redeclaration")

    def test_break_outside_loop(self):
        expect_error("void f() { break; }", "outside of a loop")

    def test_return_type_checked(self):
        expect_error("int f() { return; }", "must return a value")
        expect_error("void f() { return 1; }", "cannot return a value")

    def test_subscript_non_pointer(self):
        expect_error("void f(int x) { x[0] = 1; }", "subscripted value")

    def test_vla_extent_must_be_integer(self):
        expect_error("void f(double d) { int A[d]; }",
                     "must be an integer")

    def test_assign_to_rvalue(self):
        expect_error("void f(int a, int b) { (a + b) = 1; }",
                     "not assignable")

    def test_redefinition_of_function(self):
        expect_error("void f() {} void f() {}", "redefinition")

    def test_decl_then_definition_merges(self):
        check("void f(int x); void f(int x) {}")
