"""Unit tests for BigFloat construction, classification and comparison."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bigfloat import RNDD, RNDU, BigFloat, Kind


finite_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=False,
    min_value=-1e300, max_value=1e300,
)


class TestConstruction:
    def test_zero_signs(self):
        assert BigFloat.zero(10).sign == 0
        assert BigFloat.zero(10, sign=1).is_negative()
        assert BigFloat.zero(10).is_zero()

    def test_from_int_exact(self):
        x = BigFloat.from_int(42, 53)
        assert x.to_int() == 42
        assert x.to_float() == 42.0

    def test_from_int_negative(self):
        x = BigFloat.from_int(-7, 53)
        assert x.sign == 1
        assert x.to_int() == -7

    def test_from_int_rounds_when_wide(self):
        # 2**60 + 1 cannot fit in 10 bits.
        x = BigFloat.from_int((1 << 60) + 1, 10)
        assert x.to_int() == 1 << 60

    def test_from_float_special(self):
        assert BigFloat.from_float(math.nan).is_nan()
        assert BigFloat.from_float(math.inf).is_inf()
        assert BigFloat.from_float(-math.inf).sign == 1
        assert BigFloat.from_float(-0.0).is_zero()
        assert BigFloat.from_float(-0.0).sign == 1

    def test_from_fraction(self):
        third = BigFloat.from_fraction(1, 3, 100)
        assert abs(third.to_float() - 1 / 3) < 1e-16

    def test_from_fraction_zero_denominator(self):
        with pytest.raises(ZeroDivisionError):
            BigFloat.from_fraction(1, 0)

    def test_from_value_rejects_bool(self):
        with pytest.raises(TypeError):
            BigFloat.from_value(True)

    def test_immutable(self):
        x = BigFloat.from_int(1)
        with pytest.raises(AttributeError):
            x.mant = 5

    def test_invalid_precision(self):
        with pytest.raises(ValueError):
            BigFloat.zero(0)

    def test_unnormalized_rejected(self):
        with pytest.raises(ValueError):
            BigFloat(Kind.FINITE, 0, 0b101, 0, 4)


class TestRoundTo:
    def test_narrowing(self):
        x = BigFloat.from_int((1 << 20) + 1, 30)
        y = x.round_to(10)
        assert y.prec == 10
        assert y.to_int() == 1 << 20

    def test_widening_is_exact(self):
        x = BigFloat.from_float(1.5, 53)
        y = x.round_to(200)
        assert y.to_float() == 1.5

    def test_directed_round_to(self):
        x = BigFloat.from_fraction(1, 3, 100)
        lo = x.round_to(20, RNDD)
        hi = x.round_to(20, RNDU)
        assert lo < x < hi


class TestComparison:
    def test_basic_order(self):
        one = BigFloat.from_int(1)
        two = BigFloat.from_int(2)
        assert one < two
        assert two > one
        assert one <= one
        assert one == one.round_to(100)

    def test_mixed_precision_equality(self):
        a = BigFloat.from_float(0.5, 24)
        b = BigFloat.from_float(0.5, 200)
        assert a == b
        assert a.compare(b) == 0

    def test_signed_zero_equality(self):
        assert BigFloat.zero(10) == BigFloat.zero(10, sign=1)

    def test_nan_unordered(self):
        nan = BigFloat.nan()
        one = BigFloat.from_int(1)
        assert not (nan == nan)
        assert not (nan < one)
        assert not (nan >= one)
        with pytest.raises(ValueError):
            nan.compare(one)

    def test_infinities(self):
        pinf = BigFloat.inf()
        ninf = BigFloat.inf(sign=1)
        x = BigFloat.from_int(10**50, 200)
        assert ninf < x < pinf
        assert pinf == BigFloat.inf(100)

    def test_negative_ordering(self):
        a = BigFloat.from_int(-5)
        b = BigFloat.from_int(-2)
        assert a < b

    def test_zero_vs_negative(self):
        assert BigFloat.from_int(-1) < BigFloat.zero()
        assert BigFloat.zero() < BigFloat.from_int(1)


class TestConversionsOut:
    def test_to_int_truncates(self):
        assert BigFloat.from_float(2.9).to_int() == 2
        assert BigFloat.from_float(-2.9).to_int() == -2

    def test_to_int_errors(self):
        with pytest.raises(OverflowError):
            BigFloat.inf().to_int()
        with pytest.raises(ValueError):
            BigFloat.nan().to_int()

    def test_to_float_special(self):
        assert math.isnan(BigFloat.nan().to_float())
        assert BigFloat.inf().to_float() == math.inf
        assert math.copysign(1.0, BigFloat.zero(10, 1).to_float()) == -1.0

    def test_exponent(self):
        assert BigFloat.from_int(1).exponent() == 1  # 1 in [2**0, 2**1)
        assert BigFloat.from_int(4).exponent() == 3
        assert BigFloat.from_float(0.5).exponent() == 0

    def test_exponent_of_zero_raises(self):
        with pytest.raises(ValueError):
            BigFloat.zero().exponent()


class TestSignOps:
    def test_neg(self):
        x = BigFloat.from_int(3)
        assert (-x).to_int() == -3
        assert (-(-x)) == x

    def test_abs(self):
        assert abs(BigFloat.from_int(-3)).to_int() == 3

    def test_neg_nan_stays_nan(self):
        assert (-BigFloat.nan()).is_nan()

    def test_copysign(self):
        x = BigFloat.from_int(3)
        y = BigFloat.from_int(-1)
        assert x.copysign(y).to_int() == -3


class TestOperators:
    def test_operator_sugar(self):
        a = BigFloat.from_int(3, 100)
        b = BigFloat.from_int(4, 100)
        assert (a + b).to_int() == 7
        assert (a - b).to_int() == -1
        assert (a * b).to_int() == 12
        assert float(a / b) == 0.75

    def test_scalar_mixing(self):
        a = BigFloat.from_int(3, 100)
        assert (a + 1).to_int() == 4
        assert (1 + a).to_int() == 4
        assert (a - 1).to_int() == 2
        assert (1 - a).to_int() == -2
        assert (2 * a).to_int() == 6
        assert float(1 / a) == float(BigFloat.from_fraction(1, 3, 100))


@given(finite_floats)
def test_float_round_trip(x):
    assert BigFloat.from_float(x, 53).to_float() == x


@given(st.integers(min_value=-(10**30), max_value=10**30))
def test_int_round_trip_at_sufficient_precision(n):
    assert BigFloat.from_int(n, 120).to_int() == n


@given(finite_floats, finite_floats)
def test_comparison_matches_float(x, y):
    a, b = BigFloat.from_float(x), BigFloat.from_float(y)
    assert (a < b) == (x < y)
    assert (a == b) == (x == y)
    assert (a > b) == (x > y)
