"""Parallel sharded evaluation engine: determinism, equivalence, CLI."""

import pytest

from repro.evaluation import parallel
from repro.evaluation.parallel import (
    EvaluationTaskError,
    GridPoint,
    parallel_map,
    run_grid,
    shard_tasks,
)


class TestSharding:
    def test_round_robin_assignment(self):
        assert shard_tasks(7, 3) == [[0, 3, 6], [1, 4], [2, 5]]

    def test_deterministic(self):
        assert shard_tasks(100, 8) == shard_tasks(100, 8)

    def test_fewer_tasks_than_jobs(self):
        assert shard_tasks(2, 16) == [[0], [1]]

    def test_empty_and_invalid(self):
        assert shard_tasks(0, 4) == []
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            shard_tasks(4, 0)

    def test_grouped_keeps_a_key_on_one_shard(self):
        shards = shard_tasks(6, 2, groups=["a", "b", "a", "c", "b", "c"])
        assert shards == [[0, 2, 3, 5], [1, 4]]
        groups = ["a", "b", "a", "c", "b", "c"]
        for shard in shards:
            keys = {groups[i] for i in shard}
            for other in shards:
                if other is not shard:
                    assert keys.isdisjoint({groups[i] for i in other})

    def test_grouped_none_matches_round_robin(self):
        assert shard_tasks(7, 3, groups=None) == shard_tasks(7, 3)

    def test_grouped_fewer_groups_than_jobs(self):
        shards = shard_tasks(4, 8, groups=["x", "x", "y", "y"])
        assert shards == [[0, 1], [2, 3]]

    def test_grouped_length_mismatch_rejected(self):
        with pytest.raises(ValueError,
                           match="groups must have one key per task"):
            shard_tasks(3, 2, groups=["a", "b"])

    def test_grouped_deterministic(self):
        groups = [f"g{i % 5}" for i in range(40)]
        assert shard_tasks(40, 4, groups=groups) == \
            shard_tasks(40, 4, groups=groups)


def _square(x):
    return x * x


def _fail_on_three(x):
    if x == 3:
        raise RuntimeError("task three exploded")
    return x


class TestParallelMap:
    def test_results_in_task_order(self):
        tasks = [(i,) for i in range(9)]
        assert parallel_map(_square, tasks, jobs=3,
                            compile_cache=False) == \
            [i * i for i in range(9)]

    def test_jobs_one_runs_serial(self):
        assert parallel_map(_square, [(2,), (3,)], jobs=1,
                            compile_cache=False) == [4, 9]

    def test_jobs_zero_rejected(self):
        with pytest.raises(ValueError, match="jobs must be >= 1"):
            parallel_map(_square, [(1,)], jobs=0)

    def test_empty_tasks(self):
        assert parallel_map(_square, [], jobs=4) == []

    def test_task_exception_propagates_with_traceback(self):
        tasks = [(i,) for i in range(6)]
        with pytest.raises(EvaluationTaskError) as err:
            parallel_map(_fail_on_three, tasks, jobs=2,
                         compile_cache=False)
        assert err.value.index == 3
        assert "task three exploded" in str(err.value)

    def test_task_exception_serial_too(self):
        with pytest.raises(RuntimeError, match="task three exploded"):
            parallel_map(_fail_on_three, [(3,)], jobs=1,
                         compile_cache=False)

    def test_broken_pool_degrades_to_serial(self, monkeypatch, capsys):
        def broken(*args, **kwargs):
            raise OSError("no semaphores in this sandbox")

        monkeypatch.setattr(parallel, "_run_pool", broken)
        result = parallel_map(_square, [(i,) for i in range(4)], jobs=2,
                              compile_cache=False)
        assert result == [0, 1, 4, 9]
        assert "degraded to serial" in capsys.readouterr().err


class TestGridEquivalence:
    GRID = [GridPoint.make("gemm", ftype, 4, backend)
            for ftype in ("double", "vpfloat<mpfr, 16, 128>")
            for backend in ("none", "mpfr")]

    @staticmethod
    def _key(outcome):
        from repro.bigfloat import BigFloat

        outputs = tuple(
            (v.kind, v.sign, v.mant, v.exp, v.prec)
            if isinstance(v, BigFloat) else v
            for v in outcome.outputs)
        return (outcome.report.cycles, outcome.report.instructions,
                tuple(sorted(outcome.report.by_category.items())), outputs)

    def test_parallel_matches_serial_bit_for_bit(self, tmp_path):
        serial = run_grid(self.GRID, jobs=1, compile_cache=False)
        fanned = run_grid(self.GRID, jobs=2,
                          cache_dir=str(tmp_path / "cache"))
        assert [self._key(o) for o in fanned] == \
            [self._key(o) for o in serial]

    def test_cached_serial_matches_uncached(self, tmp_path):
        cold = run_grid(self.GRID[:2], jobs=1,
                        cache_dir=str(tmp_path / "cache"))
        warm = run_grid(self.GRID[:2], jobs=1,
                        cache_dir=str(tmp_path / "cache"))
        bare = run_grid(self.GRID[:2], jobs=1, compile_cache=False)
        keys = [self._key(o) for o in bare]
        assert [self._key(o) for o in cold] == keys
        assert [self._key(o) for o in warm] == keys


class TestEvaluationCLI:
    def test_jobs_validation(self, capsys):
        from repro.evaluation.__main__ import main

        with pytest.raises(SystemExit):
            main(["table1", "--jobs", "0"])
        assert "--jobs must be >= 1" in capsys.readouterr().err

    def test_cache_dir_must_be_directory(self, tmp_path, capsys):
        from repro.evaluation.__main__ import main

        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        with pytest.raises(SystemExit):
            main(["table1", "--cache-dir", str(not_a_dir)])
        assert "not a directory" in capsys.readouterr().err

    def test_compiler_cli_cache_dir_validation(self, tmp_path, capsys):
        from repro.cli import main

        not_a_dir = tmp_path / "file"
        not_a_dir.write_text("x")
        source = tmp_path / "k.c"
        source.write_text("int f() { return 1; }")
        with pytest.raises(SystemExit):
            main([str(source), "--cache-dir", str(not_a_dir)])
        assert "not a directory" in capsys.readouterr().err

    def test_compiler_cli_uses_cache_dir(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "k.c"
        source.write_text("int f(int n) { return n + 1; }")
        cache_dir = tmp_path / "cache"
        for _ in range(2):
            assert main([str(source), "--backend", "none",
                         "--cache-dir", str(cache_dir),
                         "--run", "f", "--args", "41"]) == 0
            assert "f(...) = 42" in capsys.readouterr().out
        assert list(cache_dir.glob("*.vpc"))

    def test_compiler_cli_no_compile_cache(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "k.c"
        source.write_text("int f() { return 7; }")
        cache_dir = tmp_path / "cache"
        assert main([str(source), "--backend", "none",
                     "--cache-dir", str(cache_dir),
                     "--no-compile-cache"]) == 0
        assert not cache_dir.exists()
