"""Cross-precision properties of the BigFloat substrate.

The paper's type system lets 'multiple variables of different, possibly
dynamically varying, precision' coexist; these properties pin down the
arithmetic behaviour that relies on (the MPFR destination-precision
discipline: every op rounds once, to the *destination's* precision,
whatever its sources carry).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import (
    RNDD,
    RNDN,
    RNDU,
    BigFloat,
    add,
    div,
    mul,
    sub,
)

floats = st.floats(allow_nan=False, allow_infinity=False,
                   allow_subnormal=False, min_value=-1e80, max_value=1e80)
precisions = st.integers(min_value=4, max_value=600)


@given(floats, floats, precisions, precisions)
def test_destination_precision_governs(x, y, pa, pb):
    """The result precision is the requested one, not the operands'."""
    a = BigFloat.from_float(x, pa)
    b = BigFloat.from_float(y, pb)
    for target in (4, 53, 200):
        result = add(a, b, target)
        assert result.prec == target


@given(floats, floats, precisions)
def test_widening_then_narrowing_is_single_rounding(x, y, prec):
    """op at high precision then round == op at low precision requires a
    double-rounding hazard; with >= 2p+2 intermediate bits, multiplication
    is exact so the equality must hold."""
    a = BigFloat.from_float(x, 53)
    b = BigFloat.from_float(y, 53)
    exact = mul(a, b, 110)  # 53+53 <= 106 bits: exact product
    assert mul(a, b, prec) == exact.round_to(prec)


@given(floats, floats)
def test_mixed_precision_operands_promote_exactly(x, y):
    """A 24-bit value equals its 200-bit widening in any expression."""
    narrow = BigFloat.from_float(x, 24)
    wide = narrow.round_to(200)
    other = BigFloat.from_float(y, 53)
    assert add(narrow, other, 100) == add(wide, other, 100)
    assert mul(narrow, other, 100) == mul(wide, other, 100)


@given(floats, floats)
def test_directed_modes_bracket(x, y):
    a = BigFloat.from_float(x, 53)
    b = BigFloat.from_float(y, 53)
    down = add(a, b, 20, RNDD)
    near = add(a, b, 20, RNDN)
    up = add(a, b, 20, RNDU)
    assert down <= near <= up


@given(floats)
def test_add_zero_identity_at_any_precision(x):
    a = BigFloat.from_float(x, 53)
    zero = BigFloat.zero(10)
    assert add(a, zero, 53) == a


@given(floats.filter(lambda v: v != 0), precisions)
def test_self_division_is_one(x, prec):
    a = BigFloat.from_float(x, 53)
    assert div(a, a, prec).to_float() == 1.0


@given(floats, precisions)
@settings(max_examples=40)
def test_sub_self_is_zero(x, prec):
    a = BigFloat.from_float(x, 97)
    result = sub(a, a, prec)
    assert result.is_zero()
    assert result.sign == 0  # RNDN exact cancellation is +0


@given(st.integers(min_value=-10**18, max_value=10**18),
       st.integers(min_value=-10**18, max_value=10**18))
def test_integer_arithmetic_exact_when_it_fits(m, n):
    a = BigFloat.from_int(m, 64)
    b = BigFloat.from_int(n, 64)
    assert add(a, b, 128).to_int() == m + n
    assert sub(a, b, 128).to_int() == m - n
    assert mul(a, b, 150).to_int() == m * n
