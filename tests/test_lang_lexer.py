"""Lexer: tokens, literals, suffixes, comments, pragmas."""

import pytest

from repro.lang import SourceError, TokenKind, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestBasics:
    def test_keywords_and_identifiers(self):
        tokens = kinds("int x; vpfloat y; double z2;")
        assert tokens[0] == (TokenKind.KEYWORD, "int")
        assert tokens[1] == (TokenKind.IDENT, "x")
        assert tokens[3] == (TokenKind.KEYWORD, "vpfloat")
        assert tokens[6] == (TokenKind.KEYWORD, "double")
        assert tokens[7] == (TokenKind.IDENT, "z2")

    def test_punctuation_longest_match(self):
        texts = [t.text for t in tokenize("a<<=b>=c&&d++ e->f")[:-1]]
        assert "<<=" in texts
        assert ">=" in texts
        assert "&&" in texts
        assert "++" in texts
        assert "->" in texts

    def test_eof_token(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_positions(self):
        tokens = tokenize("int\n  x;")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 3


class TestNumbers:
    def test_int_literals(self):
        tokens = tokenize("42 0x1F 0")
        assert [t.text for t in tokens[:-1]] == ["42", "0x1F", "0"]
        assert all(t.kind is TokenKind.INT_LIT for t in tokens[:-1])

    def test_float_literals(self):
        tokens = tokenize("1.5 .5 2e10 3.25E-2")
        assert all(t.kind is TokenKind.FLOAT_LIT for t in tokens[:-1])

    def test_vpfloat_suffixes(self):
        """The paper's v (unum) and y (mpfr) literal suffixes."""
        tokens = tokenize("1.3v 1.3y 2.0f 7u")
        assert tokens[0].suffix == "v"
        assert tokens[0].kind is TokenKind.FLOAT_LIT
        assert tokens[1].suffix == "y"
        assert tokens[2].suffix == "f"
        assert tokens[3].suffix == "u"
        assert tokens[3].kind is TokenKind.INT_LIT

    def test_integer_with_v_suffix_is_float(self):
        token = tokenize("5v")[0]
        assert token.kind is TokenKind.FLOAT_LIT
        assert token.suffix == "v"

    def test_zero_at_end_of_input(self):
        """Regression: '0' as the last character must not be read as the
        start of a hex literal ('"" in "xX"' is True in Python, which
        once sent the lexer into an infinite loop here)."""
        assert tokenize("0")[0].text == "0"
        assert [t.text for t in tokenize("return 0")[:-1]] == \
            ["return", "0"]

    def test_bare_hex_prefix(self):
        tokens = tokenize("0x")
        assert tokens[0].text == "0x"  # consumed, no digits: still a token

    def test_malformed_hex_diagnosed_by_parser(self):
        from repro.lang import SourceError, parse

        with pytest.raises(SourceError, match="malformed integer"):
            parse("int x = 0x;")


class TestTrivia:
    def test_line_comment(self):
        assert kinds("a // comment\nb") == [(TokenKind.IDENT, "a"),
                                            (TokenKind.IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [(TokenKind.IDENT, "a"),
                                           (TokenKind.IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(SourceError):
            tokenize("a /* never closed")

    def test_pragma_token(self):
        tokens = tokenize("#pragma omp parallel for\nint x;")
        assert tokens[0].kind is TokenKind.PRAGMA
        assert tokens[0].text == "omp parallel for"

    def test_other_directives_skipped(self):
        tokens = tokenize("#include <stdio.h>\nint x;")
        assert tokens[0].is_keyword("int")

    def test_string_literal(self):
        token = tokenize(r'"hi\nthere"')[0]
        assert token.kind is TokenKind.STRING_LIT
        assert token.text == "hi\nthere"

    def test_unexpected_character(self):
        with pytest.raises(SourceError):
            tokenize("int $x;")
