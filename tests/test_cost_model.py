"""Cost model: cache simulation, cycle costs, OpenMP roofline."""

import pytest

from repro.runtime.cost_model import (
    ALLOCATOR_CONTENTION_CYCLES,
    CacheLevel,
    CacheModel,
    CostAccounting,
    CostReport,
    CycleCosts,
    ROCKET_CYCLE_COSTS,
)


class TestCacheModel:
    def test_cold_miss_then_hit(self):
        cache = CacheModel()
        cache.access("r", 0x1000, 8)
        assert cache.misses_to_dram == 1
        cache.access("r", 0x1000, 8)
        assert cache.misses_to_dram == 1
        assert cache.hits[0] == 1

    def test_same_line_shares(self):
        cache = CacheModel()
        cache.access("r", 0x1000, 8)
        cache.access("r", 0x1008, 8)  # same 64B line
        assert cache.misses_to_dram == 1

    def test_straddling_access_touches_two_lines(self):
        cache = CacheModel()
        cache.access("r", 0x103C, 16)  # crosses a line boundary
        assert cache.misses_to_dram == 2

    def test_lru_eviction(self):
        tiny = CacheModel(levels=(CacheLevel("L1", 128, 64, 4),))
        tiny.access("r", 0, 8)       # line 0
        tiny.access("r", 64, 8)      # line 1 (cache full)
        tiny.access("r", 128, 8)     # evicts line 0
        tiny.access("r", 0, 8)       # must miss again
        assert tiny.misses_to_dram == 4

    def test_l2_catches_l1_eviction(self):
        cache = CacheModel(levels=(
            CacheLevel("L1", 128, 64, 4),
            CacheLevel("L2", 4096, 64, 12),
        ))
        for line in range(4):
            cache.access("r", line * 64, 8)
        cache.access("r", 0, 8)  # gone from L1 (2 lines) but in L2
        assert cache.hits[1] >= 1

    def test_dram_bytes_accumulate(self):
        cache = CacheModel()
        for i in range(10):
            cache.access("r", i * 4096, 8)
        assert cache.dram_bytes == 10 * 64


class TestCycleCosts:
    def test_mpfr_cost_scales_with_precision(self):
        costs = CycleCosts()
        assert costs.mpfr_op_cost("mpfr_add", 512) > \
            costs.mpfr_op_cost("mpfr_add", 64)
        # Multiplication scales quadratically in words, addition linearly.
        mul_ratio = costs.mpfr_op_cost("mpfr_mul", 512) / \
            costs.mpfr_op_cost("mpfr_mul", 64)
        add_ratio = costs.mpfr_op_cost("mpfr_add", 512) / \
            costs.mpfr_op_cost("mpfr_add", 64)
        assert mul_ratio > add_ratio

    def test_init_includes_allocation(self):
        costs = CycleCosts()
        assert costs.mpfr_op_cost("mpfr_init2", 128) > costs.malloc

    def test_rocket_slower_than_xeon(self):
        for name in ("mpfr_add", "mpfr_mul", "mpfr_init2", "mpfr_set"):
            assert ROCKET_CYCLE_COSTS.mpfr_op_cost(name, 500) > \
                CycleCosts().mpfr_op_cost(name, 500)

    def test_transcendental_most_expensive(self):
        costs = CycleCosts()
        assert costs.mpfr_op_cost("mpfr_exp", 256) > \
            costs.mpfr_op_cost("mpfr_div", 256) > \
            costs.mpfr_op_cost("mpfr_mul", 256) > \
            costs.mpfr_op_cost("mpfr_add", 256)


class TestParallelModel:
    def _report(self, serial, parallel, dram=0, allocs=0):
        report = CostReport()
        report.cycles = serial + parallel
        report.serial_cycles = serial
        report.parallel_cycles = parallel
        report.parallel_dram_bytes = dram
        report.parallel_heap_allocations = allocs
        return report

    def test_compute_bound_scales(self):
        report = self._report(serial=1000, parallel=1_600_000)
        t16 = report.parallel_time(16, fork_join=0)
        assert t16 == pytest.approx(1000 + 100_000)

    def test_bandwidth_floor_binds(self):
        report = self._report(serial=0, parallel=160_000,
                              dram=7_000_000)
        t16 = report.parallel_time(16, fork_join=0)
        assert t16 == pytest.approx(1_000_000)  # dram / 7 bytes-per-cycle

    def test_allocator_contention_binds(self):
        clean = self._report(serial=0, parallel=1_600_000)
        dirty = self._report(serial=0, parallel=1_600_000, allocs=10_000)
        assert dirty.parallel_time(16) > clean.parallel_time(16)
        expected_penalty = 10_000 * ALLOCATOR_CONTENTION_CYCLES * 15 / 16
        assert dirty.parallel_time(16) - clean.parallel_time(16) == \
            pytest.approx(expected_penalty)

    def test_single_thread_is_plain_cycles(self):
        report = self._report(serial=123, parallel=1000)
        assert report.parallel_time(1) == 1123

    def test_kernel_time_excludes_serial(self):
        report = self._report(serial=10_000, parallel=160_000)
        assert report.kernel_time(16, fork_join=0) == pytest.approx(10_000)


class TestAccounting:
    def test_parallel_region_tracking(self):
        acc = CostAccounting(cache=None)
        acc.charge("setup", 100)
        acc.parallel_begin()
        acc.charge("work", 500)
        acc.report.heap_allocations += 3
        acc.parallel_end()
        acc.charge("teardown", 50)
        report = acc.finalize()
        assert report.parallel_cycles == 500
        assert report.parallel_heap_allocations == 3
        assert report.serial_cycles == report.cycles - 500

    def test_nested_regions_counted_once(self):
        acc = CostAccounting(cache=None)
        acc.parallel_begin()
        acc.charge("a", 100)
        acc.parallel_begin()
        acc.charge("b", 100)
        acc.parallel_end()
        acc.charge("c", 100)
        acc.parallel_end()
        report = acc.finalize()
        assert report.parallel_cycles == 300

    def test_by_category(self):
        acc = CostAccounting(cache=None)
        acc.charge("mpfr", 10)
        acc.charge("mpfr", 5)
        acc.charge("int", 1)
        assert acc.report.by_category == {"mpfr": 15, "int": 1}


class TestMemoryModel:
    def test_stack_release_frees_cells(self):
        from repro.runtime.memory import Memory

        memory = Memory()
        mark = memory.stack_mark()
        addr = memory.alloc_stack(64)
        memory.store(addr, 1.25, 8)
        assert memory.load(addr, 8) == 1.25
        memory.stack_release(mark)
        assert memory.load(addr, 8, default=None) is None

    def test_heap_free_validates(self):
        from repro.runtime.memory import Memory, MemoryError_

        memory = Memory()
        addr = memory.alloc_heap(32)
        memory.free_heap(addr)
        with pytest.raises(MemoryError_):
            memory.free_heap(0x12345)

    def test_free_null_is_noop(self):
        from repro.runtime.memory import Memory

        Memory().free_heap(0)

    def test_null_access_traps(self):
        from repro.runtime.memory import Memory, MemoryError_

        memory = Memory()
        with pytest.raises(MemoryError_):
            memory.load(0, 8)
        with pytest.raises(MemoryError_):
            memory.store(0, 1, 8)

    def test_byte_io_round_trip(self):
        from repro.runtime.memory import Memory

        memory = Memory()
        addr = memory.alloc_heap(16)
        memory.store_bytes(addr, b"\x01\x02\x03")
        assert memory.load_bytes(addr, 3) == b"\x01\x02\x03"
