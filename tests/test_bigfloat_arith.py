"""Arithmetic kernels: cross-checks against IEEE binary64 and invariants."""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.bigfloat import (
    RNDD,
    RNDN,
    RNDU,
    RNDZ,
    BigFloat,
    add,
    div,
    fma,
    fms,
    mul,
    sqrt,
    sub,
    from_str,
)

# Keep magnitudes well inside binary64's range so that the 53-bit BigFloat
# result and the hardware float result are both correctly rounded with no
# overflow/underflow, hence bit-identical.  The lower magnitude bound
# matters as much as the upper one: BigFloat has an MPFR-style unbounded
# exponent, so a quotient like 2.2e-308 / 1.5 that binary64 flushes into
# the subnormal range would legitimately disagree with the hardware.
safe_floats = st.floats(
    allow_nan=False, allow_infinity=False, allow_subnormal=False,
    min_value=-1e100, max_value=1e100,
).filter(lambda x: x == 0.0 or abs(x) > 1e-100)
nonzero_floats = safe_floats.filter(lambda x: abs(x) > 1e-100)


def bf(x: float) -> BigFloat:
    return BigFloat.from_float(x, 53)


@given(safe_floats, safe_floats)
def test_add_matches_binary64(x, y):
    assert add(bf(x), bf(y), 53).to_float() == x + y


@given(safe_floats, safe_floats)
def test_sub_matches_binary64(x, y):
    assert sub(bf(x), bf(y), 53).to_float() == x - y


@given(safe_floats, safe_floats)
def test_mul_matches_binary64(x, y):
    assert mul(bf(x), bf(y), 53).to_float() == x * y


@given(safe_floats, nonzero_floats)
def test_div_matches_binary64(x, y):
    assert div(bf(x), bf(y), 53).to_float() == x / y


@given(safe_floats.filter(lambda v: v >= 0))
def test_sqrt_matches_binary64(x):
    assert sqrt(bf(x), 53).to_float() == math.sqrt(x)


@given(safe_floats, safe_floats)
def test_add_commutes(x, y):
    assert add(bf(x), bf(y), 200) == add(bf(y), bf(x), 200)


@given(safe_floats, safe_floats)
def test_mul_commutes(x, y):
    assert mul(bf(x), bf(y), 200) == mul(bf(y), bf(x), 200)


@given(safe_floats, safe_floats)
def test_add_exact_at_wide_precision(x, y):
    """With enough bits the sum of two 53-bit values is exact."""
    wide = add(bf(x), bf(y), 2200)
    # Exactness: subtracting back one operand recovers the other.
    back = sub(wide, bf(y), 2200)
    assert back.to_float() == x


@given(safe_floats, safe_floats)
def test_mul_exact_at_double_precision(x, y):
    assume(x != 0 and y != 0)
    exact = mul(bf(x), bf(y), 106)
    back = div(exact, bf(y), 120)
    assert back.to_float() == x


@given(safe_floats, safe_floats, safe_floats)
def test_fma_single_rounding(x, y, z):
    """fma equals the doubly-wide product-sum rounded once."""
    wide = add(mul(bf(x), bf(y), 2400), bf(z), 2400)
    assert fma(bf(x), bf(y), bf(z), 53) == wide.round_to(53)


@given(safe_floats, safe_floats, safe_floats)
def test_fms_is_fma_with_negated_addend(x, y, z):
    assert fms(bf(x), bf(y), bf(z), 53) == fma(bf(x), bf(y), -bf(z), 53)


@given(nonzero_floats)
def test_directed_rounding_brackets_division(x):
    third_down = div(bf(x), bf(3.0), 40, RNDD)
    third_up = div(bf(x), bf(3.0), 40, RNDU)
    assert third_down <= third_up
    exact = div(bf(x), bf(3.0), 200)
    assert third_down <= exact <= third_up


wide_ints = st.integers(min_value=1, max_value=(1 << 300) - 1)
narrow_ints = st.integers(min_value=1, max_value=(1 << 12) - 1)


@given(wide_ints, narrow_ints, st.sampled_from([RNDN, RNDD, RNDU, RNDZ]))
def test_div_wide_dividend_guard_bits(n, d, rm):
    """Dividend far wider than the divisor drives the pre-division shift
    to (or past) zero; the quotient must still carry full guard bits so
    a single rounding matches the exact rational result."""
    prec = 24
    a = BigFloat.from_int(n, 320)
    b = BigFloat.from_int(d, 16)
    got = div(a, b, prec, rm)
    want = BigFloat.from_fraction(n, d, prec, rm)
    assert got == want, (n, d, rm)


def test_div_shift_clamped_directed_rounding():
    """Regression: quotient one bit narrower than the operand-width
    estimate must not double-round under directed modes."""
    # (2**200 + 1) / 3: floor quotient bit-length is one short of the
    # a-b width difference, the historical shortfall case.
    a = BigFloat.from_int((1 << 200) + 1, 256)
    b = BigFloat.from_int(3, 8)
    for rm in (RNDN, RNDD, RNDU, RNDZ):
        got = div(a, b, 20, rm)
        want = BigFloat.from_fraction((1 << 200) + 1, 3, 20, rm)
        assert got == want, rm
    down = div(a, b, 20, RNDD)
    up = div(a, b, 20, RNDU)
    assert down < up  # inexact quotient: the bracket is strict


@given(nonzero_floats)
def test_rndz_magnitude_never_exceeds_exact(x):
    q = div(bf(x), bf(7.0), 30, RNDZ)
    exact = div(bf(x), bf(7.0), 300)
    assert abs(q) <= abs(exact)


class TestSpecialValues:
    def test_nan_propagation(self):
        nan, one = BigFloat.nan(), BigFloat.from_int(1)
        for op in (add, sub, mul, div):
            assert op(nan, one, 53).is_nan()
            assert op(one, nan, 53).is_nan()

    def test_inf_plus_inf(self):
        inf = BigFloat.inf()
        assert add(inf, inf, 53).is_inf()
        assert add(inf, -inf, 53).is_nan()

    def test_inf_times_zero_is_nan(self):
        assert mul(BigFloat.inf(), BigFloat.zero(), 53).is_nan()

    def test_div_by_zero(self):
        one = BigFloat.from_int(1)
        assert div(one, BigFloat.zero(), 53).is_inf()
        assert div(-one, BigFloat.zero(), 53).sign == 1
        assert div(BigFloat.zero(), BigFloat.zero(), 53).is_nan()

    def test_inf_div_inf_is_nan(self):
        assert div(BigFloat.inf(), BigFloat.inf(), 53).is_nan()

    def test_exact_cancellation_gives_positive_zero(self):
        one = BigFloat.from_int(1)
        z = sub(one, one, 53)
        assert z.is_zero() and z.sign == 0

    def test_exact_cancellation_rndd_gives_negative_zero(self):
        one = BigFloat.from_int(1)
        z = sub(one, one, 53, RNDD)
        assert z.is_zero() and z.sign == 1

    def test_sqrt_negative_is_nan(self):
        assert sqrt(BigFloat.from_int(-4), 53).is_nan()

    def test_sqrt_of_negative_zero(self):
        z = sqrt(BigFloat.zero(53, sign=1), 53)
        assert z.is_zero() and z.sign == 1

    def test_sqrt_inf(self):
        assert sqrt(BigFloat.inf(), 53).is_inf()

    def test_zero_plus_zero_signs(self):
        pz, nz = BigFloat.zero(), BigFloat.zero(53, 1)
        assert add(pz, pz, 53).sign == 0
        assert add(nz, nz, 53).sign == 1
        assert add(pz, nz, 53).sign == 0  # RNDN: +0
        assert add(pz, nz, 53, RNDD).sign == 1

    def test_fma_exact_cancellation_signed_zero(self):
        """(+x)*(+y) + (-xy) cancels exactly: +0 except -0 under RNDD,
        matching mpfr_fma -- never the product's or addend's own sign."""
        x, y = bf(3.0), bf(0.5)
        minus_xy = bf(-1.5)
        for rm, want_sign in ((RNDN, 0), (RNDU, 0), (RNDZ, 0), (RNDD, 1)):
            z = fma(x, y, minus_xy, 53, rm)
            assert z.is_zero() and z.sign == want_sign, rm
            # Mirror case: (-x)*(+y) + xy.
            z = fma(-x, y, bf(1.5), 53, rm)
            assert z.is_zero() and z.sign == want_sign, rm

    def test_fms_exact_cancellation_signed_zero(self):
        """fms(x, y, xy) follows the same exact-sum zero rule."""
        x, y, xy = bf(3.0), bf(0.5), bf(1.5)
        for rm, want_sign in ((RNDN, 0), (RNDU, 0), (RNDD, 1)):
            z = fms(x, y, xy, 53, rm)
            assert z.is_zero() and z.sign == want_sign, rm

    def test_fma_zero_product_zero_addend_signs(self):
        """Zero product plus zero addend keeps a common sign; opposite
        signs fall to the exact-sum rule."""
        pz, nz, one = BigFloat.zero(), BigFloat.zero(53, 1), BigFloat.from_int(1)
        same = fma(nz, one, nz, 53)  # (-0)*1 + (-0) = -0
        assert same.is_zero() and same.sign == 1
        mixed = fma(pz, one, nz, 53)  # (+0)*1 + (-0) = +0 (RNDN)
        assert mixed.is_zero() and mixed.sign == 0
        mixed_d = fma(pz, one, nz, 53, RNDD)
        assert mixed_d.is_zero() and mixed_d.sign == 1

    def test_fma_nonzero_product_zero_addend_keeps_product_sign(self):
        nz = BigFloat.zero(53, 1)
        z = fma(bf(2.0), bf(3.0), nz, 53)
        assert z.to_float() == 6.0
        neg = fma(bf(-2.0), bf(3.0), BigFloat.zero(), 53)
        assert neg.to_float() == -6.0

    def test_fma_inf_cases(self):
        inf, one, zero = BigFloat.inf(), BigFloat.from_int(1), BigFloat.zero()
        assert fma(inf, zero, one, 53).is_nan()
        assert fma(inf, one, -inf, 53).is_nan()
        assert fma(inf, one, one, 53).is_inf()
        assert fma(one, one, inf, 53).is_inf()


class TestHighPrecision:
    def test_catastrophic_cancellation_avoided(self):
        """(1 + 2**-200) - 1 is zero at 53 bits, exact at 300 bits."""
        tiny = BigFloat.from_fraction(1, 1 << 200, 300)
        one = BigFloat.from_int(1, 300)
        x = add(one, tiny, 300)
        diff = sub(x, one, 300)
        assert diff == tiny

    def test_quadratic_formula_residual_shrinks_with_precision(self):
        """Root residual of x^2 - 4x + 3.9999999 improves with precision."""
        residuals = []
        for prec in (24, 53, 120, 400):
            a = BigFloat.from_int(1, prec)
            b = BigFloat.from_int(-4, prec)
            c = from_str("3.9999999", prec)
            disc = sub(mul(b, b, prec), mul(BigFloat.from_int(4, prec), c, prec), prec)
            root = div(sub(-b, sqrt(disc, prec), prec), BigFloat.from_int(2, prec), prec)
            resid = add(mul(root, root, prec),
                        add(mul(b, root, prec), c, prec), prec)
            residuals.append(abs(resid).to_float() if resid.is_finite() else 0.0)
        assert residuals[0] >= residuals[1] >= residuals[2]

    def test_associativity_restored_at_high_precision(self):
        a = bf(1e30)
        b = bf(-1e30)
        c = bf(1.0)
        lo = add(add(a, c, 53), b, 53)  # loses c at 53 bits
        hi = add(add(a, c, 200), b, 200)
        assert lo.to_float() == 0.0
        assert hi.to_float() == 1.0
