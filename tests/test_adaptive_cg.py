"""Transprecision (adaptive) CG -- the paper's §II usage pattern."""

import pytest

from repro.solvers import (
    adaptive_cg,
    bcsstk20_like,
    conjugate_gradient,
    rhs_for,
)


@pytest.fixture(scope="module")
def hard_system():
    matrix = bcsstk20_like(n=48, condition=1e12)
    return matrix, rhs_for(matrix)


class TestAdaptiveCG:
    def test_converges_where_low_precision_cannot(self, hard_system):
        matrix, b = hard_system
        fixed_low = conjugate_gradient(matrix, b, 60, tolerance=1e-12,
                                       max_iterations=800)
        assert not fixed_low.converged  # cond 1e12 defeats 60 bits
        adaptive = adaptive_cg(matrix, b, initial_precision=60,
                               tolerance=1e-12)
        assert adaptive.converged
        assert adaptive.final_precision > 60

    def test_escalation_trace(self, hard_system):
        matrix, b = hard_system
        result = adaptive_cg(matrix, b, initial_precision=60,
                             tolerance=1e-12)
        precisions = [s.precision for s in result.stages]
        assert precisions == sorted(precisions)  # never de-escalates
        assert precisions[0] == 60
        assert any(s.escalated for s in result.stages)
        assert not result.stages[-1].escalated  # last stage converged

    def test_cheaper_than_overprovisioning(self, hard_system):
        """The transprecision promise: pay for precision only when the
        conditioning demands it."""
        matrix, b = hard_system
        adaptive = adaptive_cg(matrix, b, initial_precision=60,
                               tolerance=1e-12)
        overkill = conjugate_gradient(matrix, b, 1024, tolerance=1e-12)
        assert adaptive.converged and overkill.converged
        assert adaptive.modeled_cycles() < overkill.ops.cycles(1024)

    def test_easy_system_stays_cheap(self):
        """Well-conditioned systems never escalate."""
        matrix = bcsstk20_like(n=24, condition=1e3)
        b = rhs_for(matrix)
        result = adaptive_cg(matrix, b, initial_precision=60,
                             tolerance=1e-8)
        assert result.converged
        assert result.final_precision == 60
        assert len(result.stages) == 1

    def test_max_precision_bound_respected(self, hard_system):
        matrix, b = hard_system
        result = adaptive_cg(matrix, b, initial_precision=60,
                             max_precision=120, tolerance=1e-30)
        assert not result.converged  # 1e-30 is unreachable at 120 bits
        assert result.final_precision <= 240  # last escalation attempt

    def test_solution_actually_solves(self, hard_system):
        matrix, b = hard_system
        result = adaptive_cg(matrix, b, initial_precision=60,
                             tolerance=1e-12)
        x = [v.to_float() for v in result.x]
        ax = matrix.matvec(x)
        scale = max(abs(v) for v in b) or 1.0
        for got, want in zip(ax, b):
            assert got == pytest.approx(want, abs=1e-5 * scale)
