"""Workload suites: kernel integrity, cross-type consistency."""

import pytest

from repro import compile_source
from repro.evaluation.harness import (
    element_stride,
    parse_ftype,
    residual_error,
    run_kernel,
)
from repro.bigfloat import log10_magnitude
from repro.workloads import (
    DATASET_ORDER,
    KERNELS,
    RAJA_KERNELS,
    TABLE1_KERNELS,
    raja_source,
    source_for,
    vpfloat_mpfr_type,
    vpfloat_unum_type,
)

#: A fast representative subset for per-test compilation checks.
SMOKE_KERNELS = ("gemm", "atax", "trisolv", "jacobi-1d", "durbin")


class TestKernelCatalog:
    def test_catalog_covers_paper_suites(self):
        assert len(KERNELS) >= 25
        for name in ("gemm", "2mm", "3mm", "covariance", "gramschmidt",
                     "gesummv", "adi", "deriche", "jacobi-1d", "jacobi-2d",
                     "ludcmp", "nussinov"):
            assert name in KERNELS
        assert set(TABLE1_KERNELS) <= set(KERNELS)
        assert len(RAJA_KERNELS) >= 10

    def test_dataset_sizes_monotone(self):
        for dims in (1, 2, 3):
            sizes = [KERNELS["gemm"].size_for(d) if dims == 3 else None
                     for d in DATASET_ORDER]
        for kernel in ("gemm", "atax", "jacobi-1d"):
            spec = KERNELS[kernel]
            sizes = [spec.size_for(d) for d in DATASET_ORDER]
            assert sizes == sorted(sizes)

    def test_type_helpers(self):
        assert vpfloat_mpfr_type(256) == "vpfloat<mpfr, 16, 256>"
        assert vpfloat_unum_type() == "vpfloat<unum, 4, 9>"
        assert vpfloat_unum_type(3, 6, 6) == "vpfloat<unum, 3, 6, 6>"

    @pytest.mark.parametrize("kernel", sorted(KERNELS))
    def test_all_kernels_compile_all_types(self, kernel):
        for ftype in ("double", "vpfloat<mpfr, 16, 128>"):
            compile_source(source_for(kernel, ftype), backend="none")

    @pytest.mark.parametrize("kernel", SMOKE_KERNELS)
    def test_smoke_kernels_all_backends(self, kernel):
        n = 6
        ref = run_kernel(kernel, "vpfloat<mpfr, 16, 300>", n,
                         backend="none")
        for ftype, backend in (
            ("vpfloat<mpfr, 16, 128>", "mpfr"),
            ("vpfloat<mpfr, 16, 128>", "boost"),
            ("vpfloat<unum, 4, 7>", "unum"),
        ):
            outcome = run_kernel(kernel, ftype, n, backend=backend)
            err = residual_error(outcome.outputs, ref.outputs)
            assert log10_magnitude(err) < -30, \
                f"{kernel}/{backend}: error {err}"

    @pytest.mark.parametrize("kernel", sorted(RAJA_KERNELS))
    def test_raja_kernels_compile_and_run(self, kernel):
        for openmp in (False, True):
            source = raja_source(kernel, "vpfloat<mpfr, 16, 128>", openmp)
            program = compile_source(source, backend="mpfr")
            result = program.run("run", [32])
            if openmp:
                assert result.report.parallel_cycles > 0


class TestHarness:
    def test_parse_ftype(self):
        assert parse_ftype("double") == ("double", {})
        assert parse_ftype("vpfloat<mpfr, 16, 256>") == \
            ("mpfr", {"exp": 16, "prec": 256})
        assert parse_ftype("vpfloat<unum, 4, 9>") == \
            ("unum", {"ess": 4, "fss": 9, "size": None})
        assert parse_ftype("vpfloat<unum, 3, 6, 6>") == \
            ("unum", {"ess": 3, "fss": 6, "size": 6})
        with pytest.raises(ValueError):
            parse_ftype("quad")

    def test_parse_ftype_four_arg_mpfr(self):
        assert parse_ftype("vpfloat<mpfr, 16, 256, 64>") == \
            ("mpfr", {"exp": 16, "prec": 256, "size": 64})
        assert parse_ftype("  vpfloat< mpfr , 16 , 128 , 32 >  ") == \
            ("mpfr", {"exp": 16, "prec": 128, "size": 32})
        # Declared byte size must hold the significand.
        with pytest.raises(ValueError, match="16 bytes cannot hold"):
            parse_ftype("vpfloat<mpfr, 16, 256, 16>")

    def test_parse_ftype_error_names_offender(self):
        for bad in ("quad", "vpfloat<mpfr, 16>", "vpfloat<posit, 2, 32>",
                    "vpfloat<mpfr, 16, 256> trailing"):
            with pytest.raises(ValueError) as err:
                parse_ftype(bad)
            assert repr(bad) in str(err.value)
            assert "vpfloat<mpfr, EXP, PREC[, SIZE]>" in str(err.value)

    def test_canonical_source_ftype(self):
        from repro.evaluation.harness import canonical_source_ftype

        assert canonical_source_ftype("vpfloat<mpfr, 16, 256, 64>") == \
            "vpfloat<mpfr, 16, 256>"
        assert canonical_source_ftype("vpfloat<mpfr, 16, 256>") == \
            "vpfloat<mpfr, 16, 256>"
        assert canonical_source_ftype("double") == "double"

    def test_run_kernel_accepts_four_arg_mpfr(self):
        four = run_kernel("trisolv", "vpfloat<mpfr, 16, 128, 32>", 4,
                          backend="mpfr")
        three = run_kernel("trisolv", "vpfloat<mpfr, 16, 128>", 4,
                           backend="mpfr")
        assert four.report.cycles == three.report.cycles
        assert [float(a) == float(b)
                for a, b in zip(four.outputs, three.outputs)]

    def test_element_strides(self):
        assert element_stride("double", "none") == 8
        assert element_stride("float", "none") == 4
        assert element_stride("vpfloat<mpfr, 16, 128>", "mpfr") == 24
        assert element_stride("vpfloat<mpfr, 16, 128>", "none") == 40
        assert element_stride("vpfloat<unum, 3, 6>", "unum") == 11

    def test_run_kernel_outputs_double(self):
        outcome = run_kernel("trisolv", "double", 6)
        assert len(outcome.outputs) == 6
        assert all(isinstance(v, float) for v in outcome.outputs)

    def test_residual_error_basics(self):
        from repro.bigfloat import BigFloat

        zero = residual_error([1.0, 2.0], [1.0, 2.0])
        assert zero.is_zero()
        small = residual_error([1.0 + 1e-10, 2.0], [1.0, 2.0])
        assert 0 < small.to_float() < 1e-9
        nan = residual_error([float("nan")], [1.0])
        assert nan.is_nan()

    def test_speedup_and_geomean(self):
        from repro.evaluation.harness import geomean, speedup

        assert speedup(200, 100) == 2.0
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)
        assert geomean([]) == 0.0


class TestEvaluationDrivers:
    def test_table2_matches_paper(self):
        from repro.evaluation.table2 import format_table2, run_table2

        rows = run_table2()
        assert all(row.matches_paper for row in rows)
        text = format_table2(rows)
        assert "vpfloat<unum, 4, 9>" in text

    def test_table3_fields(self):
        from repro.evaluation.table3 import run_table3

        rows = run_table3()
        # Two rows match the paper exactly; the others differ by a single
        # typeset nibble (documented in EXPERIMENTS.md).
        assert sum(1 for r in rows if r.matches_paper) >= 2
        assert all(r.encoded.startswith("0x") for r in rows)

    def test_table1_small_slice(self):
        from repro.evaluation.table1 import run_table1

        cells = run_table1(kernels=("trisolv",), datasets=("mini",))
        by_row = {c.row: c.residual for c in cells}
        assert log10_magnitude(by_row["IEEE 32"]) > \
            log10_magnitude(by_row["IEEE 64"]) > \
            log10_magnitude(by_row["128 bits"]) > \
            log10_magnitude(by_row["512 bits"])

    def test_fig2_erratum_rows(self):
        from repro.evaluation.fig2 import Fig2Point, run_fig2

        points = run_fig2(kernels=("gesummv",), dataset="mini")
        assert all(p.hw_failure for p in points)
        points = run_fig2(kernels=("gesummv",), dataset="mini",
                          model_erratum=False)
        assert all(not p.hw_failure and p.speedup > 1 for p in points)

    def test_fig1_point_best_of_polly(self):
        from repro.evaluation.fig1 import Fig1Point

        point = Fig1Point("k", 128, vpfloat_cycles=100, boost_cycles=300,
                          vpfloat_polly_cycles=80, boost_polly_cycles=320)
        assert point.best_vpfloat == 80
        assert point.best_boost == 300
        assert point.speedup == pytest.approx(3.75)
