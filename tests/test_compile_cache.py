"""Persistent compile cache: fingerprint invalidation + disk roundtrip."""

import pickle

import pytest

from repro.core import (
    CompileCache,
    CompileOptions,
    CompilerDriver,
    compile_source,
    default_cache_dir,
)
from repro.workloads.polybench import source_for

SOURCE = source_for("gemm", "vpfloat<mpfr, 16, 128>")


class TestFingerprint:
    def test_identical_inputs_identical_key(self):
        a = CompileCache.fingerprint(SOURCE, CompileOptions(), "m")
        b = CompileCache.fingerprint(SOURCE, CompileOptions(), "m")
        assert a == b

    def test_source_change_invalidates(self):
        base = CompileCache.fingerprint(SOURCE, CompileOptions(), "m")
        edited = CompileCache.fingerprint(SOURCE + "\n", CompileOptions(),
                                          "m")
        assert base != edited

    def test_vpfloat_attr_change_invalidates(self):
        # The attributes live in the source text, so a precision bump
        # is a source change and must miss.
        other = source_for("gemm", "vpfloat<mpfr, 16, 256>")
        assert CompileCache.fingerprint(SOURCE, CompileOptions(), "m") != \
            CompileCache.fingerprint(other, CompileOptions(), "m")

    def test_backend_and_pass_options_invalidate(self):
        base = CompileCache.fingerprint(SOURCE, CompileOptions(), "m")
        for options in (CompileOptions(backend="boost"),
                        CompileOptions(opt_level=0),
                        CompileOptions(polly=True),
                        CompileOptions(polly=True, polly_tile=8),
                        CompileOptions(contract_fma=True),
                        CompileOptions(reuse_objects=False),
                        CompileOptions(specialize_scalars=False),
                        CompileOptions(in_place_stores=False)):
            assert CompileCache.fingerprint(SOURCE, options, "m") != base

    def test_module_name_invalidates(self):
        assert CompileCache.fingerprint(SOURCE, CompileOptions(), "a") != \
            CompileCache.fingerprint(SOURCE, CompileOptions(), "b")


class TestCacheTiers:
    def test_memory_hit_returns_same_object(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        program = compile_source(SOURCE, backend="mpfr")
        cache.put("k", program)
        assert cache.get("k") is program
        assert cache.stats.memory_hits == 1

    def test_disk_roundtrip_bit_identical(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        program = compile_source(SOURCE, backend="mpfr")
        baseline = program.run("run", [4])
        cache.put("k", program)
        cache._memory.clear()  # force the disk tier
        restored = cache.get("k")
        assert restored is not program
        assert cache.stats.disk_hits == 1
        rerun = restored.run("run", [4])
        assert rerun.value == baseline.value
        assert rerun.report.cycles == baseline.report.cycles
        assert dict(rerun.report.by_category) == \
            dict(baseline.report.by_category)

    def test_lru_eviction(self):
        cache = CompileCache(memory_slots=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert len(cache) == 2
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3

    def test_corrupted_entry_is_miss_and_unlinked(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        cache.put("k", compile_source("int f() { return 1; }",
                                      backend="none"))
        path = cache._path("k")
        path.write_bytes(b"not a pickle")
        cache._memory.clear()
        assert cache.get("k") is None
        assert cache.stats.errors == 1
        assert not path.exists()

    def test_stale_format_version_is_miss(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        path = cache._path("k")
        path.parent.mkdir(parents=True)
        path.write_bytes(pickle.dumps((-1, "whatever")))
        assert cache.get("k") is None
        assert cache.stats.errors == 1

    def test_directory_created_lazily(self, tmp_path):
        target = tmp_path / "nested" / "cache"
        cache = CompileCache(target)
        assert not target.exists()
        assert cache.get("missing") is None
        assert not target.exists()  # lookups never create it
        cache.put("k", 42)
        assert target.is_dir()
        assert list(target.glob("*.vpc"))

    def test_memory_only_cache(self):
        cache = CompileCache(None)
        cache.put("k", 7)
        assert cache.get("k") == 7
        cache._memory.clear()
        assert cache.get("k") is None  # nothing persisted

    def test_clear_removes_disk_entries(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        cache.put("k", 1)
        cache.clear()
        assert cache.get("k") is None
        assert not list((tmp_path / "c").glob("*.vpc"))


class TestDriverIntegration:
    def test_driver_hits_share_programs(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        driver = CompilerDriver(backend="mpfr", cache=cache)
        first = driver.compile(SOURCE)
        second = driver.compile(SOURCE)
        assert second is first  # memory tier
        assert cache.stats.stores == 1
        assert cache.stats.memory_hits == 1

    def test_driver_accepts_path_like_cache(self, tmp_path):
        driver = CompilerDriver(backend="mpfr", cache=tmp_path / "c")
        assert isinstance(driver.cache, CompileCache)
        program = driver.compile(SOURCE)
        fresh = CompilerDriver(backend="mpfr",
                               cache=tmp_path / "c").compile(SOURCE)
        assert fresh is not program  # different process-level object...
        assert fresh.run("run", [4]).report.cycles == \
            program.run("run", [4]).report.cycles  # ...same program

    def test_cache_none_always_compiles(self):
        driver = CompilerDriver(backend="mpfr", cache=None)
        assert driver.compile(SOURCE) is not driver.compile(SOURCE)

    def test_cross_driver_disk_sharing(self, tmp_path):
        CompilerDriver(backend="mpfr",
                       cache=tmp_path / "c").compile(SOURCE)
        cache = CompileCache(tmp_path / "c")
        CompilerDriver(backend="mpfr", cache=cache).compile(SOURCE)
        assert cache.stats.disk_hits == 1
        assert cache.stats.misses == 0

    def test_option_change_misses(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        CompilerDriver(backend="mpfr", cache=cache).compile(SOURCE)
        CompilerDriver(backend="mpfr", polly=True,
                       cache=cache).compile(SOURCE)
        assert cache.stats.stores == 2
        assert cache.stats.hits == 0


class TestDefaultDir:
    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("VPFLOAT_CACHE_DIR", "/somewhere/else")
        assert default_cache_dir() == "/somewhere/else"

    def test_fallback_under_home(self, monkeypatch):
        monkeypatch.delenv("VPFLOAT_CACHE_DIR", raising=False)
        assert default_cache_dir().endswith("vpfloat-repro")


class TestCodegenSidecarCorruption:
    """Corrupt ``.vpcgen`` sidecars must be cache misses that unlink the
    bad file (the pickle tier's corrupt-entry policy), never a
    JSON/KeyError/TypeError propagated into a run."""

    SIDECAR_SOURCE = """
double f(int n) {
  vpfloat<mpfr, 16, 64> acc = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    acc = acc + 1.5;
  }
  return acc;
}
"""

    def _first_run(self, tmp_path):
        import glob
        import os

        cache = CompileCache(tmp_path / "c")
        driver = CompilerDriver(backend="mpfr", engine="jit", cache=cache)
        value = driver.compile(self.SIDECAR_SOURCE,
                               name="sidecar").run("f", [5]).value
        sidecars = glob.glob(os.path.join(str(tmp_path / "c"),
                                          "*.vpcgen"))
        assert len(sidecars) == 1
        return value, sidecars[0]

    def _rerun(self, tmp_path):
        cache = CompileCache(tmp_path / "c")
        driver = CompilerDriver(backend="mpfr", engine="jit", cache=cache)
        result = driver.compile(self.SIDECAR_SOURCE,
                                name="sidecar").run("f", [5])
        return result.value, cache

    @pytest.mark.parametrize("garble", [
        "",                                        # truncated to nothing
        '{"version":',                             # torn JSON
        "[1, 2, 3]",                               # wrong top-level type
        '{"version": -1, "functions": {}}',        # stale version
        '{"functions": {}}',                       # missing version
    ])
    def test_unreadable_sidecar_is_miss_and_unlinked(self, tmp_path,
                                                     garble):
        import os

        value, path = self._first_run(tmp_path)
        with open(path, "w") as handle:
            handle.write(garble)
        again, cache = self._rerun(tmp_path)
        assert again == value
        assert cache.stats.errors >= 1

    def test_garbled_record_is_miss_and_unlinked(self, tmp_path):
        import json

        from repro.codegen import CODEGEN_VERSION

        value, path = self._first_run(tmp_path)
        # Valid JSON, current version -- but a function record the jit
        # engine would crash on.  Must recompile, not TypeError.
        with open(path, "w") as handle:
            json.dump({"version": CODEGEN_VERSION,
                       "functions": {"f": "garbage-not-a-dict"}}, handle)
        again, cache = self._rerun(tmp_path)
        assert again == value
        assert cache.stats.errors >= 1
        # A fresh, structurally valid sidecar was re-persisted in place.
        with open(path) as handle:
            payload = json.load(handle)
        record = payload["functions"]["f"]
        assert isinstance(record, dict)
        assert record["status"] in ("jit", "fallback")

    def test_unknown_status_is_miss(self, tmp_path):
        import json

        from repro.codegen import CODEGEN_VERSION

        value, path = self._first_run(tmp_path)
        with open(path, "w") as handle:
            json.dump({"version": CODEGEN_VERSION,
                       "functions": {"f": {"status": "wat"}}}, handle)
        again, cache = self._rerun(tmp_path)
        assert again == value
        assert cache.stats.errors >= 1

    def test_jit_record_without_source_is_miss(self, tmp_path):
        import json

        from repro.codegen import CODEGEN_VERSION

        value, path = self._first_run(tmp_path)
        with open(path, "w") as handle:
            json.dump({"version": CODEGEN_VERSION,
                       "functions": {"f": {"status": "jit",
                                           "source": None,
                                           "reason": None}}}, handle)
        again, cache = self._rerun(tmp_path)
        assert again == value
        assert cache.stats.errors >= 1


class TestDiskEviction:
    """Size-bounded disk tier: LRU eviction honours ``max_disk_bytes``
    without ever breaking the bit-identical-recompile contract."""

    @staticmethod
    def _entry_bytes(tmp_path, payload) -> int:
        probe = CompileCache(tmp_path / "probe", memory_slots=0)
        probe.put("probe", payload)
        _, total = probe.disk_usage()
        return total

    def test_budget_evicts_least_recently_stored(self, tmp_path):
        import os

        payload = b"x" * 1000
        one = self._entry_bytes(tmp_path, payload)
        cache = CompileCache(tmp_path / "c", memory_slots=0,
                             max_disk_bytes=2 * one + one // 2)
        for offset, key in enumerate(("a", "b", "c")):
            cache.put(key, payload)
            # Deterministic recency regardless of clock resolution.
            path = cache._path(key)
            if path.exists():
                os.utime(path, (1_000_000 + offset, 1_000_000 + offset))
        entries, total = cache.disk_usage()
        assert entries == 2
        assert total <= cache.max_disk_bytes
        assert cache.get("a") is None  # the oldest entry paid
        assert cache.get("b") is not None
        assert cache.get("c") is not None
        assert cache.stats.evictions == 1

    def test_disk_hit_refreshes_recency(self, tmp_path):
        import os

        payload = b"x" * 1000
        one = self._entry_bytes(tmp_path, payload)
        cache = CompileCache(tmp_path / "c", memory_slots=0,
                             max_disk_bytes=2 * one + one // 2)
        cache.put("a", payload)
        cache.put("b", payload)
        os.utime(cache._path("a"), (1_000_000, 1_000_000))
        os.utime(cache._path("b"), (1_000_010, 1_000_010))
        assert cache.get("a") is not None  # refreshes a's mtime to now
        cache.put("c", payload)
        assert cache.get("b") is None  # b, not the hot a, was LRU
        assert cache.get("a") is not None
        assert cache.get("c") is not None

    def test_codegen_sidecar_evicts_with_its_entry(self, tmp_path):
        import os

        payload = b"x" * 1000
        one = self._entry_bytes(tmp_path, payload)
        cache = CompileCache(tmp_path / "c", memory_slots=0,
                             max_disk_bytes=2 * one)
        cache.put("a", payload)
        cache.put_codegen("a", {"version": 1, "functions": {}})
        sidecar = (tmp_path / "c" / "a.vpcgen")
        assert sidecar.exists()
        os.utime(cache._path("a"), (1_000_000, 1_000_000))
        os.utime(sidecar, (1_000_000, 1_000_000))
        cache.put("b", payload)
        cache.put("c", payload)
        assert cache.get("a") is None
        assert not sidecar.exists()

    def test_evict_then_recompile_round_trip(self, tmp_path):
        """An evicted program costs exactly a recompile and the
        recompiled program is bit-identical to the evicted one."""
        other = source_for("gemm", "vpfloat<mpfr, 16, 256>")
        # Budget sized off the first program: holds one, not two.
        probe = CompileCache(tmp_path / "probe", memory_slots=0)
        CompilerDriver(backend="mpfr", cache=probe).compile(SOURCE,
                                                            name="m")
        _, one_program = probe.disk_usage()
        cache = CompileCache(tmp_path / "c", memory_slots=0,
                             max_disk_bytes=one_program + one_program // 2)
        driver = CompilerDriver(backend="mpfr", cache=cache)
        baseline = driver.compile(SOURCE, name="m").run("run", [4])
        driver.compile(other, name="m")  # evicts the first program
        assert cache.stats.evictions >= 1
        misses_before = cache.stats.misses
        rerun = driver.compile(SOURCE, name="m").run("run", [4])
        assert cache.stats.misses == misses_before + 1  # recompiled
        assert rerun.value == baseline.value
        assert rerun.report.cycles == baseline.report.cycles
        assert dict(rerun.report.by_category) == \
            dict(baseline.report.by_category)

    def test_unbounded_cache_never_evicts(self, tmp_path):
        cache = CompileCache(tmp_path / "c", memory_slots=0)
        for key in ("a", "b", "c", "d"):
            cache.put(key, b"x" * 10_000)
        entries, _ = cache.disk_usage()
        assert entries == 4
        assert cache.stats.evictions == 0

    def test_negative_budget_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            CompileCache(tmp_path / "c", max_disk_bytes=-1)
