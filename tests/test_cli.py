"""The vpfloat-cc command-line driver."""

import pytest

from repro.cli import main

SOURCE = """
double run(int n) {
  vpfloat<mpfr, 16, 200> s = 0.0;
  for (int i = 0; i < n; i++)
    s = s + 0.5;
  return (double)s;
}
"""

UNUM_SOURCE = SOURCE.replace("mpfr, 16, 200", "unum, 4, 7")


@pytest.fixture()
def source_file(tmp_path):
    path = tmp_path / "kernel.c"
    path.write_text(SOURCE)
    return str(path)


class TestCompileAndRun:
    def test_run_prints_result(self, source_file, capsys):
        assert main([source_file, "--run", "run", "--args", "8"]) == 0
        assert "run(...) = 4.0" in capsys.readouterr().out

    def test_report(self, source_file, capsys):
        assert main([source_file, "--run", "run", "--args", "8",
                     "--report"]) == 0
        out = capsys.readouterr().out
        assert "cycles:" in out
        assert "mpfr calls:" in out

    def test_emit_ir(self, source_file, capsys):
        assert main([source_file, "--emit-ir", "--backend", "none"]) == 0
        out = capsys.readouterr().out
        assert "define double @run" in out
        assert "vpfloat<mpfr, 16, 200>" in out

    def test_emit_asm_unum(self, tmp_path, capsys):
        path = tmp_path / "k.c"
        path.write_text(UNUM_SOURCE)
        assert main([str(path), "--backend", "unum", "--emit-asm",
                     "--run", "run", "--args", "6"]) == 0
        out = capsys.readouterr().out
        assert "sucfg" in out
        assert "run(...) = 3.0" in out

    def test_ablation_flags(self, source_file, capsys):
        assert main([source_file, "--no-reuse", "--no-specialize",
                     "--no-in-place", "--contract-fma",
                     "--run", "run", "--args", "4"]) == 0
        assert "run(...) = 2.0" in capsys.readouterr().out

    def test_opt_level_zero(self, source_file, capsys):
        assert main([source_file, "-O", "0", "--backend", "none",
                     "--run", "run", "--args", "4"]) == 0
        assert "run(...) = 2.0" in capsys.readouterr().out


class TestDiagnostics:
    def test_syntax_error_exit_code(self, tmp_path, capsys):
        path = tmp_path / "broken.c"
        path.write_text("int f( {")
        assert main([str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_semantic_error_position(self, tmp_path, capsys):
        path = tmp_path / "bad.c"
        path.write_text("void f() { undefined = 1; }")
        assert main([str(path)]) == 1
        err = capsys.readouterr().err
        assert "undeclared identifier" in err

    def test_wrong_backend_for_format(self, tmp_path, capsys):
        path = tmp_path / "k.c"
        path.write_text(SOURCE)
        assert main([str(path), "--backend", "unum"]) == 1
        assert "UNUM backend only lowers" in capsys.readouterr().err

    def test_runtime_trap_exit_code(self, tmp_path, capsys):
        path = tmp_path / "trap.c"
        path.write_text("""
        int f(int n) { return 10 / n; }
        """)
        assert main([str(path), "--backend", "none",
                     "--run", "f", "--args", "0"]) == 2
        assert "runtime error" in capsys.readouterr().err

    def test_bad_args_rejected(self, source_file):
        with pytest.raises(SystemExit):
            main([source_file, "--run", "run", "--args", "abc"])

    def test_emit_asm_requires_unum(self, source_file, capsys):
        assert main([source_file, "--emit-asm"]) == 1
        assert "--backend unum" in capsys.readouterr().err
