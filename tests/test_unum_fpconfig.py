"""FP configuration pass: sucfg placement across CFGs."""

import pytest

from repro.backends.unum_backend.asm import (
    AsmFunction,
    AsmInst,
    Imm,
    Label,
    VReg,
)
from repro.backends.unum_backend.fpconfig import FPConfigurationPass


def configs_in(block):
    return [i.opcode for i in block.instructions
            if i.opcode.startswith("sucfg")]


def gop(dest, a, b, config):
    return AsmInst("gadd", [VReg("g", dest), VReg("g", a), VReg("g", b)],
                   config=config)


CONF_A = (3, 6, 65, 11)
CONF_B = (4, 9, 513, 68)


class TestSingleConfig:
    def test_hoisted_once_to_entry(self):
        func = AsmFunction("f")
        entry = func.add_block("entry")
        loop = func.add_block("loop")
        entry.append(AsmInst("j", [Label("loop")]))
        loop.append(gop(1, 2, 3, CONF_A))
        loop.append(gop(4, 1, 1, CONF_A))
        loop.append(AsmInst("blt", [VReg("x", 1), Imm(10), Label("loop")]))
        loop.append(AsmInst("ret", []))
        inserted = FPConfigurationPass(func).run()
        assert inserted == 4  # ess, fss, wgp, mbb once
        assert configs_in(entry) == ["sucfg.ess", "sucfg.fss",
                                     "sucfg.wgp", "sucfg.mbb"]
        assert configs_in(loop) == []

    def test_no_g_instructions_no_config(self):
        func = AsmFunction("f")
        entry = func.add_block("entry")
        entry.append(AsmInst("li", [VReg("x", 1), Imm(0)]))
        entry.append(AsmInst("ret", []))
        assert FPConfigurationPass(func).run() == 0


class TestMultiConfig:
    def test_reconfigures_between_types(self):
        func = AsmFunction("f")
        entry = func.add_block("entry")
        entry.append(gop(1, 2, 3, CONF_A))
        entry.append(gop(4, 5, 6, CONF_B))
        entry.append(gop(7, 4, 4, CONF_B))  # same as previous: no change
        entry.append(AsmInst("ret", []))
        FPConfigurationPass(func).run()
        ops = [i.opcode for i in entry.instructions]
        # Config A before first op, config B before second, none before
        # the third.
        first_gadd = ops.index("gadd")
        assert "sucfg.ess" in ops[:first_gadd]
        second_region = ops[first_gadd + 1:]
        assert "sucfg.fss" in second_region
        assert ops.count("sucfg.fss") == 2

    def test_changed_fields_only(self):
        """Config changes emit writes only for the differing fields."""
        conf_a = (4, 6, 65, 12)
        conf_b = (4, 9, 513, 68)  # same ess, different fss/wgp/mbb
        func = AsmFunction("f")
        entry = func.add_block("entry")
        entry.append(gop(1, 2, 3, conf_a))
        entry.append(gop(4, 5, 6, conf_b))
        entry.append(AsmInst("ret", []))
        FPConfigurationPass(func).run()
        ops = [i.opcode for i in entry.instructions]
        assert ops.count("sucfg.ess") == 1  # unchanged field written once
        assert ops.count("sucfg.fss") == 2

    def test_branch_merge_reconfigures_conservatively(self):
        """Two sides of a branch using different configs: the merge block
        cannot assume either, so its g-op re-configures."""
        func = AsmFunction("f")
        entry = func.add_block("entry")
        left = func.add_block("left")
        right = func.add_block("right")
        merge = func.add_block("merge")
        entry.append(AsmInst("beq", [VReg("x", 1), Imm(0), Label("left")]))
        entry.append(AsmInst("j", [Label("right")]))
        left.append(gop(1, 2, 3, CONF_A))
        left.append(AsmInst("j", [Label("merge")]))
        right.append(gop(4, 5, 6, CONF_B))
        right.append(AsmInst("j", [Label("merge")]))
        merge.append(gop(7, 8, 9, CONF_A))
        merge.append(AsmInst("ret", []))
        FPConfigurationPass(func).run()
        assert configs_in(merge)  # must re-establish the configuration

    def test_agreeing_predecessors_skip_reconfig(self):
        func = AsmFunction("f")
        entry = func.add_block("entry")
        left = func.add_block("left")
        right = func.add_block("right")
        merge = func.add_block("merge")
        entry.append(AsmInst("beq", [VReg("x", 1), Imm(0), Label("left")]))
        entry.append(AsmInst("j", [Label("right")]))
        left.append(gop(1, 2, 3, CONF_A))
        left.append(AsmInst("j", [Label("merge")]))
        right.append(gop(4, 5, 6, CONF_A))
        right.append(AsmInst("j", [Label("merge")]))
        merge.append(gop(7, 8, 9, CONF_A))
        merge.append(AsmInst("ret", []))
        FPConfigurationPass(func).run()
        assert configs_in(merge) == []

    def test_dynamic_config_uses_wgpu(self):
        fss_reg = VReg("x", 5)
        dynamic = (4, fss_reg, "dynamic", 0)
        func = AsmFunction("f")
        func.arg_registers.append((fss_reg, "x"))
        entry = func.add_block("entry")
        entry.append(gop(1, 2, 3, dynamic))
        entry.append(AsmInst("ret", []))
        FPConfigurationPass(func).run()
        ops = [i.opcode for i in entry.instructions]
        assert "sucfg.wgpu" in ops  # runtime WGP derivation
        assert "sucfg.fss" in ops
