"""The example scripts must run end-to-end (they are documentation)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, argv=()):
    saved = sys.argv
    sys.argv = [name, *argv]
    try:
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    finally:
        sys.argv = saved


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "All three backends agree" in out
    assert "boost/vpfloat" in out


def test_cg_precision_explorer(capsys):
    run_example("cg_precision_explorer.py", ["24", "1e8"])
    out = capsys.readouterr().out
    assert "Runtime minimum" in out
    assert "Boost/vpfloat" in out


def test_accuracy_vs_precision(capsys):
    run_example("accuracy_vs_precision.py", ["trisolv", "8"])
    out = capsys.readouterr().out
    assert "log10(residual)" in out


def test_unum_coprocessor_tour(capsys):
    run_example("unum_coprocessor_tour.py")
    out = capsys.readouterr().out
    assert "sucfg" in out          # the generated assembly is shown
    assert "Byte-budget sweep" in out


def test_format_shootout(capsys):
    run_example("format_shootout.py", ["32"])
    out = capsys.readouterr().out
    assert "posit sweet spot" in out
    assert "wide dynamic range" in out
    # All four contenders appear in each table.
    assert out.count("posit <2, 32>") == 2


def test_unknown_kernel_rejected():
    with pytest.raises(SystemExit):
        run_example("accuracy_vs_precision.py", ["not-a-kernel"])
