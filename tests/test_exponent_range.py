"""The mpfr *exp-info* attribute: exponent-range overflow/underflow."""

import pytest

from repro import compile_source

TEMPLATE = """
double grow(int n) {
  vpfloat<mpfr, EXP, 64> x = 2.0;
  for (int i = 0; i < n; i++) x = x * x;
  return (double)x;
}
double shrink(int n) {
  vpfloat<mpfr, EXP, 64> x = 0.5;
  for (int i = 0; i < n; i++) x = x * x;
  return (double)x;
}
"""


def program(exp_bits):
    return compile_source(TEMPLATE.replace("EXP", str(exp_bits)),
                          backend="none")


class TestExponentRange:
    def test_overflow_to_infinity(self):
        """With 6 exponent bits the limit is 2**32: 2**(2**6) overflows."""
        p = program(6)
        assert p.run("grow", [4], cache=False).value == 2.0 ** 16
        assert p.run("grow", [6], cache=False).value == float("inf")

    def test_underflow_to_zero(self):
        p = program(6)
        assert p.run("shrink", [4], cache=False).value == 2.0 ** -16
        assert p.run("shrink", [6], cache=False).value == 0.0

    def test_wide_exponent_never_clamps_here(self):
        p = program(16)
        assert p.run("grow", [6], cache=False).value == 2.0 ** 64
        assert p.run("shrink", [6], cache=False).value == 2.0 ** -64

    def test_sign_preserved_through_overflow(self):
        source = """
        double f(int n) {
          vpfloat<mpfr, 6, 64> x = 0.0 - 2.0;
          for (int i = 0; i < n; i++) x = x * x * (0.0 - 1.0);
          return (double)x;
        }
        """
        p = compile_source(source, backend="none")
        assert p.run("f", [6], cache=False).value == float("-inf")

    def test_range_boundary_exact(self):
        """2**32 is the last finite value at exp-bits=6 (limit 2**32,
        values in [2**31, 2**32) have exponent 32)."""
        source = """
        double f(double x) {
          vpfloat<mpfr, 6, 64> v = x;
          v = v * 2.0;
          return (double)v;
        }
        """
        p = compile_source(source, backend="none")
        # 2**31 * 2 = 2**32: exponent 33 > limit? exponent of 2**32 is 33
        # in MPFR convention... value 2**32 lies in [2**32, 2**33) ->
        # exponent 33 > 32: overflow.
        assert p.run("f", [2.0 ** 30], cache=False).value == 2.0 ** 31
        assert p.run("f", [2.0 ** 32], cache=False).value == float("inf")
