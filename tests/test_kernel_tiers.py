"""Tests for the precision-specialized kernel tier.

Four layers, matching the feature's own structure:

* the *inlined rounding blocks* the smallfloat emitter folds into its
  kernels must match :func:`round_significand` bit-for-bit across all
  five rounding modes, both signs, and the sticky/exact boundaries at
  precisions 1..128 (hypothesis, with the tie/exact edges enumerated);
* the *compiled tiered kernels* must be bit-identical to the
  ``arith.<op>`` library on finite, special, and mixed-precision
  operands (the latter exercising the fallback hooks);
* the *selection and plumbing*: policy validation on the driver and
  per-run overrides, fingerprint separation, TierStats accounting,
  metrics counters, the batched numpy tier's "small"-policy lane-floor
  waiver, and the service run-option whitelist;
* a *pinned-seed lockstep* sweep of the differential fuzzer's
  tier stage, the same corpus shape CI replays.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat.arith import add as lib_add
from repro.bigfloat.number import BigFloat, Kind
from repro.bigfloat.rounding import (
    RNDA,
    RNDD,
    RNDN,
    RNDU,
    RNDZ,
    round_significand,
)
from repro.codegen.batch_np_kernels import NP_MIN_LANES, _min_lanes
from repro.codegen.smallfloat import (
    KERNEL_TIER_POLICIES,
    SMALLFLOAT_MAX_PREC,
    TierStats,
    _exact_round_lines,
    _window_round_lines,
    kernel_tier,
    select_scalar_kernel,
    smallfloat_kernel,
    smallfloat_source,
    tier_label,
)
from repro.codegen.smallfloat import _LIBRARY as SCALAR_LIBRARY
from repro.core import CompileCache, CompilerDriver, CompileOptions
from repro.runtime.batch import BatchContext
from repro.validation.certificate import TRANSITIONS, value_token

ALL_MODES = (RNDN, RNDZ, RNDU, RNDD, RNDA)

SOURCE = """
vpfloat<mpfr, 16, 53> out;
int run(int n) {
    vpfloat<mpfr, 16, 53> acc = 0.0;
    vpfloat<mpfr, 16, 53> step = 1.25;
    for (int i = 0; i < n; i = i + 1) { acc = acc + step * step; }
    out = acc;
    return n;
}
"""


# ----------------------------------------------------------------- #
# Inlined rounding blocks vs round_significand
# ----------------------------------------------------------------- #

def _compile_rounder(lines, params):
    source = "\n".join([f"def _f({params}):"] + lines
                       + ["    return _q, _e"])
    namespace = {}
    exec(source, namespace)
    return namespace["_f"]


def exact_rounder(prec, rm):
    """The emitter's exact-operand rounding block as a function of
    ``(_s, _m, _e) -> (_q, _e)``."""
    return _compile_rounder(_exact_round_lines(prec, rm, "    "),
                            "_s, _m, _e")


def window_rounder(prec, rm):
    """The emitter's sticky-window rounding block as a function of
    ``(_s, _t, _e, _st) -> (_q, _e)``."""
    return _compile_rounder(_window_round_lines(prec, rm, "    "),
                            "_s, _t, _e, _st")


@st.composite
def rounding_cases(draw, sticky_window=False):
    """(prec, rm, sign, mant, exp[, sticky]) with the discarded-bits
    boundaries (exact, just-below-half, half, just-above, all-ones)
    explicitly enumerated alongside fully random windows."""
    prec = draw(st.integers(1, SMALLFLOAT_MAX_PREC))
    rm = draw(st.sampled_from(ALL_MODES))
    sign = draw(st.integers(0, 1))
    exp = draw(st.integers(-2000, 2000))
    min_shift = 1 if sticky_window else 0
    shift = draw(st.integers(min_shift, 80))
    quotient = draw(st.integers(1 << (prec - 1), (1 << prec) - 1)) \
        if prec > 1 else 1
    if shift == 0:
        low = 0
    else:
        half = 1 << (shift - 1)
        mask = (1 << shift) - 1
        low = draw(st.one_of(
            st.sampled_from(sorted({0, max(half - 1, 0), half,
                                    min(half + 1, mask), mask})),
            st.integers(0, mask)))
    mant = (quotient << shift) | low
    if not sticky_window:
        return prec, rm, sign, mant, exp
    return prec, rm, sign, mant, exp, draw(st.booleans())


@settings(max_examples=400, deadline=None)
@given(rounding_cases())
def test_exact_round_block_matches_round_significand(case):
    prec, rm, sign, mant, exp, = case
    got = exact_rounder(prec, rm)(sign, mant, exp)
    want = round_significand(sign, mant, exp, prec, rm)[:2]
    assert got == want, (prec, rm, sign, mant, exp)


@settings(max_examples=400, deadline=None)
@given(rounding_cases(sticky_window=True))
def test_window_round_block_matches_round_significand(case):
    prec, rm, sign, mant, exp, sticky = case
    got = window_rounder(prec, rm)(sign, mant, exp, sticky)
    want = round_significand(sign, mant, exp, prec, rm,
                             sticky=sticky)[:2]
    assert got == want, (prec, rm, sign, mant, exp, sticky)


def test_exact_round_block_cancellation_widens():
    # Fewer bits than prec (post-cancellation shape): widen, no round.
    for rm in ALL_MODES:
        assert exact_rounder(8, rm)(0, 0b101, 3) \
            == round_significand(0, 0b101, 3, 8, rm)[:2]


# ----------------------------------------------------------------- #
# Compiled tiered kernels vs the arith library
# ----------------------------------------------------------------- #

def _finite(draw, prec):
    sign = draw(st.integers(0, 1))
    mant = draw(st.integers(1 << (prec - 1), (1 << prec) - 1)) \
        if prec > 1 else 1
    exp = draw(st.integers(-300, 300))
    return BigFloat(Kind.FINITE, sign, mant, exp, prec)


@st.composite
def operand(draw, prec):
    kind = draw(st.sampled_from(["finite", "finite", "finite",
                                 "zero", "inf", "nan"]))
    if kind == "finite":
        return _finite(draw, prec)
    if kind == "zero":
        return BigFloat.zero(prec, draw(st.integers(0, 1)))
    if kind == "inf":
        return BigFloat.inf(prec, draw(st.integers(0, 1)))
    return BigFloat.nan(prec)


@st.composite
def kernel_cases(draw):
    prec = draw(st.sampled_from((1, 2, 7, 24, 53, 63, 64,
                                 65, 100, 127, 128)))
    op = draw(st.sampled_from(("add", "sub", "mul", "div",
                               "fma", "fms", "sqrt")))
    rm = draw(st.sampled_from(ALL_MODES))
    arity = 1 if op == "sqrt" else (3 if op in ("fma", "fms") else 2)
    args = tuple(draw(operand(prec)) for _ in range(arity))
    return op, prec, rm, args


@settings(max_examples=300, deadline=None)
@given(kernel_cases())
def test_tiered_kernels_match_library(case):
    op, prec, rm, args = case
    got = smallfloat_kernel(op, prec, rm)(*args)
    want = SCALAR_LIBRARY[op](*args, prec, rm)
    assert value_token(got) == value_token(want), (op, prec, rm, args)


@settings(max_examples=150, deadline=None)
@given(kernel_cases())
def test_tiered_kernels_match_library_with_clamp(case):
    op, prec, rm, args = case
    from repro.codegen.kernels import specialized_kernel
    got = smallfloat_kernel(op, prec, rm, exp_bits=8)(*args)
    want = specialized_kernel(op, prec, rm, exp_bits=8)(*args)
    assert value_token(got) == value_token(want), (op, prec, rm, args)


def test_mixed_precision_falls_back_with_note():
    notes_stats = TierStats()
    kernel = smallfloat_kernel("add", 24, RNDN,
                               notes=notes_stats.notes())
    a = BigFloat.from_float(1.5, 24)
    b = BigFloat.from_float(2.5, 53)  # operand precision mismatch
    got = kernel(a, b)
    assert value_token(got) == value_token(lib_add(a, b, 24, RNDN))
    assert notes_stats.fallbacks["prec"] == 1
    assert notes_stats.fallbacks["special"] == 0


def test_special_operand_falls_back_with_note():
    notes_stats = TierStats()
    kernel = smallfloat_kernel("add", 24, RNDN,
                               notes=notes_stats.notes())
    kernel(BigFloat.nan(24), BigFloat.from_float(1.0, 24))
    assert notes_stats.fallbacks["special"] == 1


def test_tier_boundaries():
    assert kernel_tier(1) == 1
    assert kernel_tier(64) == 1
    assert kernel_tier(65) == 2
    assert kernel_tier(128) == 2
    assert kernel_tier(129) == 0
    assert tier_label(24) == "tier1"
    assert tier_label(100) == "tier2"
    assert tier_label(256) == "generic"
    with pytest.raises(ValueError):
        smallfloat_source("add", 129)
    with pytest.raises(ValueError):
        smallfloat_source("bogus", 24)


# ----------------------------------------------------------------- #
# Selection, plumbing, and telemetry
# ----------------------------------------------------------------- #

def test_select_scalar_kernel_policies():
    stats = TierStats()
    select_scalar_kernel("add", 24, None, "auto", stats)
    assert stats.sites["tier1"] == 1
    select_scalar_kernel("add", 100, None, "small", stats)
    assert stats.sites["tier2"] == 1
    select_scalar_kernel("add", 24, None, "generic", stats)
    assert stats.sites["generic"] == 1


def test_counting_wrapper_and_merge():
    stats = TierStats()
    kernel = stats.counting(
        "tier1", smallfloat_kernel("add", 24, RNDN))
    a = BigFloat.from_float(1.0, 24)
    kernel(a, a)
    kernel(a, a)
    assert stats.ops["tier1"] == 2
    other = TierStats()
    other.ops["generic"] = 3
    stats.merge(other)
    assert stats.total_ops() == 5
    snap = stats.as_dict()
    assert snap["ops"]["tier1"] == 2 and snap["ops"]["generic"] == 3


def test_driver_rejects_unknown_policy():
    with pytest.raises(ValueError):
        CompilerDriver(backend="mpfr", kernel_tier="fast")


def test_run_rejects_unknown_policy():
    program = CompilerDriver(backend="mpfr").compile(SOURCE, name="k")
    with pytest.raises(ValueError):
        program.run("run", [4], kernel_tier="fast")


def test_fingerprints_differ_by_tier():
    options = CompileOptions(backend="mpfr")
    prints = {CompileCache.fingerprint(SOURCE, options, name="k",
                                       engine="jit", kernel_tier=tier)
              for tier in KERNEL_TIER_POLICIES}
    assert len(prints) == len(KERNEL_TIER_POLICIES)


def test_per_run_override_is_bit_identical():
    program = CompilerDriver(backend="mpfr", engine="jit").compile(
        SOURCE, name="k")
    assert program._kernel_tier == "auto"
    runs = {tier: program.run("run", [40], kernel_tier=tier)
            for tier in KERNEL_TIER_POLICIES}
    tokens = {tier: value_token(r.value) for tier, r in runs.items()}
    assert len(set(tokens.values())) == 1
    cycles = {r.report.cycles for r in runs.values()}
    assert len(cycles) == 1  # the tier is not a cost-model change


def test_metrics_carry_tier_counters():
    from repro.observability import telemetry_session
    with telemetry_session(metrics=True) as (_, registry):
        program = CompilerDriver(backend="mpfr", engine="jit").compile(
            SOURCE, name="k")
        program.run("run", [10])
    tiered = {k: v for k, v in registry.counters.items()
              if k.startswith("kernel.tier.")}
    assert tiered.get("kernel.tier.tier1.ops", 0) > 0
    assert tiered.get("kernel.tier.tier1.sites", 0) > 0


def test_unobserved_runs_skip_tier_stats():
    program = CompilerDriver(backend="mpfr", engine="jit").compile(
        SOURCE, name="k")
    interp = program.interpreter()
    assert interp.tier_stats is None  # raw kernels, no counting


def test_batch_np_small_policy_waives_lane_floor():
    assert _min_lanes(BatchContext(lanes=4, kernel_tier="small")) == 1
    assert _min_lanes(BatchContext(lanes=4)) == NP_MIN_LANES
    assert _min_lanes(None) == NP_MIN_LANES


def test_service_whitelists_kernel_tier():
    from repro.service.protocol import RUN_OPTION_KEYS
    assert "kernel_tier" in RUN_OPTION_KEYS


def test_transition_table_has_tier_edge():
    assert TRANSITIONS["generic↔specialized"] == "exact"


def test_validate_tiers_certificate():
    from repro.validation import validate_tiers
    cert = validate_tiers(SOURCE, "run", [12], backend="mpfr",
                          engine="jit", name="k", lanes=3)
    assert cert.passed
    assert cert.kind == "kernel-tier"
    labels = {check.label for check in cert.checks}
    assert "tier.generic" in labels
    assert any(label.startswith("tier.generic.batch")
               for label in labels)


# ----------------------------------------------------------------- #
# Pinned-seed fuzzer lockstep (the corpus CI replays)
# ----------------------------------------------------------------- #

PINNED_SEED = 20260809


def test_fuzzer_tier_lockstep_pinned_corpus():
    from repro.validation.fuzzer import cross_check_tiers, \
        generate_program
    rng = random.Random(PINNED_SEED)
    for _ in range(5):
        program = generate_program(rng, max_ops=8)
        mismatch = cross_check_tiers(program)
        assert mismatch is None, mismatch
