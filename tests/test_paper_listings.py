"""The paper's own code listings, compiled (near-)verbatim.

Listing 2 (axpy/gemm with mpfr and unum types), Listing 3 (dynamic-type
interaction at call boundaries) and Listing 4 (the variable-precision
BLAS interface) are the paper's specification of the programming model;
this suite keeps the toolchain honest against them.
"""

import pytest

from repro import compile_source
from repro.bigfloat import BigFloat
from repro.lang import SemanticError, analyze, parse
from repro.runtime import VPRuntimeError

LISTING2 = """
void axpy_mpfrconst(int N,
                    vpfloat<mpfr, 16, 256> alpha,
                    vpfloat<mpfr, 16, 256> *X,
                    vpfloat<mpfr, 16, 256> *Y) {
    for (unsigned i = 0; i < N; ++i)
        Y[i] = alpha * X[i] + Y[i];
}

void axpy_mpfr(unsigned prec, int N,
               vpfloat<mpfr, 16, prec> alpha,
               vpfloat<mpfr, 16, prec> *X,
               vpfloat<mpfr, 16, prec> *Y) {
    for (unsigned i = 0; i < N; ++i)
        Y[i] = alpha * X[i] + Y[i];
}

void axpy_unumconst(int N,
                    vpfloat<unum, 4, 6, 8> alpha,
                    vpfloat<unum, 4, 6, 8> *X,
                    vpfloat<unum, 4, 6, 8> *Y) {
  for (unsigned i = 0; i < N; ++i)
    Y[i] = alpha * X[i] + Y[i];
}

void gemm_unum(unsigned prec, int M, int N,
               double *A,
               vpfloat<unum, 4, prec> alpha,
               vpfloat<unum, 4, prec> *X,
               vpfloat<unum, 4, prec> *Y) {
  for (unsigned i = 0; i < M; ++i) {
    vpfloat<unum, 4, prec> alphaAX = 0.0;
    for (unsigned j = 0; j < N; ++j)
      alphaAX += A[i*N + j] * X[j];
    Y[i] = alpha * alphaAX;
  }
}
"""


class TestListing2:
    def test_compiles_through_every_backend(self):
        compile_source(LISTING2, backend="none")
        compile_source(LISTING2, backend="mpfr")
        compile_source(LISTING2, backend="boost")

    def test_gemm_unum_executes(self):
        driver = LISTING2 + """
        double drive(unsigned prec, int m, int n) {
          double A[64];
          vpfloat<unum, 4, prec> alpha = 2.0;
          vpfloat<unum, 4, prec> X[8];
          vpfloat<unum, 4, prec> Y[8];
          for (int i = 0; i < m*n; i++) A[i] = 1.0;
          for (int i = 0; i < n; i++) X[i] = i;
          gemm_unum(prec, m, n, A, alpha, X, Y);
          double s = 0.0;
          for (int i = 0; i < m; i++) s = s + (double)Y[i];
          return s;
        }
        """
        program = compile_source(driver, backend="none")
        # sum_j j = 28 per row; alpha*28 = 56; 8 rows -> 448.
        assert program.run("drive", [7, 8, 8], cache=False).value == 448.0

    def test_axpy_variants_agree(self):
        driver = LISTING2 + """
        double drive(int n) {
          vpfloat<mpfr, 16, 256> a = 1.5;
          vpfloat<mpfr, 16, 256> X[8];
          vpfloat<mpfr, 16, 256> Y1[8];
          vpfloat<mpfr, 16, 256> Y2[8];
          for (int i = 0; i < n; i++) { X[i] = i; Y1[i] = 1.0; Y2[i] = 1.0; }
          axpy_mpfrconst(n, a, X, Y1);
          axpy_mpfr(256, n, a, X, Y2);
          double diff = 0.0;
          for (int i = 0; i < n; i++) diff = diff + (double)(Y1[i] - Y2[i]);
          return diff;
        }
        """
        program = compile_source(driver, backend="mpfr")
        assert program.run("drive", [8]).value == 0.0


LISTING3 = """
void vaxpy(unsigned precision, int n,
           vpfloat<mpfr, 16, precision> a,
           vpfloat<mpfr, 16, precision> *X,
           vpfloat<mpfr, 16, precision> *Y) {}
"""


class TestListing3:
    def test_line_10_compile_time_error(self):
        """vaxpy(100, ...) with 200-bit arguments: caught statically."""
        source = LISTING3 + """
        void example_dynamic_type(unsigned p) {
          vpfloat<mpfr, 16, 200> a;
          vpfloat<mpfr, 16, 200> X[10];
          vpfloat<mpfr, 16, 200> Y[10];
          vaxpy(100, 10, a, X, Y);
        }
        """
        with pytest.raises(SemanticError, match="compile-time mismatch"):
            analyze(parse(source))

    def test_line_11_const_match_ok(self):
        source = LISTING3 + """
        void example_dynamic_type(unsigned p) {
          vpfloat<mpfr, 16, 200> a;
          vpfloat<mpfr, 16, 200> X[10];
          vpfloat<mpfr, 16, 200> Y[10];
          vaxpy(200, 10, a, X, Y);
        }
        """
        compile_source(source, backend="none")

    def test_line_14_runtime_check(self):
        """vaxpy(200, ..., a_dyn, ...) is OK iff p == 200 at runtime."""
        source = LISTING3 + """
        void example_dynamic_type(unsigned p) {
          vpfloat<mpfr, 16, p> a_dyn;
          vpfloat<mpfr, 16, p> X_dyn[10];
          vpfloat<mpfr, 16, p> Y_dyn[10];
          vaxpy(200, 10, a_dyn, X_dyn, Y_dyn);
        }
        """
        program = compile_source(source, backend="none")
        program.run("example_dynamic_type", [200])  # OK when p == 200
        with pytest.raises(VPRuntimeError, match="attribute mismatch"):
            program.run("example_dynamic_type", [100])

    def test_line_17_mutated_attribute_error(self):
        """++p invalidates the previously-created dynamic types."""
        source = LISTING3 + """
        void example_dynamic_type(unsigned p) {
          vpfloat<mpfr, 16, p> a_dyn;
          vpfloat<mpfr, 16, p> X_dyn[10];
          vpfloat<mpfr, 16, p> Y_dyn[10];
          vaxpy(p, 10, a_dyn, X_dyn, Y_dyn);
          ++p;
          vaxpy(p, 10, a_dyn, X_dyn, Y_dyn);
        }
        """
        program = compile_source(source, backend="none")
        with pytest.raises(VPRuntimeError, match="attribute mismatch"):
            program.run("example_dynamic_type", [100])

    def test_dyn_return_type(self):
        """Listing 3's example_dyn_type_return compiles and runs."""
        source = """
        vpfloat<mpfr, 16, prec>
          example_dyn_type_return(unsigned prec) {
          vpfloat<mpfr, 16, prec> a = 1.3;
          return a;
        }
        double drive(unsigned q) {
          vpfloat<mpfr, 16, q> x;
          x = example_dyn_type_return(q);
          return (double)x;
        }
        """
        program = compile_source(source, backend="none")
        assert program.run("drive", [120]).value == pytest.approx(1.3)

    def test_dyn_return_type_error(self):
        """example_dyn_type_return_error: 'prec' undeclared."""
        source = """
        vpfloat<mpfr, 16, prec>
          example_dyn_type_return_error(unsigned p) {
          vpfloat<mpfr, 16, p> a = 1.3;
          return a;
        }
        """
        with pytest.raises(SemanticError,
                           match="does not name an in-scope"):
            analyze(parse(source))


class TestListing4:
    def test_blas_interface_runs_cg_step(self):
        """One hand-rolled CG-flavoured step over the Listing 4 BLAS."""
        from repro.blas import VBLAS_DIALECT_SOURCE

        source = VBLAS_DIALECT_SOURCE + """
        double drive(unsigned prec, int n) {
          double A[64];
          vpfloat<mpfr, 16, prec> x[8];
          vpfloat<mpfr, 16, prec> r[8];
          vpfloat<mpfr, 16, prec> one = 1.0;
          vpfloat<mpfr, 16, prec> zero = 0.0;
          for (int i = 0; i < n*n; i++) A[i] = 0.0;
          for (int i = 0; i < n; i++) {
            A[i*n+i] = 2.0;
            x[i] = 1.0;
            r[i] = 0.0;  // MPFR-initialized objects start as NaN
          }
          // r = A x  (expect all 2s), then r += x -> 3s, dot = 9n.
          vgemv(prec, n, n, one, A, x, zero, r);
          vaxpy(prec, n, one, x, r);
          vpfloat<mpfr, 16, prec> d = vdot(prec, n, r, r);
          return (double)d;
        }
        """
        program = compile_source(source, backend="mpfr")
        assert program.run("drive", [200, 8]).value == 9.0 * 8

    def test_same_source_multiple_precisions_single_compile(self):
        """'a single run of the application, without recompilation,
        enables ... multiple precision configurations' (§IV-C)."""
        from repro.blas import VBLAS_DIALECT_SOURCE

        source = VBLAS_DIALECT_SOURCE + """
        double residual(unsigned prec, int n) {
          vpfloat<mpfr, 16, prec> x[4];
          vpfloat<mpfr, 16, prec> acc = 0.0;
          for (int i = 0; i < n; i++) x[i] = 1.0;
          for (int i = 0; i < n; i++) acc = acc + x[i] / 3.0;
          return (double)(acc * 3.0 - (double)n);
        }
        """
        program = compile_source(source, backend="mpfr")  # compile ONCE
        errors = [abs(program.run("residual", [p, 4]).value)
                  for p in (60, 120, 240, 480)]
        assert errors[0] >= errors[-1]
