"""IR-level profiler tests: exact attribution, sampling, flamegraphs.

The exact profiler's contract is conservation: per-instruction model
cycles, summed over every record (including the ``<overhead>``
pseudo-record for outermost call/return costs), equal the run's
CostReport total *exactly* -- and hooking the interpreter must not
perturb the modeled execution at all.
"""

import pytest

from repro.core import CompilerDriver
from repro.observability.profile import (
    OVERHEAD,
    divergence,
    profile_run,
    sample_jit_run,
)
from repro.workloads.polybench import source_for

MPFR = "vpfloat<mpfr, 16, 128>"


def _compile(kernel):
    driver = CompilerDriver(backend="mpfr")
    return driver.compile(source_for(kernel, MPFR),
                          name=f"{kernel}-profile")


@pytest.mark.parametrize("kernel,n", [("gemm", 6), ("jacobi-1d", 12)])
def test_exact_attribution_sums_to_report_total(kernel, n):
    program = _compile(kernel)
    reference = program.run("run", [n], engine="legacy")
    profile = profile_run(program, "run", [n])
    # Conservation: every modeled cycle lands on exactly one record.
    assert profile.attributed_cycles() == profile.total_cycles
    # ... and hooking did not perturb the model.
    assert profile.total_cycles == reference.report.cycles
    assert int(profile.result.value) == int(reference.value)


def test_exact_profile_attributes_real_opcodes():
    profile = profile_run(_compile("gemm"), "run", [6])
    by_opcode = profile.by_opcode()
    assert OVERHEAD in by_opcode
    assert len(by_opcode) > 3  # real instruction mix, not one bucket
    total = sum(cycles for _, cycles, _ in by_opcode.values())
    assert total == profile.total_cycles


def test_exact_profile_rows_and_render():
    profile = profile_run(_compile("gemm"), "run", [4])
    rows = profile.rows(limit=5)
    assert 0 < len(rows) <= 5
    # Rows are heaviest-first by cycles for the exact profiler.
    cycles = [row[5] for row in rows]
    assert cycles == sorted(cycles, reverse=True)
    assert profile.render(limit=5)


def test_collapsed_stacks_write_and_weights(tmp_path):
    profile = profile_run(_compile("gemm"), "run", [6])
    path = tmp_path / "gemm.collapsed"
    profile.write_collapsed(path)
    lines = path.read_text().strip().splitlines()
    assert lines
    total = 0
    for line in lines:
        stack, _, weight = line.rpartition(" ")
        assert stack and ";" in stack or stack  # func;...;block:opcode
        total += int(weight)
    # Collapsed-stack weights are the same conserved cycle total.
    assert total == profile.total_cycles


def test_divergence_report_shapes():
    model = profile_run(_compile("gemm"), "run", [4])
    rows = divergence(model, wall=None, threshold=0.0, min_share=0.0)
    assert isinstance(rows, list)
    for row in rows:
        assert row.factor >= 0.0
        assert isinstance(row.render(), str)


def test_sampled_jit_profile_runs_and_maps_lines():
    program = _compile("gemm")
    profile = sample_jit_run(program, "run", [8], interval=0.0001)
    assert profile.kind == "sampled"
    assert int(profile.result.value) == \
        int(program.run("run", [8], engine="jit").value)
    # Exact hot-block counts come from the jit's block-count hook even
    # when the wall sampler caught nothing (tiny run, slow box).
    assert profile.block_counts


def test_jit_line_maps_registered():
    from repro.codegen.pyjit import LINE_MAPS

    program = _compile("gemm")
    program.run("run", [4], engine="jit")
    entry = LINE_MAPS.get("<vpjit:kernel_gemm>")
    assert entry, f"no jit line map registered: {sorted(LINE_MAPS)}"
    assert all(isinstance(k, int) for k in entry)
    assert all(len(loc) == 3 for loc in entry.values())
