"""Runtime MPFR object pool: reuse semantics, statistics, bit-exactness."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_source
from repro.bigfloat.mpfr_api import MpfrLibrary
from repro.evaluation.harness import run_kernel
from repro.workloads.polybench import source_for


class TestPoolMechanics:
    def test_acquire_miss_then_hit(self):
        lib = MpfrLibrary(pool=True)
        a, reused = lib.acquire(128)
        assert not reused
        assert lib.release(a) is True  # parked, not freed
        b, reused = lib.acquire(128)
        assert reused
        assert b is a  # the very handle comes back
        assert b.alive and b.value.is_nan()  # re-init leaves NaN
        assert lib.stats.pool_hits == 1
        assert lib.stats.pool_misses == 1
        assert lib.stats.pool_releases == 1

    def test_pool_buckets_by_precision(self):
        lib = MpfrLibrary(pool=True)
        a, _ = lib.acquire(128)
        lib.release(a)
        b, reused = lib.acquire(256)  # different precision: no reuse
        assert not reused
        assert lib.pooled_objects() == 1
        c, reused = lib.acquire(128)
        assert reused and c is a
        assert lib.pooled_objects() == 0
        assert b.prec == 256 and c.prec == 128

    def test_pool_limit_caps_parked_handles(self):
        lib = MpfrLibrary(pool=True, pool_limit=2)
        vars_ = [lib.acquire(64)[0] for _ in range(4)]
        parked = [lib.release(v) for v in vars_]
        assert parked == [True, True, False, False]
        assert lib.pooled_objects() == 2
        assert lib.stats.clears == 2  # only the overflow actually freed

    def test_pool_disabled_by_default(self):
        lib = MpfrLibrary()
        a = lib.init2(128)
        lib.clear(a)
        b = lib.init2(128)
        assert b is not a
        assert lib.stats.pool_hits == 0
        assert lib.pooled_objects() == 0

    def test_hit_rate(self):
        lib = MpfrLibrary(pool=True)
        assert lib.stats.pool_hit_rate() == 0.0
        a, _ = lib.acquire(64)
        lib.release(a)
        lib.acquire(64)
        assert lib.stats.pool_hit_rate() == 0.5

    def test_exp_bits_reset_on_reuse(self):
        lib = MpfrLibrary(pool=True)
        a, _ = lib.acquire(64, exp_bits=8)
        lib.release(a)
        b, reused = lib.acquire(64, exp_bits=12)
        assert reused and b.exp_bits == 12


# --------------------------------------------------------------------- #
# Pooled arithmetic is bit-identical to unpooled
# --------------------------------------------------------------------- #

# Small grammar of interleaved init/compute/clear programs: each step
# either allocates a fresh object from a literal, combines two live
# objects, or clears one (making its handle eligible for reuse).
_ops = st.sampled_from(["add", "sub", "mul", "div"])
_steps = st.lists(
    st.tuples(st.sampled_from(["new", "op", "drop"]),
              st.integers(0, 7), st.integers(0, 7), _ops,
              st.floats(min_value=-1e6, max_value=1e6,
                        allow_nan=False, allow_infinity=False)),
    min_size=1, max_size=40)


def _run_program(lib, steps, prec):
    """Interpret the step list against one library; return result bits."""
    live = []
    trace = []
    for kind, i, j, op, literal in steps:
        if kind == "new" or not live:
            var = lib.init2(prec)
            lib.set_d(var, literal)
            live.append(var)
        elif kind == "op" and len(live) >= 2:
            dst = live[i % len(live)]
            a = live[j % len(live)]
            b = live[(i + j) % len(live)]
            getattr(lib, op)(dst, a, b)
        else:  # drop
            victim = live.pop(i % len(live))
            trace.append(None)
            lib.clear(victim)
        trace.extend((v.value.kind, v.value.sign, v.value.mant,
                      v.value.exp) for v in live)
    for v in live:
        lib.clear(v)
    return trace


class TestPooledBitExactness:
    @settings(max_examples=60, deadline=None)
    @given(_steps, st.sampled_from([24, 53, 128]))
    def test_pooled_matches_unpooled(self, steps, prec):
        pooled = _run_program(MpfrLibrary(pool=True), steps, prec)
        plain = _run_program(MpfrLibrary(pool=False), steps, prec)
        assert pooled == plain


# --------------------------------------------------------------------- #
# End-to-end: the pool eliminates allocations across repeated runs
# --------------------------------------------------------------------- #

class TestPoolOnKernels:
    def test_gemm_fresh_inits_strictly_drop_across_runs(self):
        source_outcome = run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 6,
                                    backend="mpfr", read_outputs=False,
                                    pool=False)
        unpooled_inits = source_outcome.mpfr_stats.inits
        assert unpooled_inits > 0

        program = compile_source(
            source_for("gemm", "vpfloat<mpfr, 16, 128>"), backend="mpfr")
        interp = program.interpreter(pool=True)
        interp.run("run", [6])
        first_run_inits = interp.mpfr.stats.inits
        interp.run("run", [6])
        second_run_inits = interp.mpfr.stats.inits - first_run_inits
        # Run 1 allocates like the unpooled baseline; run 2 recycles.
        assert first_run_inits == unpooled_inits
        assert second_run_inits < first_run_inits
        assert interp.mpfr.stats.pool_hits > 0

    def test_pooled_gemm_outputs_bit_identical(self):
        plain = run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 5,
                           backend="mpfr", pool=False)
        pooled = run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 5,
                            backend="mpfr", pool=True)

        def bits(outputs):
            return [(v.kind, v.sign, v.mant, v.exp) for v in outputs]

        assert bits(pooled.outputs) == bits(plain.outputs)
        assert pooled.report.instructions == plain.report.instructions

    def test_boost_backend_stays_unpooled_by_default(self):
        outcome = run_kernel("gemm", "vpfloat<mpfr, 16, 128>", 4,
                             backend="boost", read_outputs=False)
        assert outcome.mpfr_stats.pool_hits == 0
        assert outcome.mpfr_stats.pool_releases == 0
