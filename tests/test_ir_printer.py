"""IR textual rendering: stable, readable dumps (used by --emit-ir)."""

import pytest

from repro import compile_source
from repro.codegen import generate_ir
from repro.lang import analyze, parse


def ir_text(source, **kwargs):
    program = compile_source(source, backend=kwargs.pop("backend", "none"),
                             **kwargs)
    return str(program.module)


class TestPrinting:
    def test_function_header_and_types(self):
        text = ir_text("""
        vpfloat<mpfr, 16, 200> f(unsigned p, vpfloat<mpfr, 16, p> x,
                                 double d) {
          vpfloat<mpfr, 16, 200> y = d;
          return y;
        }
        """, opt_level=0)
        assert "define vpfloat<mpfr, 16, 200> @f(" in text
        assert "vpfloat<mpfr, 16, %p> %x" in text
        assert "double %d" in text

    def test_block_labels_and_branches(self):
        text = ir_text("""
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i++) s = s + i;
          return s;
        }
        """)
        assert "for.cond" in text
        assert "br %cmp" in text
        assert "phi i32" in text

    def test_vpfloat_literals_carry_suffix(self):
        text = ir_text("""
        double f() {
          vpfloat<mpfr, 16, 100> a = 1.5;
          vpfloat<unum, 3, 6> b = 2.5;
          return (double)a + (double)b;
        }
        """, opt_level=0)
        assert "y" in text  # mpfr literal suffix
        assert "1.5" in text

    def test_lowered_module_shows_mpfr_calls(self):
        text = ir_text("""
        double f(int n, vpfloat<mpfr, 16, 128> *X) {
          vpfloat<mpfr, 16, 128> s = 0.0;
          for (int i = 0; i < n; i++) s = s + X[i] * X[i];
          return (double)s;
        }
        """, backend="mpfr")
        assert "call @mpfr_init2" in text
        assert "call @mpfr_mul" in text
        assert "call @mpfr_clear" in text
        assert "%__mpfr_struct" in text

    def test_in_place_store_needs_no_object(self):
        """x[i] = x[i]*x[i] lowers to a single in-place call: no temp, no
        init -- worth pinning as a golden behaviour."""
        text = ir_text("""
        void f(int n, vpfloat<mpfr, 16, 128> *X) {
          for (int i = 0; i < n; i++) X[i] = X[i] * X[i];
        }
        """, backend="mpfr")
        assert "call @mpfr_init2" not in text
        assert text.count("call @mpfr_mul") == 1

    def test_declarations_rendered(self):
        text = ir_text("""
        double helper(double x);
        double f(double x) { return helper(x); }
        """, enable_inlining=False)
        assert "declare double @helper(double" in text

    def test_memset_shown_after_idiom(self):
        text = ir_text("""
        void f(int n, vpfloat<unum, 3, 6> *X) {
          for (int i = 0; i < n; i++) X[i] = 0.0;
        }
        """)
        assert "call @memset" in text

    def test_module_header(self):
        module = generate_ir(analyze(parse("int f() { return 1; }")),
                             name="demo")
        assert str(module).startswith("; module demo")

    def test_rendering_is_deterministic(self):
        source = """
        double f(int n) {
          vpfloat<mpfr, 16, 128> s = 0.0;
          for (int i = 0; i < n; i++) s = s + 1.0;
          return (double)s;
        }
        """
        assert ir_text(source) == ir_text(source)
