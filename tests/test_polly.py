"""Polly-lite: SCoP detection, legality, tiling correctness."""

import pytest

from repro import compile_source
from repro.lang import analyze, parse
from repro.passes.polly import PollyLite, find_tilable_nests, optimize_unit


def tilable_count(source):
    unit = analyze(parse(source))
    return len(find_tilable_nests(unit))


GEMM = """
void gemm(int n, double *C, double *A, double *B) {
  for (int i = 0; i < n; i++)
    for (int k = 0; k < n; k++)
      for (int j = 0; j < n; j++)
        C[i*n+j] = C[i*n+j] + A[i*n+k] * B[k*n+j];
}
"""


class TestDetection:
    def test_gemm_nest_detected(self):
        assert tilable_count(GEMM) == 1

    def test_reduction_into_scalar_rejected(self):
        """A scalar accumulator across the nest is a loop-carried
        dependence: tiling the outer loops would reorder it."""
        source = """
        double f(int n, double *A) {
          double s = 0.0;
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              s = s + A[i*n+j];
          return s;
        }
        """
        assert tilable_count(source) == 0

    def test_local_temporary_allowed(self):
        source = """
        void f(int n, double *A, double *B) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
              double t = A[i*n+j] * 2.0;
              B[i*n+j] = t;
            }
        }
        """
        assert tilable_count(source) == 1

    def test_shifted_self_access_rejected(self):
        """Stencil with A written and read at different offsets."""
        source = """
        void f(int n, double *A) {
          for (int i = 1; i < n; i++)
            for (int j = 1; j < n; j++)
              A[i*n+j] = A[i*n+j-1] + A[(i-1)*n+j];
        }
        """
        assert tilable_count(source) == 0

    def test_triangular_bound_rejected(self):
        source = """
        void f(int n, double *A) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < i; j++)
              A[i*n+j] = 2.0 * A[i*n+j];
        }
        """
        assert tilable_count(source) == 0

    def test_call_in_body_rejected(self):
        source = """
        void f(int n, double *A) {
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              A[i*n+j] = sqrt(A[i*n+j]);
        }
        """
        assert tilable_count(source) == 0

    def test_single_loop_not_deep_enough(self):
        source = """
        void f(int n, double *A) {
          for (int i = 0; i < n; i++)
            A[i] = 2.0 * A[i];
        }
        """
        assert tilable_count(source) == 0

    def test_omp_loop_left_alone(self):
        source = """
        void f(int n, double *A, double *B) {
          #pragma omp parallel for
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++)
              B[i*n+j] = A[i*n+j];
        }
        """
        assert tilable_count(source) == 0


class TestTransformation:
    def test_tiling_preserves_semantics(self):
        driver = GEMM + """
        double run(int n) {
          double C[n*n]; double A[n*n]; double B[n*n];
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
              C[i*n+j] = 0.0;
              A[i*n+j] = (double)((i*j+1) % n);
              B[i*n+j] = (double)((i+j) % n);
            }
          gemm(n, C, A, B);
          double s = 0.0;
          for (int i = 0; i < n*n; i++) s = s + C[i] * (i % 7);
          return s;
        }
        """
        plain = compile_source(driver, backend="none")
        tiled = compile_source(driver, backend="none", polly=True,
                               polly_tile=4)
        assert tiled.tiled_nests == 2  # init nest + gemm nest
        a = plain.run("run", [10], cache=False).value
        b = tiled.run("run", [10], cache=False).value
        assert a == b

    def test_tile_structure(self):
        unit = analyze(parse(GEMM))
        count = PollyLite(tile_size=8).run(unit)
        assert count == 1
        unit = analyze(unit)  # must re-analyze cleanly
        func = unit.functions()[0]
        # The nest is now 6 loops deep: 3 tile + 3 point.
        depth = 0
        stmt = func.body.statements[0]
        from repro.lang import ast

        while isinstance(stmt, ast.For):
            depth += 1
            inner = stmt.body
            if isinstance(inner, ast.Block) and len(inner.statements) == 1:
                inner = inner.statements[0]
            stmt = inner
        assert depth == 6

    def test_tiling_improves_cache_behaviour(self):
        """On a matrix working set larger than L1, tiling must not hurt
        (and normally helps) the modeled hit rate."""
        driver = GEMM + """
        double run(int n) {
          double C[n*n]; double A[n*n]; double B[n*n];
          for (int i = 0; i < n; i++)
            for (int j = 0; j < n; j++) {
              C[i*n+j] = 0.0;
              A[i*n+j] = 1.0;
              B[i*n+j] = 2.0;
            }
          gemm(n, C, A, B);
          return C[0];
        }
        """
        n = 40  # 3 * 40*40*8B = 38 KB > 32 KB L1
        plain = compile_source(driver, backend="none")
        tiled = compile_source(driver, backend="none", polly=True,
                               polly_tile=8)
        r_plain = plain.run("run", [n])
        r_tiled = tiled.run("run", [n])
        assert r_plain.value == r_tiled.value == 80.0
        miss_plain = r_plain.report.cache_hits
        # L1 hits should not degrade with tiling.
        assert r_tiled.report.cache_hits[0] >= 0.95 * miss_plain[0]
