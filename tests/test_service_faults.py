"""Fault injection against the compile/run daemon.

Every scenario here kills, hangs, corrupts, or disconnects something
mid-flight and asserts the daemon's contract: it stays up, retries
within bounds, never drops unrelated requests, and keeps replies
bit-identical across faults.  All scenarios are deterministic --
workers are parked on file latches and progress is observed through
the inline ``stats``/``ping`` ops, never inferred from sleeps.
"""

import asyncio

from repro.service import ServiceError

from service_utils import (
    FTYPE,
    connect,
    park_worker,
    serial_digest,
    service,
    wait_until,
)


def test_worker_death_is_retried_and_unrelated_requests_survive(tmp_path):
    """A shard dying mid-request costs one bounded retry; a request
    queued behind the fault is served untouched."""

    async def scenario():
        async with service(tmp_path, workers=1, max_retries=1) as daemon:
            client = await connect(daemon)
            other = await connect(daemon)
            latch = tmp_path / "died-once"
            fault_id = await client.send("debug", action="die_once",
                                         path=str(latch))
            run_id = await other.send("run", kernel="trmm",
                                      ftype=FTYPE, n=4, backend="mpfr")
            fault = await client.reply(fault_id)
            assert fault["ok"], fault
            assert fault["result"]["survived"] is True
            assert fault["result"]["attempts"] == 2
            run = await other.reply(run_id)
            assert run["ok"], run
            assert run["result"]["digest"] == serial_digest("trmm", 4)
            counters = daemon.registry.counters
            assert counters.get("service.worker_deaths") == 1
            assert counters.get("service.retries") == 1
            await client.close()
            await other.close()

    asyncio.run(scenario())


def test_permanent_worker_death_yields_bounded_structured_error(tmp_path):
    """A request that kills every shard it touches exhausts its retry
    budget and fails structurally; the daemon itself stays healthy."""

    async def scenario():
        async with service(tmp_path, workers=1, max_retries=1) as daemon:
            client = await connect(daemon)
            reply = await client.reply(
                await client.send("debug", action="die"))
            assert not reply["ok"]
            assert reply["error"]["code"] == "worker_failed"
            assert reply["error"]["attempts"] == 2
            assert daemon.registry.counters.get(
                "service.worker_deaths") == 2
            # The pool was rebuilt: real work still executes.
            result = await client.call("run", kernel="trmm",
                                       ftype=FTYPE, n=4,
                                       backend="mpfr")
            assert result["digest"] == serial_digest("trmm", 4)
            await client.close()

    asyncio.run(scenario())


def test_hung_worker_trips_timeout_and_is_reaped(tmp_path):
    """A shard that stops responding hits the per-attempt deadline,
    is reaped, and its slot serves the next request."""

    async def scenario():
        async with service(tmp_path, workers=1, max_retries=0,
                           request_timeout=2.0) as daemon:
            client = await connect(daemon)
            hung_pid = daemon.workers[0].pid
            reply = await client.reply(
                await client.send("debug", action="hang"))
            assert not reply["ok"]
            assert reply["error"]["code"] == "timeout"
            assert daemon.registry.counters.get("service.timeouts") == 1
            assert daemon.workers[0].pid != hung_pid
            result = await client.call("run", kernel="trmm",
                                       ftype=FTYPE, n=4,
                                       backend="mpfr")
            assert result["digest"] == serial_digest("trmm", 4)
            await client.close()

    asyncio.run(scenario())


def test_corrupt_store_entry_recompiles_bit_identically(tmp_path):
    """Corrupting artifact-store entries between daemon lifetimes is
    absorbed: the poisoned pickles count as store errors, the program
    recompiles, and the reply digest is unchanged."""

    async def scenario_prime():
        async with service(tmp_path, workers=1) as daemon:
            client = await connect(daemon)
            result = await client.call("run", kernel="trmm",
                                       ftype=FTYPE, n=4,
                                       backend="mpfr")
            await client.close()
            return result["digest"]

    async def scenario_corrupted():
        # A fresh daemon: new shards with empty memory tiers, so the
        # poisoned disk entries are actually read.
        async with service(tmp_path, workers=1) as daemon:
            client = await connect(daemon)
            result = await client.call("run", kernel="trmm",
                                       ftype=FTYPE, n=4,
                                       backend="mpfr")
            stats = await client.call("stats")
            await client.close()
            return result["digest"], stats

    digest = asyncio.run(scenario_prime())
    store = tmp_path / "store"
    poisoned = 0
    for entry in store.glob("*.vpc"):
        entry.write_bytes(b"not a pickle")
        poisoned += 1
    assert poisoned, "priming run stored nothing"
    redigest, stats = asyncio.run(scenario_corrupted())
    assert redigest == digest
    assert stats["counters"].get("service.store.errors", 0) >= 1


def test_client_disconnect_mid_reply_does_not_kill_daemon(tmp_path):
    """A client vanishing while its request executes: the reply is
    dropped on the floor and every other client is unaffected."""

    async def scenario():
        async with service(tmp_path, workers=1) as daemon:
            doomed = await connect(daemon)
            watcher = await connect(daemon)
            latch = tmp_path / "release"
            await park_worker(daemon, doomed, latch)
            # The worker is now executing on doomed's behalf; vanish.
            await doomed.close()
            await wait_until(lambda: len(daemon.clients) == 1,
                             message="daemon to notice the disconnect")
            latch.touch()
            # The daemon must survive replying into the void and keep
            # serving the remaining client.
            result = await watcher.call("run", kernel="trmm",
                                        ftype=FTYPE, n=4,
                                        backend="mpfr")
            assert result["digest"] == serial_digest("trmm", 4)
            ping = await watcher.call("ping")
            assert ping["pong"] is True
            await watcher.close()

    asyncio.run(scenario())


def test_queued_requests_from_vanished_client_are_not_executed(tmp_path):
    """Requests still queued (not yet dispatched) when their client
    disconnects are discarded, not run on a dead connection's behalf."""

    async def scenario():
        async with service(tmp_path, workers=1) as daemon:
            doomed = await connect(daemon)
            watcher = await connect(daemon)
            latch = tmp_path / "release"
            await park_worker(daemon, watcher, latch)
            await doomed.send("run", kernel="trmm", ftype=FTYPE, n=4,
                              backend="mpfr")
            await wait_until(lambda: daemon._pending_count() == 1,
                             message="doomed request to queue")
            await doomed.close()
            await wait_until(lambda: len(daemon.clients) == 1,
                             message="daemon to notice the disconnect")
            latch.touch()
            reply = await watcher.reply(1)  # the parked debug request
            assert reply["ok"]
            stats = await watcher.call("stats")
            assert stats["pending"] == 0
            assert stats["counters"].get("service.op.run", 0) == 1
            # The orphan never dispatched.
            assert stats["counters"].get("service.dispatches", 0) == 1
            await watcher.close()

    asyncio.run(scenario())


def test_debug_ops_are_rejected_without_opt_in(tmp_path):
    """The fault-injection side door is closed by default."""

    async def scenario():
        async with service(tmp_path, workers=1,
                           allow_debug=False) as daemon:
            client = await connect(daemon)
            try:
                await client.call("debug", action="die")
                raise AssertionError("debug op was accepted")
            except ServiceError as error:
                assert error.code == "unsupported"
            await client.close()

    asyncio.run(scenario())
