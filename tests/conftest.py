"""Shared test fixtures.

The persistent compile cache honours ``VPFLOAT_CACHE_DIR``; tests are
redirected into a per-session temporary directory so runs stay hermetic
(nothing is written to, or read from, the user's real cache).
"""

import pytest


@pytest.fixture(autouse=True)
def _hermetic_compile_cache(tmp_path_factory, monkeypatch):
    cache_dir = tmp_path_factory.getbasetemp() / "vpfloat-cache"
    monkeypatch.setenv("VPFLOAT_CACHE_DIR", str(cache_dir))
