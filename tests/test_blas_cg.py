"""Variable-precision BLAS, matrices, and the CG solver (Fig. 3 core)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import BigFloat
from repro.blas import (
    BlasOps,
    vaxpy,
    vcopy,
    vdot,
    vfrom,
    vgemv,
    vnorm2,
    vscal,
    vzero,
)
from repro.solvers import (
    CSRMatrix,
    bcsstk20_like,
    condition_estimate,
    conjugate_gradient,
    from_coordinates,
    load_matrix_market,
    precision_sweep,
    rhs_for,
    save_matrix_market,
)


def bf(x, prec=200):
    return BigFloat.from_value(x, prec)


class TestBlas:
    def test_vaxpy(self):
        y = vaxpy(100, bf(2), vfrom([1, 2, 3], 100), vfrom([10, 20, 30], 100))
        assert [v.to_float() for v in y] == [12.0, 24.0, 36.0]

    def test_vscal(self):
        x = vscal(100, bf(0.5), vfrom([2, 4], 100))
        assert [v.to_float() for v in x] == [1.0, 2.0]

    def test_vdot(self):
        assert vdot(100, vfrom([1, 2, 3], 100),
                    vfrom([4, 5, 6], 100)).to_float() == 32.0

    def test_vnorm2(self):
        assert vnorm2(100, vfrom([3, 4], 100)).to_float() == 5.0

    def test_vgemv_identity(self):
        eye = from_coordinates(3, 3, {(i, i): 1.0 for i in range(3)})
        x = vfrom([1, 2, 3], 120)
        y = vgemv(120, bf(1), eye, x, bf(0), vzero(3, 120))
        assert [v.to_float() for v in y] == [1.0, 2.0, 3.0]

    def test_vgemv_alpha_beta(self):
        a = from_coordinates(2, 2, {(0, 0): 1.0, (0, 1): 2.0,
                                    (1, 0): 3.0, (1, 1): 4.0})
        x = vfrom([1, 1], 120)
        y = vfrom([10, 10], 120)
        out = vgemv(120, bf(2), a, x, bf(0.5), y)
        assert [v.to_float() for v in out] == [2 * 3 + 5, 2 * 7 + 5]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            vdot(100, vfrom([1], 100), vfrom([1, 2], 100))
        with pytest.raises(ValueError):
            vaxpy(100, bf(1), vfrom([1], 100), vfrom([1, 2], 100))

    def test_ops_accounting(self):
        ops = BlasOps()
        vaxpy(100, bf(2), vfrom([1] * 5, 100), vfrom([1] * 5, 100), ops)
        assert ops.muls == 5
        assert ops.adds == 5
        cycles_low = ops.cycles(100)
        cycles_high = ops.cycles(500)
        assert cycles_high > cycles_low
        assert ops.cycles(100, per_op_temp=True) > cycles_low

    @given(st.integers(min_value=64, max_value=400))
    @settings(max_examples=10, deadline=None)
    def test_dot_precision_consistency(self, prec):
        """Dot at any precision within 1 ulp-ish of exact rational."""
        x = vfrom([0.1, 0.2, 0.3], prec)
        y = vfrom([3.0, 2.0, 1.0], prec)
        got = vdot(prec, x, y).to_float()
        assert got == pytest.approx(0.3 + 0.4 + 0.3, rel=1e-12)


class TestMatrices:
    def test_bcsstk20_like_is_spd_shaped(self):
        a = bcsstk20_like(n=24, condition=1e8)
        assert a.nrows == a.ncols == 24
        dense = a.to_dense()
        for i in range(24):
            assert dense[i][i] > 0
            for j in range(24):
                assert dense[i][j] == dense[j][i]
            # Diagonally dominant by construction.
            off = sum(abs(dense[i][j]) for j in range(24) if j != i)
            assert dense[i][i] > off

    def test_condition_grows_with_parameter(self):
        low = condition_estimate(bcsstk20_like(n=24, condition=1e4))
        high = condition_estimate(bcsstk20_like(n=24, condition=1e10))
        assert high > low * 100

    def test_deterministic(self):
        a = bcsstk20_like(n=16)
        b = bcsstk20_like(n=16)
        assert a.data == b.data

    def test_matrix_market_round_trip(self, tmp_path):
        a = bcsstk20_like(n=12, condition=1e6)
        path = tmp_path / "test.mtx"
        save_matrix_market(a, str(path), comment="fixture")
        b = load_matrix_market(str(path))
        assert b.nrows == a.nrows
        assert b.to_dense() == a.to_dense()

    def test_matrix_market_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.mtx"
        path.write_text("not a matrix\n1 2 3\n")
        with pytest.raises(ValueError):
            load_matrix_market(str(path))

    def test_csr_matvec(self):
        a = from_coordinates(2, 2, {(0, 0): 2.0, (1, 1): 3.0})
        assert a.matvec([1.0, 1.0]) == [2.0, 3.0]
        assert a.nnz == 2


class TestConjugateGradient:
    def setup_method(self):
        self.matrix = bcsstk20_like(n=24, condition=1e6)
        self.b = rhs_for(self.matrix)

    def test_converges_and_solves(self):
        result = conjugate_gradient(self.matrix, self.b, 200,
                                    tolerance=1e-10)
        assert result.converged
        # Verify A x ~ b in plain floats.
        x = [v.to_float() for v in result.x]
        ax = self.matrix.matvec(x)
        scale = max(abs(v) for v in self.b)
        for got, want in zip(ax, self.b):
            assert got == pytest.approx(want, abs=1e-6 * max(1.0, scale))

    def test_higher_precision_fewer_iterations(self):
        """The paper's Fig. 3 headline claim."""
        low = conjugate_gradient(self.matrix, self.b, 60, tolerance=1e-8)
        high = conjugate_gradient(self.matrix, self.b, 300,
                                  tolerance=1e-8)
        assert high.iterations < low.iterations

    def test_residual_history_decreases_overall(self):
        result = conjugate_gradient(self.matrix, self.b, 200,
                                    tolerance=1e-10)
        history = result.residual_history
        assert history[-1] < history[0]

    def test_op_counts_scale_with_iterations(self):
        low = conjugate_gradient(self.matrix, self.b, 60, tolerance=1e-8)
        high = conjugate_gradient(self.matrix, self.b, 300,
                                  tolerance=1e-8)
        assert low.ops.muls > high.ops.muls

    def test_modeled_costs_ordering(self):
        result = conjugate_gradient(self.matrix, self.b, 200,
                                    tolerance=1e-8)
        vp = result.modeled_cycles()
        boost = result.modeled_cycles(per_op_temp=True)
        julia = result.modeled_cycles(overhead_factor=9.0)
        assert boost > vp
        assert julia == pytest.approx(9 * vp)

    def test_sweep_shapes(self):
        points = precision_sweep(self.matrix, self.b,
                                 (60, 120, 300), tolerance=1e-8)
        iterations = [p.iterations for p in points]
        assert iterations == sorted(iterations, reverse=True)
        assert all(p.cycles_boost > p.cycles_vpfloat for p in points)

    def test_x0_start(self):
        result = conjugate_gradient(self.matrix, self.b, 200,
                                    tolerance=1e-10)
        warm = conjugate_gradient(self.matrix, self.b, 200,
                                  tolerance=1e-10, x0=result.x)
        assert warm.iterations <= 1
