"""UNUM backend internals: asm structures, liveness, allocation."""

import pytest

from repro.backends.unum_backend.asm import (
    AsmBlock,
    AsmFunction,
    AsmInst,
    Imm,
    Label,
    PReg,
    StackSlot,
    VReg,
)
from repro.backends.unum_backend.regalloc import LinearScanAllocator


def make_linear_function(n_live: int) -> AsmFunction:
    """n_live simultaneously-live x vregs, then a sum reducing them."""
    func = AsmFunction("f")
    block = func.add_block("entry")
    regs = [VReg("x", i + 1) for i in range(n_live)]
    for i, reg in enumerate(regs):
        block.append(AsmInst("li", [reg, Imm(i)]))
    acc = VReg("x", n_live + 1)
    block.append(AsmInst("li", [acc, Imm(0)]))
    current = acc
    for i, reg in enumerate(regs):
        nxt = VReg("x", n_live + 2 + i)
        block.append(AsmInst("add", [nxt, current, reg]))
        current = nxt
    block.append(AsmInst("ret", [current]))
    return func


class TestAsmStructures:
    def test_defs_and_uses(self):
        inst = AsmInst("add", [VReg("x", 1), VReg("x", 2), VReg("x", 3)])
        assert inst.defs() == [VReg("x", 1)]
        assert inst.uses() == [VReg("x", 2), VReg("x", 3)]

    def test_store_has_no_def(self):
        inst = AsmInst("stu", [VReg("g", 1), VReg("x", 2)])
        assert inst.defs() == []
        assert set(inst.uses()) == {VReg("g", 1), VReg("x", 2)}

    def test_config_registers_counted_as_uses(self):
        inst = AsmInst("gadd", [VReg("g", 1), VReg("g", 2), VReg("g", 3)],
                       config=(VReg("x", 9), VReg("x", 10), "dynamic", 0))
        assert VReg("x", 9) in inst.uses()
        assert VReg("x", 10) in inst.uses()

    def test_text_rendering(self):
        func = AsmFunction("axpy")
        block = func.add_block("entry")
        block.append(AsmInst("li", [PReg("x", 1), Imm(7)], comment="n"))
        block.append(AsmInst("j", [Label("loop")]))
        text = str(func)
        assert "axpy" in text
        assert "li x1, 7  # n" in text
        assert "j .loop" in text


class TestLinearScan:
    def test_no_spill_under_pressure_limit(self):
        func = make_linear_function(8)
        LinearScanAllocator(func).run()
        opcodes = [i.opcode for i in func.instructions()]
        assert "sdspill" not in opcodes
        assert "ldspill" not in opcodes
        # Everything is physical now.
        for inst in func.instructions():
            for op in inst.operands:
                assert not isinstance(op, VReg)

    def test_spills_beyond_register_file(self):
        func = make_linear_function(40)  # > 29 allocatable x registers
        LinearScanAllocator(func).run()
        opcodes = [i.opcode for i in func.instructions()]
        assert "sdspill" in opcodes
        assert "ldspill" in opcodes
        assert func.frame_slots > 0

    def test_disjoint_ranges_share_registers(self):
        """Sequential short-lived values must reuse physical registers."""
        func = AsmFunction("f")
        block = func.add_block("entry")
        sink = VReg("x", 999)
        block.append(AsmInst("li", [sink, Imm(0)]))
        for i in range(100):  # far more values than registers
            reg = VReg("x", i + 1)
            block.append(AsmInst("li", [reg, Imm(i)]))
            nxt = VReg("x", 200 + i)
            block.append(AsmInst("add", [nxt, sink, reg]))
            sink = nxt
        block.append(AsmInst("ret", [sink]))
        LinearScanAllocator(func).run()
        assert "sdspill" not in [i.opcode for i in func.instructions()]

    def test_loop_carried_value_lives_across_backedge(self):
        """A value defined before a loop and used inside it must stay
        allocated across the whole loop."""
        func = AsmFunction("f")
        entry = func.add_block("entry")
        loop = func.add_block("loop")
        done = func.add_block("done")
        invariant = VReg("x", 1)
        counter = VReg("x", 2)
        entry.append(AsmInst("li", [invariant, Imm(42)]))
        entry.append(AsmInst("li", [counter, Imm(0)]))
        entry.append(AsmInst("j", [Label("loop")]))
        nxt = VReg("x", 3)
        loop.append(AsmInst("add", [nxt, counter, invariant]))
        loop.append(AsmInst("mv", [counter, nxt]))
        loop.append(AsmInst("blt", [counter, Imm(100), Label("loop")]))
        loop.append(AsmInst("j", [Label("done")]))
        done.append(AsmInst("ret", [counter]))
        allocator = LinearScanAllocator(func)
        intervals = allocator._intervals()
        # The invariant's interval must span into the loop block.
        start, end = intervals[invariant]
        positions = allocator._positions()
        loop_start, loop_end = positions[1]
        assert end >= loop_end  # live through the backedge

    def test_g_class_allocated_independently(self):
        func = AsmFunction("f")
        block = func.add_block("entry")
        g1, g2, x1 = VReg("g", 1), VReg("g", 2), VReg("x", 1)
        block.append(AsmInst("gli", [g1, Imm(1)]))
        block.append(AsmInst("gli", [g2, Imm(2)]))
        block.append(AsmInst("li", [x1, Imm(3)]))
        g3 = VReg("g", 3)
        block.append(AsmInst("gadd", [g3, g1, g2]))
        block.append(AsmInst("ret", [g3]))
        LinearScanAllocator(func).run()
        classes = set()
        for inst in func.instructions():
            for op in inst.operands:
                if isinstance(op, PReg):
                    classes.add(op.cls)
        assert classes == {"g", "x"}
