"""Decimal conversion: parsing, formatting, round trips."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bigfloat import (
    BigFloat,
    decimal_digits_for,
    from_str,
    log10_magnitude,
    to_str,
)


class TestParsing:
    def test_simple(self):
        assert from_str("1.5", 53).to_float() == 1.5
        assert from_str("-0.25", 53).to_float() == -0.25
        assert from_str("100", 53).to_float() == 100.0

    def test_exponent_forms(self):
        assert from_str("1e3", 53).to_float() == 1000.0
        assert from_str("2.5E-2", 53).to_float() == 0.025
        assert from_str("+1.25e+2", 53).to_float() == 125.0

    def test_leading_dot(self):
        assert from_str(".5", 53).to_float() == 0.5

    def test_special_tokens(self):
        assert from_str("inf", 53).is_inf()
        assert from_str("-Infinity", 53).sign == 1
        assert from_str("nan", 53).is_nan()

    def test_signed_zero(self):
        assert from_str("-0.0", 53).sign == 1
        assert from_str("0", 53).sign == 0

    def test_invalid_raises(self):
        for bad in ("", "abc", "1.2.3", "e5", "--1"):
            with pytest.raises(ValueError):
                from_str(bad, 53)

    def test_one_point_three_binary64(self):
        """'1.3' must parse to exactly the binary64 nearest value at 53b."""
        assert from_str("1.3", 53).to_float() == 1.3

    def test_correct_rounding_vs_float_parse(self):
        for text in ("3.14159265358979", "2.718281828459045", "1e-5",
                     "123456.789012345", "9.87654321e20"):
            assert from_str(text, 53).to_float() == float(text)


class TestFormatting:
    def test_specials(self):
        assert to_str(BigFloat.nan()) == "nan"
        assert to_str(BigFloat.inf()) == "inf"
        assert to_str(BigFloat.inf(53, 1)) == "-inf"
        assert to_str(BigFloat.zero()) == "0.0"
        assert to_str(BigFloat.zero(53, 1)) == "-0.0"

    def test_explicit_digits(self):
        x = from_str("1.25", 53)
        assert to_str(x, 3) == "1.25e+00"

    def test_small_magnitude(self):
        x = from_str("1.5e-40", 200)
        assert to_str(x, 2) == "1.5e-40"

    def test_large_magnitude(self):
        x = from_str("7e99", 200)
        text = to_str(x, 2)
        assert text.startswith("7.0e+99")

    def test_negative(self):
        assert to_str(from_str("-2.0", 53), 2) == "-2.0e+00"

    def test_digit_default_round_trips(self):
        assert decimal_digits_for(53) >= 17


@given(st.floats(allow_nan=False, allow_infinity=False, allow_subnormal=False,
                 min_value=-1e200, max_value=1e200).filter(lambda x: x != 0))
def test_round_trip_through_string(x):
    text = to_str(BigFloat.from_float(x, 53))
    assert from_str(text, 53).to_float() == x


@given(st.integers(min_value=1, max_value=10**40),
       st.integers(min_value=1, max_value=10**40))
def test_round_trip_high_precision_rationals(num, den):
    x = BigFloat.from_fraction(num, den, 180)
    text = to_str(x)
    assert from_str(text, 180) == x


class TestLog10Magnitude:
    def test_powers_of_ten(self):
        for k in (-30, -1, 0, 1, 5, 30):
            x = from_str(f"1e{k}", 120)
            assert abs(log10_magnitude(x) - k) < 1e-9

    def test_huge_exponent_does_not_overflow(self):
        x = BigFloat.from_fraction(1, 1 << 5000, 100)
        assert log10_magnitude(x) < -1000

    def test_specials(self):
        assert log10_magnitude(BigFloat.zero()) == -math.inf
        assert log10_magnitude(BigFloat.inf()) == math.inf
        assert math.isnan(log10_magnitude(BigFloat.nan()))
