"""Unified telemetry subsystem: tracer, metrics registry, validators.

Covers the tentpole guarantees: span nesting / Chrome-trace validity,
MetricsRegistry round-trips and merges, the absorb adapters over the
stack's pre-existing stats objects, the vpfloat-stats validators, and
the install/restore semantics of the process-global telemetry hooks.
"""

import json

import pytest

from repro.core import CompileCache, CompilerDriver, compile_source
from repro.observability import (
    CAT_COMPILE,
    CAT_RUNTIME,
    MetricsRegistry,
    Tracer,
    current_metrics,
    current_tracer,
    enable_telemetry,
    install_telemetry,
    telemetry_enabled,
    telemetry_session,
)
from repro.observability.stats import (
    ValidationError,
    main as stats_main,
    render_codegen_summary,
    render_trace_summary,
    validate_metrics_document,
    validate_trace_document,
)

SRC = """
double run(int n) {
  vpfloat<mpfr, 16, 256> s = 0.0;
  for (int i = 0; i < n; i = i + 1) {
    s = s + 1.5;
  }
  return (double)s;
}
"""


@pytest.fixture(autouse=True)
def _no_leaked_telemetry():
    """Every test starts and ends with telemetry disabled."""
    previous = install_telemetry(None, None)
    try:
        yield
    finally:
        install_telemetry(*previous)


class TestTracer:
    def test_span_nesting_and_chrome_export(self):
        tracer = Tracer(pid=1)
        with tracer.span("outer", cat=CAT_COMPILE):
            with tracer.span("inner", cat=CAT_COMPILE):
                pass
        with tracer.span("sibling", cat=CAT_RUNTIME):
            pass
        doc = tracer.to_chrome()
        validate_trace_document(doc)
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in spans}
        assert names == {"outer", "inner", "sibling"}
        outer = next(e for e in spans if e["name"] == "outer")
        inner = next(e for e in spans if e["name"] == "inner")
        # Inner nests strictly within outer on the same track.
        assert inner["ts"] >= outer["ts"]
        assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"]
        assert inner["tid"] == outer["tid"]
        # Timestamps are normalized: the earliest span starts at ~0.
        assert min(e["ts"] for e in spans) == 0

    def test_metadata_names_processes(self):
        tracer = Tracer(pid=7)
        with tracer.span("s"):
            pass
        doc = tracer.to_chrome()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert any(e["pid"] == 7 and e["name"] == "process_name"
                   for e in meta)

    def test_instant_and_counter_events(self):
        tracer = Tracer(pid=1)
        tracer.instant("marker")
        tracer.counter("pool", {"hits": 3, "misses": 1})
        doc = tracer.to_chrome()
        validate_trace_document(doc)
        phases = sorted(e["ph"] for e in tracer.events)
        assert phases == ["C", "i"]

    def test_extend_merges_foreign_events(self):
        parent = Tracer(pid=1)
        child = Tracer(pid=2)
        with child.span("shard"):
            pass
        parent.extend(child.events)
        doc = parent.to_chrome()
        validate_trace_document(doc)
        assert {e["pid"] for e in doc["traceEvents"]
                if e["ph"] == "X"} == {2}

    def test_export_writes_json(self, tmp_path):
        tracer = Tracer(pid=1)
        with tracer.span("s"):
            pass
        path = tmp_path / "t.json"
        tracer.export(str(path))
        data = json.loads(path.read_text())
        validate_trace_document(data)


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 2)
        reg.gauge("g", 5)
        reg.gauge("g", 3)  # gauges keep the last value in-process
        reg.observe("h", 256)
        reg.observe("h", 256)
        reg.observe("h", 512)
        assert reg.counters["a"] == 3
        assert reg.gauges["g"] == 3
        assert reg.histograms["h"] == {256: 2, 512: 1}

    def test_round_trip_and_validation(self):
        reg = MetricsRegistry()
        reg.inc("c", 4)
        reg.gauge("g", 1.5)
        reg.observe("h", 128)
        doc = reg.to_dict()
        validate_metrics_document(doc)
        # JSON-serializable end to end (histogram keys stringified).
        clone = MetricsRegistry.from_dict(json.loads(json.dumps(doc)))
        assert clone.counters == reg.counters
        assert clone.gauges == reg.gauges
        assert clone.histograms == reg.histograms

    def test_merge_sums_counters_and_histograms(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.inc("c", 1)
        b.inc("c", 2)
        b.inc("only-b")
        a.gauge("g", 10)
        b.gauge("g", 4)
        a.observe("h", 64)
        b.observe("h", 64)
        b.observe("h", 128)
        a.merge(b)
        assert a.counters["c"] == 3
        assert a.counters["only-b"] == 1
        assert a.gauges["g"] == 10
        assert a.histograms["h"] == {64: 2, 128: 1}

    def test_save_load(self, tmp_path):
        reg = MetricsRegistry()
        reg.inc("x", 7)
        path = tmp_path / "m.json"
        reg.save(str(path))
        assert MetricsRegistry.load(str(path)).counters["x"] == 7

    def test_render_mentions_all_names(self):
        reg = MetricsRegistry()
        reg.inc("compile.count", 2)
        reg.observe("precision.op.fadd.bits", 256)
        text = reg.render()
        assert "compile.count" in text
        assert "precision.op.fadd.bits" in text


class TestInstall:
    def test_disabled_by_default(self):
        assert current_tracer() is None
        assert current_metrics() is None
        assert not telemetry_enabled()

    def test_enable_and_restore(self):
        tracer, registry = enable_telemetry(trace=True, metrics=True)
        assert current_tracer() is tracer
        assert current_metrics() is registry
        assert telemetry_enabled()
        install_telemetry(None, None)
        assert not telemetry_enabled()

    def test_session_restores_previous(self):
        outer, _ = enable_telemetry(trace=True)
        with telemetry_session(metrics=True) as (tracer, registry):
            assert tracer is None
            assert registry is current_metrics()
            assert current_tracer() is None
        assert current_tracer() is outer
        assert current_metrics() is None


class TestCompilerTelemetry:
    def test_compile_produces_spans_and_pass_metrics(self):
        with telemetry_session(trace=True, metrics=True) \
                as (tracer, registry):
            compile_source(SRC, backend="mpfr")
        doc = tracer.to_chrome()
        validate_trace_document(doc)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(n.startswith("compile:") for n in names)
        assert any(n.startswith("pass:") for n in names)
        assert "lowering:mpfr" in names
        assert registry.counters["compile.count"] == 1
        assert registry.counters["compile.fresh"] == 1
        assert any(k.startswith("compile.pass.")
                   for k in registry.counters)

    def test_cache_lookup_span_and_counters(self):
        cache = CompileCache(directory=None)
        driver = CompilerDriver(backend="mpfr", cache=cache)
        with telemetry_session(trace=True, metrics=True) \
                as (tracer, registry):
            driver.compile(SRC, name="k")
            driver.compile(SRC, name="k")
        names = [e["name"] for e in tracer.events if e["ph"] == "X"]
        assert names.count("cache.lookup") == 2
        assert registry.counters["compile.cache.misses"] == 1
        assert registry.counters["compile.cache.memory_hits"] == 1
        assert registry.counters["compile.cache.stores"] == 1
        assert registry.counters["compile.cache_hits"] == 1

    def test_execute_spans_and_runtime_metrics(self):
        program = compile_source(SRC, backend="mpfr")
        with telemetry_session(trace=True, metrics=True) \
                as (tracer, registry):
            program.run("run", [8])
        names = [e["name"] for e in tracer.events if e["ph"] == "X"]
        assert "execute:run" in names
        assert "call:run" in names
        call = next(e for e in tracer.events
                    if e["ph"] == "X" and e["name"] == "call:run")
        assert call["args"]["cycles"] > 0
        assert call["args"]["hot_blocks"]
        assert registry.counters["runtime.cycles"] > 0
        assert registry.counters["runtime.mpfr_calls"] > 0
        assert registry.histograms["precision.mpfr.bits"]

    def test_precision_histograms_per_dispatch(self):
        for dispatch in ("fast", "unfused", "legacy"):
            program = compile_source(SRC, backend="none")
            with telemetry_session(metrics=True) as (_, registry):
                program.run("run", [8], dispatch=dispatch)
            hist = registry.histograms.get("precision.op.fadd.bits")
            assert hist and 256 in hist, dispatch
            assert registry.counters["precision.rounding.RNDN"] > 0


class TestValidators:
    def test_rejects_malformed_metrics(self):
        with pytest.raises(ValidationError, match="not numeric"):
            validate_metrics_document({"counters": {"x": "nope"},
                                       "gauges": {}, "histograms": {}})
        with pytest.raises(ValidationError, match="bucket"):
            validate_metrics_document({"counters": {}, "gauges": {},
                                       "histograms": {"h": {"abc": 1}}})

    def test_partial_metrics_documents_validate(self):
        # A dump missing whole sections is still a metrics document
        # (hand-pruned files, runs that recorded no histograms):
        # missing sections read as empty rather than invalid.
        validate_metrics_document({"gauges": {}, "histograms": {}})
        validate_metrics_document({"counters": {"x": 1}})
        validate_metrics_document({})
        registry = MetricsRegistry.from_dict({"counters": {"x": 1}})
        assert registry.counter("x") == 1
        with pytest.raises(ValueError):
            MetricsRegistry.from_dict({"counters": ["not", "a", "map"]})

    def test_rejects_malformed_trace(self):
        with pytest.raises(ValidationError, match="traceEvents"):
            validate_trace_document({})
        with pytest.raises(ValidationError, match="missing 'ph'"):
            validate_trace_document({"traceEvents": [
                {"name": "x", "pid": 1, "tid": 1, "ts": 0}]})
        with pytest.raises(ValidationError, match="negative"):
            validate_trace_document({"traceEvents": [
                {"name": "x", "ph": "X", "pid": 1, "tid": 1,
                 "ts": 0, "dur": -5}]})

    def test_rejects_partial_overlap(self):
        events = [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1,
             "ts": 5, "dur": 10},
        ]
        with pytest.raises(ValidationError, match="overlaps"):
            validate_trace_document({"traceEvents": events})

    def test_accepts_disjoint_and_nested(self):
        events = [
            {"name": "a", "ph": "X", "pid": 1, "tid": 1,
             "ts": 0, "dur": 10},
            {"name": "b", "ph": "X", "pid": 1, "tid": 1,
             "ts": 2, "dur": 4},
            {"name": "c", "ph": "X", "pid": 1, "tid": 1,
             "ts": 20, "dur": 3},
        ]
        validate_trace_document({"traceEvents": events})

    def test_render_trace_summary(self):
        tracer = Tracer(pid=1)
        with tracer.span("compile:x", cat=CAT_COMPILE):
            pass
        text = render_trace_summary(tracer.to_chrome())
        assert "compile:x" in text


class TestStatsCLI:
    def test_validate_and_render(self, tmp_path, capsys):
        tracer = Tracer(pid=1)
        with tracer.span("s"):
            pass
        trace_path = tmp_path / "t.json"
        tracer.export(str(trace_path))
        reg = MetricsRegistry()
        reg.inc("compile.count")
        metrics_path = tmp_path / "m.json"
        reg.save(str(metrics_path))
        assert stats_main(["--validate", str(trace_path),
                           str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "OK (trace)" in out
        assert "OK (metrics)" in out
        assert stats_main([str(metrics_path)]) == 0
        assert "compile.count" in capsys.readouterr().out

    def test_invalid_file_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{\"counters\": 3}")
        assert stats_main(["--validate", str(bad)]) == 1
        assert "INVALID" in capsys.readouterr().err


class TestCodegenSummary:
    def test_renders_per_function_status(self):
        text = render_codegen_summary({"counters": {
            "codegen.fn.run.jit": 4,
            "codegen.fn.scale.jit": 4,
            "codegen.fn.dyn.fallback.dynamic-vpfloat-call-operand": 4,
            "codegen.functions.jit": 8,
        }})
        assert "3 function(s), 2 specialized, 1 fell back" in text
        lines = {l.split()[0]: l for l in text.splitlines()[3:]}
        assert "fallback" in lines["dyn"]
        assert "dynamic-vpfloat-call-operand" in lines["dyn"]
        assert "jit" in lines["run"]
        assert "jit" in lines["scale"]

    def test_empty_without_codegen_counters(self):
        assert render_codegen_summary({"counters": {"x": 1}}) == ""

    def test_stats_cli_appends_codegen_section(self, tmp_path, capsys):
        reg = MetricsRegistry()
        reg.inc("codegen.fn.run.jit")
        path = tmp_path / "m.json"
        reg.save(str(path))
        assert stats_main([str(path)]) == 0
        assert "codegen (jit engine)" in capsys.readouterr().out


class TestStatsHardening:
    """Empty/partial inputs must render "no data", never raise."""

    def test_empty_metrics_file(self, tmp_path, capsys):
        path = tmp_path / "empty.json"
        path.write_text("{}")
        assert stats_main([str(path)]) == 0
        assert "no data" in capsys.readouterr().out

    def test_partial_metrics_file(self, tmp_path, capsys):
        path = tmp_path / "partial.json"
        path.write_text('{"counters": {"compile.count": 2}}')
        assert stats_main([str(path)]) == 0
        assert "compile.count" in capsys.readouterr().out

    def test_empty_ledger_file(self, tmp_path, capsys):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert stats_main([str(path)]) == 0
        assert "no data" in capsys.readouterr().out

    def test_ledger_with_only_torn_lines(self, tmp_path, capsys):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"schema": 1, "event": "run", "trunc\n')
        assert stats_main([str(path)]) == 0
        out = capsys.readouterr()
        assert "no data" in out.out or "skipped" in out.out + out.err


class TestUnumTelemetry:
    def test_unum_run_emits_counters(self):
        from repro.core import CompilerDriver
        from repro.workloads.polybench import source_for

        source = source_for("gemm", "vpfloat<unum, 3, 6>")
        with telemetry_session(metrics=True) as (_, registry):
            program = CompilerDriver(backend="unum").compile(
                source, name="gemm-unum-telemetry")
            program.run("run", [4])
        assert registry.counter("unum.instructions") > 0
        assert registry.counter("unum.coprocessor_cycles") > 0
        assert registry.counter("unum.scalar_cycles") > 0
        assert any(name.startswith("unum.op.")
                   for name in registry.counters)

    def test_unum_summary_rendered_by_stats(self, tmp_path, capsys):
        from repro.observability.stats import render_unum_summary

        document = {"counters": {
            "unum.scalar_cycles": 100, "unum.coprocessor_cycles": 300,
            "unum.instructions": 42, "unum.loads": 5, "unum.stores": 4,
            "unum.bytes_loaded": 80, "unum.bytes_stored": 64,
            "unum.op.gmul": 7,
        }}
        text = render_unum_summary(document)
        assert "unum" in text and "gmul" in text
        path = tmp_path / "unum.json"
        path.write_text(json.dumps(document))
        assert stats_main([str(path)]) == 0
        assert "gmul" in capsys.readouterr().out

    def test_no_unum_section_without_counters(self):
        from repro.observability.stats import render_unum_summary

        assert render_unum_summary({"counters": {"x": 1}}) == ""
