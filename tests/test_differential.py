"""Differential testing: random programs agree across backends.

Generates small random straight-line/loop programs over a vpfloat type,
compiles each with the none / mpfr / boost backends (the unum backend is
checked at its own precision) and requires bit-identical results -- the
strongest end-to-end property of the whole flow: frontend, optimizer and
all lowerings preserve correctly-rounded semantics.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_source

PRECISION = 160


def _value(rng_draw, depth, vars_):
    """Build a random expression string over declared variables."""
    choice = rng_draw(st.integers(0, 5 if depth < 3 else 2))
    if choice == 0:
        return rng_draw(st.sampled_from(vars_))
    if choice == 1:
        num = rng_draw(st.integers(-40, 40))
        return f"{num}.5" if rng_draw(st.booleans()) else f"{num}.0"
    if choice == 2:
        return str(rng_draw(st.integers(1, 9)))
    op = rng_draw(st.sampled_from(["+", "-", "*"]))
    lhs = _value(rng_draw, depth + 1, vars_)
    rhs = _value(rng_draw, depth + 1, vars_)
    return f"({lhs} {op} {rhs})"


@st.composite
def random_program(draw):
    n_vars = draw(st.integers(2, 4))
    vars_ = [f"v{i}" for i in range(n_vars)]
    lines = []
    for i, name in enumerate(vars_):
        init = draw(st.integers(-20, 20))
        lines.append(f"  FTYPE {name} = {init}.25;")
    n_stmts = draw(st.integers(2, 6))
    for _ in range(n_stmts):
        target = draw(st.sampled_from(vars_))
        expr = _value(draw, 0, vars_)
        lines.append(f"  {target} = {expr};")
    # A loop statement mixing the variables.
    acc = draw(st.sampled_from(vars_))
    other = draw(st.sampled_from(vars_))
    trips = draw(st.integers(1, 5))
    lines.append(f"  for (int i = 0; i < {trips}; i++) "
                 f"{acc} = {acc} * 0.5 + {other};")
    result = " + ".join(vars_)
    body = "\n".join(lines)
    return (
        "double f() {\n"
        f"{body}\n"
        f"  return (double)({result});\n"
        "}\n"
    )


@given(random_program())
@settings(max_examples=50, deadline=None)
def test_backends_bit_identical(template):
    source = template.replace("FTYPE", f"vpfloat<mpfr, 16, {PRECISION}>")
    values = {}
    for backend in ("none", "mpfr", "boost"):
        program = compile_source(source, backend=backend)
        values[backend] = program.run("f", [], cache=False).value
    assert values["none"] == values["mpfr"] == values["boost"], source


@given(random_program())
@settings(max_examples=25, deadline=None)
def test_unum_backend_matches_interpreter(template):
    """The coprocessor path agrees with first-class interpretation at the
    same unum precision."""
    source = template.replace("FTYPE", "vpfloat<unum, 4, 7>")
    reference = compile_source(source, backend="none") \
        .run("f", [], cache=False).value
    machine_value = compile_source(source, backend="unum") \
        .machine(cache=False).run("f", [])
    assert machine_value == reference, source


@given(random_program())
@settings(max_examples=25, deadline=None)
def test_optimization_levels_agree(template):
    """-O0 (raw codegen) and -O3 produce identical results."""
    source = template.replace("FTYPE", f"vpfloat<mpfr, 16, {PRECISION}>")
    o0 = compile_source(source, backend="none", opt_level=0) \
        .run("f", [], cache=False).value
    o3 = compile_source(source, backend="none", opt_level=3) \
        .run("f", [], cache=False).value
    assert o0 == o3, source


@given(random_program())
@settings(max_examples=20, deadline=None)
def test_ablation_switches_preserve_semantics(template):
    source = template.replace("FTYPE", f"vpfloat<mpfr, 16, {PRECISION}>")
    base = compile_source(source, backend="mpfr") \
        .run("f", [], cache=False).value
    for switch in ("reuse_objects", "specialize_scalars",
                   "in_place_stores"):
        toggled = compile_source(source, backend="mpfr",
                                 **{switch: False}) \
            .run("f", [], cache=False).value
        assert toggled == base, (switch, source)
