"""Bit-exact decimal round trips and rounding-step oracle cross-checks.

Two properties the numeric frontend must never lose:

* ``from_str(to_str(x), x.prec, rm)`` is **bit-identical** to ``x`` for
  every rounding mode -- ``to_str`` emits enough digits that the parse
  is exact, so the mode cannot matter; and

* :func:`round_significand` agrees with an exact :class:`~fractions
  .Fraction` oracle on every mode, including the sticky path used by
  division/sqrt (true value strictly inside an open significand
  interval).

Plus the malformed-literal sweep for the ``from_str`` sign-handling fix
("+-inf" and friends must raise, not silently parse).
"""

from fractions import Fraction

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigfloat import (
    RNDA,
    RNDD,
    RNDN,
    RNDU,
    RNDZ,
    BigFloat,
    Kind,
    from_str,
    round_significand,
    to_str,
)

ALL_MODES = (RNDN, RNDZ, RNDU, RNDD, RNDA)


def bits(x: BigFloat):
    """The full representation -- equality on this tuple is bit-identity
    (``==`` on BigFloat is IEEE compare, which conflates +-0 and ignores
    precision)."""
    return (x.kind, x.sign, x.mant, x.exp, x.prec)


# ----------------------------------------------------------------- #
# Round trips
# ----------------------------------------------------------------- #

@st.composite
def finite_bigfloats(draw, min_prec=24, max_prec=512, max_mag=16000):
    """Arbitrary finite nonzero BigFloats, including values far outside
    the binary64 range (exponents the IEEE format would subnormalize or
    overflow)."""
    prec = draw(st.integers(min_value=min_prec, max_value=max_prec))
    sign = draw(st.integers(min_value=0, max_value=1))
    mant = draw(st.integers(min_value=0, max_value=(1 << (prec - 1)) - 1))
    mant |= 1 << (prec - 1)  # normalized: exactly prec bits
    exp = draw(st.integers(min_value=-max_mag, max_value=max_mag))
    return BigFloat(Kind.FINITE, sign, mant, exp, prec)


def exact_digits(x: BigFloat) -> int:
    """Significant digits of the *exact* decimal expansion of ``x``
    (every binary float is a dyadic rational, so this is finite).
    Formatting with this many digits is lossless, which makes the
    reparse exact under **any** rounding mode -- the default digit
    count only guarantees recovery under round-to-nearest."""
    if x.exp >= 0:
        num = x.mant << x.exp
    else:
        num = x.mant * 5 ** (-x.exp)
    return max(2, len(str(num).rstrip("0")))


@settings(max_examples=1000, deadline=None)
@given(finite_bigfloats())
def test_round_trip_default_digits_nearest(x):
    # The classic shortest-recovering-digit-count guarantee: under
    # nearest reparse the default formatting is bit-lossless at any
    # precision and any exponent magnitude.
    assert bits(from_str(to_str(x), x.prec, RNDN)) == bits(x)


@settings(max_examples=1000, deadline=None)
@given(finite_bigfloats(max_mag=2000))
def test_round_trip_bit_identical_every_mode(x):
    # One exact formatting, parsed under all five modes: the text is a
    # lossless decimal expansion, so each parse must reproduce x
    # bit-identically and the rounding mode cannot matter.  (Directed
    # modes genuinely need exactness here: a nearest-recoverable but
    # inexact decimal reparses one ulp off under RNDZ/RNDU/RNDD.)
    text = to_str(x, exact_digits(x))
    for rm in ALL_MODES:
        assert bits(from_str(text, x.prec, rm)) == bits(x)


@pytest.mark.parametrize("rm", ALL_MODES, ids=lambda rm: rm.value)
def test_round_trip_specials_every_mode(rm):
    for prec in (24, 53, 128, 512):
        for x in (BigFloat.zero(prec, 0), BigFloat.zero(prec, 1),
                  BigFloat.inf(prec, 0), BigFloat.inf(prec, 1)):
            assert bits(from_str(to_str(x), prec, rm)) == bits(x)
        nan = from_str(to_str(BigFloat.nan(prec)), prec, rm)
        assert nan.kind is Kind.NAN and nan.prec == prec


@pytest.mark.parametrize("rm", ALL_MODES, ids=lambda rm: rm.value)
def test_round_trip_extreme_exponents(rm):
    # Far below binary64's subnormal floor and far above its overflow
    # ceiling; the decimal formatter must not lose a bit either way.
    # Exact decimal expansions at these magnitudes exceed CPython's
    # default int<->str conversion guard; lift it for this test only.
    import sys

    limit = sys.get_int_max_str_digits()
    sys.set_int_max_str_digits(40000)
    try:
        for prec in (24, 512):
            for exp in (-16494, -1074, -126, 127, 1024, 16383):
                x = BigFloat(Kind.FINITE, 1, (1 << (prec - 1)) | 1, exp,
                             prec)
                assert bits(from_str(to_str(x), x.prec, RNDN)) == bits(x)
                text = to_str(x, exact_digits(x))
                assert bits(from_str(text, prec, rm)) == bits(x)
    finally:
        sys.set_int_max_str_digits(limit)


# ----------------------------------------------------------------- #
# from_str sign handling (the "+-inf" fix)
# ----------------------------------------------------------------- #

class TestFromStrSigns:
    @pytest.mark.parametrize("bad", [
        "+-inf", "-+inf", "--inf", "++inf", "+-infinity", "-+nan",
        "--nan", "++1.0", "+-1.0", "--0.5", "+ inf", "inf+", "nan1",
        "infx", "in", "+", "-", "",
    ])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            from_str(bad, 53)

    @pytest.mark.parametrize("text,kind,sign", [
        ("inf", Kind.INF, 0), ("+inf", Kind.INF, 0), ("-inf", Kind.INF, 1),
        ("Infinity", Kind.INF, 0), ("-INFINITY", Kind.INF, 1),
        ("  +Inf  ", Kind.INF, 0), ("nan", Kind.NAN, 0),
        ("+NaN", Kind.NAN, 0), ("-nan", Kind.NAN, 0),
    ])
    def test_signed_specials_accepted(self, text, kind, sign):
        x = from_str(text, 53)
        assert x.kind is kind
        if kind is Kind.INF:
            assert x.sign == sign


# ----------------------------------------------------------------- #
# round_significand vs an exact Fraction oracle
# ----------------------------------------------------------------- #

def oracle_round(sign: int, v: Fraction, prec: int, rm) -> tuple:
    """Correctly rounded (mant, exp) of ``(-1)**sign * v`` by exhaustive
    exact arithmetic (v > 0)."""
    assert v > 0
    exp = v.numerator.bit_length() - v.denominator.bit_length() - prec

    def floor_scaled(e):
        if e >= 0:
            return v.numerator // (v.denominator << e)
        return (v.numerator << -e) // v.denominator

    while floor_scaled(exp).bit_length() > prec:
        exp += 1
    while floor_scaled(exp).bit_length() < prec:
        exp -= 1
    q = floor_scaled(exp)
    rem = v / (Fraction(2) ** exp) - q  # in [0, 1) ulps
    if rem == 0:
        up = False
    elif rm is RNDZ:
        up = False
    elif rm is RNDU:
        up = sign == 0
    elif rm is RNDD:
        up = sign == 1
    elif rem > Fraction(1, 2):
        up = True
    elif rem < Fraction(1, 2):
        up = False
    elif rm is RNDA:
        up = True
    else:
        up = bool(q & 1)  # ties-to-even
    if up:
        q += 1
        if q >> prec:
            q >>= 1
            exp += 1
    return q, exp


@settings(max_examples=400, deadline=None)
@given(st.integers(min_value=0, max_value=1),
       st.integers(min_value=1, max_value=(1 << 200) - 1),
       st.integers(min_value=-300, max_value=300),
       st.integers(min_value=4, max_value=128),
       st.sampled_from(ALL_MODES))
def test_exact_path_matches_oracle(sign, mant, exp, prec, rm):
    q, e, inexact = round_significand(sign, mant, exp, prec, rm)
    v = Fraction(mant) * Fraction(2) ** exp
    assert (q, e) == oracle_round(sign, v, prec, rm)
    assert inexact == (Fraction(q) * Fraction(2) ** e != v)


@settings(max_examples=400, deadline=None)
@given(st.integers(min_value=0, max_value=1),
       st.integers(min_value=1, max_value=(1 << 200) - 1),
       st.integers(min_value=-300, max_value=300),
       st.integers(min_value=4, max_value=128),
       st.integers(min_value=1, max_value=60),
       st.sampled_from(ALL_MODES))
def test_sticky_path_matches_oracle(sign, mant, exp, prec, tailbits, rm):
    # Sticky semantics: the true value lies strictly inside
    # (mant, mant + 1) * 2**exp.  Any representative of the open
    # interval rounds identically once mant carries more than prec
    # bits (rounding boundaries sit on the 2**exp grid, never strictly
    # inside), so cross-check against an odd-tail representative.
    mant |= 1 << max(mant.bit_length(), prec)  # force > prec bits
    q, e, inexact = round_significand(sign, mant, exp, prec, rm,
                                      sticky=True)
    assert inexact is True
    tail = Fraction(2 * tailbits - 1, 2 * tailbits * 2)  # in (0, 1)
    v = (Fraction(mant) + tail) * Fraction(2) ** exp
    assert (q, e) == oracle_round(sign, v, prec, rm)
