"""End-to-end: dialect source -> IR -> interpreter, across features."""

import pytest

from repro import compile_source
from repro.runtime import VPRuntimeError


def run(source, fn="main", args=None, backend="none", **kwargs):
    program = compile_source(source, backend=backend, **kwargs)
    return program.run(fn, args or [], cache=False)


class TestScalarPrograms:
    def test_arithmetic_and_control_flow(self):
        source = """
        int collatz_steps(int n) {
          int steps = 0;
          while (n != 1) {
            if (n % 2 == 0) n = n / 2;
            else n = 3 * n + 1;
            steps++;
          }
          return steps;
        }
        """
        assert run(source, "collatz_steps", [6]).value == 8
        assert run(source, "collatz_steps", [27]).value == 111

    def test_recursion(self):
        source = """
        int fib(int n) {
          if (n < 2) return n;
          return fib(n - 1) + fib(n - 2);
        }
        """
        assert run(source, "fib", [15], enable_inlining=False).value == 610

    def test_float_vs_double_rounding(self):
        source = """
        double f() {
          float x = 0.1f;
          double y = 0.1;
          return (double)x - y;
        }
        """
        result = run(source, "f")
        assert result.value != 0.0  # float(0.1) != double(0.1)
        assert abs(result.value) < 1e-8

    def test_short_circuit_evaluation(self):
        source = """
        int guard(int n) {
          int hits = 0;
          for (int i = -2; i < 3; i++)
            if (i != 0 && 10 / i > 1) hits++;
          return hits;
        }
        """
        # Division by zero must never execute thanks to &&.
        assert run(source, "guard", [0]).value == 2  # i=1 and i=2

    def test_ternary_and_logical_or(self):
        source = """
        int f(int a, int b) {
          return (a > b || a == 0) ? a : b;
        }
        """
        assert run(source, "f", [5, 3]).value == 5
        assert run(source, "f", [0, 3]).value == 0
        assert run(source, "f", [2, 3]).value == 3

    def test_do_while_and_break(self):
        source = """
        int f(int n) {
          int i = 0;
          do {
            i++;
            if (i > 10) break;
          } while (i < n);
          return i;
        }
        """
        assert run(source, "f", [5]).value == 5
        assert run(source, "f", [100]).value == 11

    def test_globals(self):
        source = """
        int counter = 7;
        double scale = 2.5;
        double f() {
          counter = counter + 1;
          return counter * scale;
        }
        """
        assert run(source, "f").value == 20.0

    def test_pointer_arithmetic(self):
        source = """
        double f(int n) {
          double A[8];
          for (int i = 0; i < 8; i++) A[i] = i * 1.0;
          double *p = A;
          p = p + n;
          return *p + p[1];
        }
        """
        assert run(source, "f", [2]).value == 5.0

    def test_sizeof(self):
        source = """
        long f() {
          return sizeof(double) + sizeof(int)
                 + sizeof(vpfloat<unum, 3, 6>);
        }
        """
        assert run(source, "f").value == 8 + 4 + 11


class TestVPFloatPrograms:
    def test_precision_actually_matters(self):
        source = """
        double diff(int reps) {
          FTYPE tiny = 1.0;
          for (int i = 0; i < 60; i++) tiny = tiny / 2.0;
          FTYPE acc = 1.0;
          for (int i = 0; i < reps; i++) acc = acc + tiny;
          return (double)(acc - 1.0);
        }
        """
        # At 40 bits, 2**-60 vanishes against 1.0.
        low = run(source.replace("FTYPE", "vpfloat<mpfr, 16, 40>"),
                  "diff", [4])
        assert low.value == 0.0
        # At 100 bits the additions are exact.
        high = run(source.replace("FTYPE", "vpfloat<mpfr, 16, 100>"),
                   "diff", [4])
        assert high.value == 4 * 2.0**-60

    def test_literal_suffixes(self):
        source = """
        double f() {
          vpfloat<mpfr, 16, 200> a = 1.3y;
          vpfloat<unum, 4, 7> b = 1.3v;
          return (double)a - (double)b;
        }
        """
        assert abs(run(source, "f").value) < 1e-15

    def test_dynamic_precision_function(self):
        source = """
        double eval(unsigned p) {
          vpfloat<mpfr, 16, p> tiny = 1.0;
          for (int i = 0; i < 70; i++) tiny = tiny / 2.0;
          vpfloat<mpfr, 16, p> acc = 1.0;
          acc = acc + tiny;
          return (double)(acc - 1.0);
        }
        """
        # 2**-70 vanishes at 60 bits, survives at 100.
        assert run(source, "eval", [60]).value == 0.0
        assert run(source, "eval", [100]).value == 2.0 ** -70

    def test_runtime_attr_check_fires(self):
        """Paper Listing 3 line 17: attribute changed before the call."""
        source = """
        void use(unsigned p, vpfloat<mpfr, 16, p> *X) {}
        void driver(unsigned p) {
          vpfloat<mpfr, 16, p> X[4];
          unsigned q = p + 1;
          use(q, X);
        }
        """
        with pytest.raises(VPRuntimeError, match="attribute mismatch"):
            run(source, "driver", [100])

    def test_runtime_attr_check_passes_when_equal(self):
        source = """
        void use(unsigned p, vpfloat<mpfr, 16, p> *X) { X[0] = 1.0; }
        double driver(unsigned p) {
          vpfloat<mpfr, 16, p> X[4];
          use(p, X);
          return (double)X[0];
        }
        """
        assert run(source, "driver", [100]).value == 1.0

    def test_sizeof_vpfloat_validation(self):
        """Out-of-range runtime attributes trap (paper §III-A5:
        'err on the side of correctness')."""
        source = """
        void f(unsigned fss) {
          vpfloat<unum, 4, fss> x = 0.0;
        }
        """
        run(source, "f", [9])  # legal upper bound
        with pytest.raises(VPRuntimeError, match="fss"):
            run(source, "f", [12])

    def test_sizeof_dynamic_type(self):
        source = """
        long f(unsigned fss) {
          vpfloat<unum, 4, fss> x = 0.0;
          return (long)sizeof(x);
        }
        """
        assert run(source, "f", [6]).value == 12  # 2+16+4+9+64+1r bits
        assert run(source, "f", [9]).value == 68

    def test_mixed_double_vpfloat_expression(self):
        source = """
        double f(int n, double *A) {
          vpfloat<mpfr, 16, 200> acc = 0.0;
          for (int i = 0; i < n; i++)
            acc = acc + A[i] * 2.0;
          return (double)acc;
        }
        """
        program = compile_source(source, backend="none")
        interp = program.interpreter(cache=False)
        base = interp.memory.alloc_heap(64)
        for i in range(8):
            interp.memory.store(base + 8 * i, float(i), 8)
        assert interp.run("f", [8, base]).value == 56.0

    def test_vp_math_builtins(self):
        source = """
        double f() {
          vpfloat<mpfr, 16, 200> two = 2.0;
          vpfloat<mpfr, 16, 200> r = vp_sqrt(two);
          return (double)(r * r);
        }
        """
        assert abs(run(source, "f").value - 2.0) < 1e-15

    def test_explicit_cast_between_vpfloat_types(self):
        source = """
        double f() {
          vpfloat<mpfr, 16, 300> pi = 3.14159265358979323846y;
          vpfloat<mpfr, 16, 20> rough = (vpfloat<mpfr, 16, 20>)pi;
          return (double)pi - (double)rough;
        }
        """
        value = run(source, "f").value
        assert value != 0.0
        assert abs(value) < 1e-5


class TestOpenMPMarkers:
    def test_parallel_region_tracked(self):
        source = """
        double f(int n) {
          double A[64];
          #pragma omp parallel for
          for (int i = 0; i < n; i++) A[i] = i * 2.0;
          double s = 0.0;
          for (int i = 0; i < n; i++) s = s + A[i];
          return s;
        }
        """
        result = run(source, "f", [64])
        assert result.value == sum(2.0 * i for i in range(64))
        assert result.report.parallel_cycles > 0
        assert result.report.serial_cycles > 0
        # The kernel region itself must scale (fork/join overhead makes
        # the whole-program time a wash for a region this tiny).
        assert result.report.kernel_time(16) < \
            result.report.parallel_cycles + 4096

    def test_atomic_section_charged(self):
        source = """
        double f(int n) {
          double dot = 0.0;
          #pragma omp parallel for
          for (int i = 0; i < n; i++) {
            #pragma omp atomic
            dot = dot + 1.0;
          }
          return dot;
        }
        """
        result = run(source, "f", [16])
        assert result.value == 16.0
        assert result.report.by_category.get("atomic", 0) > 0


class TestBackendsAgree:
    SOURCE = """
    double f(int n) {
      vpfloat<mpfr, 16, 160> A[16];
      vpfloat<mpfr, 16, 160> s = 0.0;
      for (int i = 0; i < n; i++) A[i] = (double)i / 3.0;
      for (int i = 0; i < n; i++) s = s + A[i] * A[i];
      return (double)s;
    }
    """

    def test_none_mpfr_boost_same_value(self):
        values = {b: run(self.SOURCE, "f", [16], backend=b).value
                  for b in ("none", "mpfr", "boost")}
        assert values["none"] == values["mpfr"] == values["boost"]

    def test_mpfr_balanced_inits_and_clears(self):
        # pool=False: this checks the *lowering's* init/clear balance,
        # so every clear must actually free (not park on the free list).
        program = compile_source(self.SOURCE, backend="mpfr")
        interp = program.interpreter(cache=False, pool=False)
        interp.run("f", [16])
        stats = interp.mpfr.stats
        assert stats.inits == stats.clears
        assert interp.mpfr.live_objects == 0

    def test_mpfr_pooled_run_balances_calls_and_leaves_nothing_live(self):
        """With the runtime pool on, the *call* balance still holds and
        no object stays logically alive; clears park instead of free."""
        program = compile_source(self.SOURCE, backend="mpfr")
        interp = program.interpreter(cache=False, pool=True)
        interp.run("f", [16])
        stats = interp.mpfr.stats
        assert stats.by_name["mpfr_init2"] == stats.by_name["mpfr_clear"]
        assert interp.mpfr.live_objects == 0
        assert interp.mpfr.pooled_objects() == stats.pool_releases


class TestVPFloatGlobals:
    """Constant-size vpfloat globals (paper §III-A4: 'can be declared as
    global'), consistent across all lowerings."""

    SOURCE = """
    vpfloat<mpfr, 16, 128> scale = 2.5;
    double f(int n) {
      vpfloat<mpfr, 16, 128> s = 0.0;
      for (int i = 0; i < n; i++) s = s + scale;
      scale = scale + 1.0;
      return (double)s;
    }
    """

    def test_globals_across_backends(self):
        values = {}
        for backend in ("none", "mpfr", "boost"):
            program = compile_source(self.SOURCE, backend=backend)
            interp = program.interpreter(cache=False)
            first = interp.run("f", [4]).value
            second = interp.run("f", [4]).value  # sees the mutation
            values[backend] = (first, second)
        assert len(set(values.values())) == 1
        assert values["none"] == (10.0, 14.0)

    def test_unum_global(self):
        source = self.SOURCE.replace("mpfr, 16, 128", "unum, 4, 7")
        program = compile_source(source, backend="none")
        assert program.run("f", [4], cache=False).value == 10.0
