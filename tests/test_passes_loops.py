"""Loop passes: LICM, loop idiom recognition, unrolling, inlining."""

import pytest

from repro import compile_source
from repro.ir import CallInst, verify_module
from repro.lang import analyze, parse
from repro.codegen import generate_ir
from repro.passes import (
    DeadCodeEliminationPass,
    ConstantFoldPass,
    GVNPass,
    InliningPass,
    LICMPass,
    LoopIdiomPass,
    LoopUnrollPass,
    Mem2RegPass,
    PassManager,
    SimplifyCFGPass,
)
from repro.runtime import Interpreter


def compile_ir(source, *passes):
    module = generate_ir(analyze(parse(source)))
    pm = PassManager(verify_each=True)
    for p in passes:
        pm.add(p)
    stats = pm.run(module)
    verify_module(module)
    return module, stats


def run(module, name, args):
    return Interpreter(module).run(name, args).value


class TestLICM:
    def test_invariant_hoisted(self):
        source = """
        double f(int n, double a, double b) {
          double s = 0.0;
          for (int i = 0; i < n; i++)
            s = s + a * b;
          return s;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LICMPass())
        assert stats.changes["licm"] >= 1
        assert run(module, "f", [10, 2.0, 3.0]) == 60.0
        # The multiply must now live outside the loop body blocks.
        f = module.get_function("f")
        from repro.ir import LoopInfo

        info = LoopInfo(f)
        loop = info.loops[0]
        muls = [i for i in f.instructions() if i.opcode == "fmul"]
        assert muls and all(m.parent not in loop.blocks for m in muls)

    def test_load_not_hoisted_past_store(self):
        source = """
        double f(int n, double *p) {
          double s = 0.0;
          for (int i = 0; i < n; i++) {
            s = s + p[0];
            p[0] = s;
          }
          return s;
        }
        """
        module, _ = compile_ir(source, Mem2RegPass(), SimplifyCFGPass(),
                               LICMPass())
        program_value = run(module, "f", None) if False else None
        # Functional check through the full pipeline instead:
        p = compile_source(source, backend="none")
        interp = p.interpreter(cache=False)
        base = interp.memory.alloc_heap(8)
        interp.memory.store(base, 1.0, 8)
        result = interp.run("f", [3, base])
        assert result.value == 4.0  # s: 1, 2, 4 (reads see stores)

    def test_sizeof_call_hoisted(self):
        """The paper's gemm_unum example: __sizeof_vpfloat leaves the
        loop."""
        source = """
        void f(unsigned prec, int n, vpfloat<unum, 4, prec> *X) {
          for (int i = 0; i < n; i++) {
            vpfloat<unum, 4, prec> t = 0.0;
            X[i] = t;
          }
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LICMPass())
        f = module.get_function("f")
        from repro.ir import LoopInfo

        info = LoopInfo(f)
        sizeofs = [i for i in f.instructions()
                   if isinstance(i, CallInst)
                   and getattr(i.callee, "name", "") == "__sizeof_vpfloat"]
        assert sizeofs
        loop = info.loops[0]
        assert all(c.parent not in loop.blocks for c in sizeofs)


class TestLoopIdiom:
    def test_memset_for_zero_init(self):
        source = """
        double f(int n, int k) {
          double A[200];
          for (int i = 0; i < n; i++) A[i] = 0.0;
          return A[k];
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopIdiomPass(),
                                   SimplifyCFGPass())
        assert stats.changes["loop-idiom"] == 1
        names = [getattr(i.callee, "name", "") for i in
                 module.get_function("f").instructions()
                 if isinstance(i, CallInst)]
        assert "memset" in names
        assert run(module, "f", [200, 5]) == 0.0

    def test_memcpy_for_copy_loop(self):
        source = """
        double f(int n, int k, double *src) {
          double A[100];
          for (int i = 0; i < n; i++) A[i] = src[i];
          return A[k];
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopIdiomPass(),
                                   SimplifyCFGPass())
        assert stats.changes["loop-idiom"] == 1
        interp = Interpreter(module)
        base = interp.memory.alloc_heap(800)
        for i in range(100):
            interp.memory.store(base + 8 * i, float(i), 8)
        assert interp.run("f", [100, 7, base]).value == 7.0

    def test_disabled_for_mpfr_types(self):
        """Paper §III-B: mpfr structs hold a mantissa pointer; raw memset
        would corrupt it."""
        source = """
        void f(int n, vpfloat<mpfr, 16, 128> *X) {
          for (int i = 0; i < n; i++) X[i] = 0.0;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopIdiomPass())
        assert stats.changes["loop-idiom"] == 0

    def test_enabled_for_unum_with_dynamic_size(self):
        """The dynamically-sized extension: byte count comes from
        __sizeof_vpfloat at runtime."""
        source = """
        void f(unsigned fss, int n, vpfloat<unum, 4, fss> *X) {
          for (int i = 0; i < n; i++) X[i] = 0.0;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopIdiomPass())
        assert stats.changes["loop-idiom"] == 1
        f = module.get_function("f")
        names = [getattr(i.callee, "name", "") for i in f.instructions()
                 if isinstance(i, CallInst)]
        assert "memset" in names
        assert "__sizeof_vpfloat" in names

    def test_nonzero_value_not_converted(self):
        source = """
        void f(int n, double *X) {
          for (int i = 0; i < n; i++) X[i] = 1.0;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopIdiomPass())
        assert stats.changes["loop-idiom"] == 0


class TestLoopUnroll:
    def test_full_unroll_constant_trip(self):
        source = """
        int f(int x) {
          int s = 0;
          for (int i = 0; i < 4; i++) s = s + x;
          return s;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopUnrollPass(),
                                   ConstantFoldPass(), SimplifyCFGPass(),
                                   DeadCodeEliminationPass())
        assert stats.changes["loop-unroll"] == 1
        assert run(module, "f", [5]) == 20
        # No loop remains.
        from repro.ir import LoopInfo

        assert not LoopInfo(module.get_function("f")).loops

    def test_large_trip_not_unrolled(self):
        source = """
        int f(int x) {
          int s = 0;
          for (int i = 0; i < 1000; i++) s = s + x;
          return s;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopUnrollPass())
        assert stats.changes["loop-unroll"] == 0

    def test_runtime_trip_not_unrolled(self):
        source = """
        int f(int n) {
          int s = 0;
          for (int i = 0; i < n; i++) s = s + 1;
          return s;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopUnrollPass())
        assert stats.changes["loop-unroll"] == 0
        assert run(module, "f", [7]) == 7

    def test_unroll_preserves_vpfloat_semantics(self):
        source = """
        double f() {
          vpfloat<mpfr, 16, 200> s = 0.0;
          for (int i = 0; i < 3; i++) s = s + 1.25;
          return (double)s;
        }
        """
        module, stats = compile_ir(source, Mem2RegPass(),
                                   SimplifyCFGPass(), LoopUnrollPass(),
                                   ConstantFoldPass(),
                                   SimplifyCFGPass(),
                                   DeadCodeEliminationPass())
        assert run(module, "f", []) == 3.75


class TestInlining:
    def test_simple_inline(self):
        source = """
        double helper(double x) { return x * 2.0; }
        double f(double a) { return helper(a) + helper(a); }
        """
        module, stats = compile_ir(source, InliningPass(), Mem2RegPass(),
                                   SimplifyCFGPass(), GVNPass())
        assert stats.changes["inline"] == 2
        assert run(module, "f", [3.0]) == 12.0
        # No calls to helper remain in f.
        f = module.get_function("f")
        calls = [i for i in f.instructions() if isinstance(i, CallInst)
                 and getattr(i.callee, "name", "") == "helper"]
        assert not calls

    def test_dynamic_type_mutation(self):
        """Paper §III-B: inlined values with dynamically-sized types have
        their types mutated to reference the caller's values."""
        source = """
        vpfloat<mpfr, 16, p> twice(unsigned p, vpfloat<mpfr, 16, p> x) {
          vpfloat<mpfr, 16, p> t = x + x;
          return t;
        }
        double f(unsigned q) {
          vpfloat<mpfr, 16, q> a = 1.5;
          vpfloat<mpfr, 16, q> r = twice(q, a);
          return (double)r;
        }
        """
        module, stats = compile_ir(source, InliningPass(), Mem2RegPass(),
                                   SimplifyCFGPass())
        assert stats.changes["inline"] >= 1
        f = module.get_function("f")
        callee = module.get_function("twice")
        callee_args = set(map(id, callee.args))
        # Every vpfloat type appearing in f must reference f-local values,
        # never the callee's arguments.
        for inst in f.instructions():
            if inst.type.is_vpfloat:
                for attr in inst.type.attributes():
                    assert id(attr) not in callee_args
        assert run(module, "f", [150]) == 3.0

    def test_conditional_return_inline(self):
        source = """
        int pick(int c, int a, int b) {
          if (c) return a;
          return b;
        }
        int f(int c) { return pick(c, 10, 20); }
        """
        module, stats = compile_ir(source, InliningPass(), Mem2RegPass(),
                                   SimplifyCFGPass())
        assert run(module, "f", [1]) == 10
        assert run(module, "f", [0]) == 20

    def test_noinline_attribute_respected(self):
        source = """
        double helper(double x) { return x * 2.0; }
        double f(double a) { return helper(a); }
        """
        module = generate_ir(analyze(parse(source)))
        module.get_function("helper").attributes.add("noinline")
        pm = PassManager().add(InliningPass())
        stats = pm.run(module)
        assert stats.changes["inline"] == 0

    def test_recursion_not_inlined(self):
        source = """
        int fact(int n) {
          if (n <= 1) return 1;
          return n * fact(n - 1);
        }
        """
        module, stats = compile_ir(source, InliningPass())
        assert run(module, "fact", [6]) == 720
