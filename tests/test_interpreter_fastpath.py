"""Closure-table dispatch: equivalence with the legacy walker + profiling."""

from repro import compile_source
from repro.workloads.polybench import source_for


def _run_both(source, func, args, backend, n_or_args=None):
    program = compile_source(source, backend=backend)
    legacy = program.run(func, args, dispatch="legacy", pool=False)
    fast = program.run(func, args, dispatch="fast", pool=False)
    return legacy, fast


class TestDispatchEquivalence:
    """Fast dispatch must charge the same cycles to the same categories
    and produce the same values as the legacy isinstance walker."""

    def assert_equivalent(self, source, func, args, backend):
        legacy, fast = _run_both(source, func, args, backend)
        assert fast.value == legacy.value
        assert fast.report.cycles == legacy.report.cycles
        assert fast.report.instructions == legacy.report.instructions
        assert dict(fast.report.by_category) == \
            dict(legacy.report.by_category)
        assert fast.report.mpfr_calls == legacy.report.mpfr_calls
        assert fast.report.heap_allocations == legacy.report.heap_allocations

    def test_gemm_all_interpreter_backends(self):
        source = source_for("gemm", "vpfloat<mpfr, 16, 128>")
        for backend in ("none", "mpfr", "boost"):
            self.assert_equivalent(source, "run", [5], backend)

    def test_control_flow_heavy(self):
        source = """
        int collatz_steps(int n) {
          int steps = 0;
          while (n != 1) {
            if (n % 2 == 0) n = n / 2;
            else n = 3 * n + 1;
            steps++;
          }
          return steps;
        }
        """
        self.assert_equivalent(source, "collatz_steps", [27], "none")

    def test_float_and_select_paths(self):
        source = """
        double f(int n) {
          float acc = 0.0;
          for (int i = 1; i <= n; i++) {
            float x = (float)i / 3.0;
            acc = acc + (i % 2 == 0 ? x : -x);
          }
          return (double)acc;
        }
        """
        self.assert_equivalent(source, "f", [37], "none")

    def test_dynamic_precision_kernel(self):
        source = """
        double f(unsigned p) {
          vpfloat<mpfr, 16, p> tiny = 1.0;
          for (int i = 0; i < 70; i++) tiny = tiny / 2.0;
          vpfloat<mpfr, 16, p> one = 1.0;
          return (double)((one + tiny) - one);
        }
        """
        for backend in ("none", "mpfr"):
            self.assert_equivalent(source, "f", [120], backend)

    def test_error_still_raised_at_execution_time(self):
        import pytest

        from repro.runtime import VPRuntimeError

        source = """
        int f(int n) { return 10 / n; }
        """
        program = compile_source(source, backend="none")
        # Compilation of the closure table must not raise; execution must.
        assert program.run("f", [5]).value == 2
        with pytest.raises(VPRuntimeError):
            program.run("f", [0])


class TestSuperinstructionFusion:
    """Fused ("fast"), unfused, and legacy engines must agree on
    outputs and on every cycle category, bit for bit."""

    def _run_all(self, source, func, args, backend, n_points=0):
        program = compile_source(source, backend=backend)
        results = {}
        for dispatch in ("legacy", "unfused", "fast"):
            r = program.run(func, args, dispatch=dispatch, pool=False)
            results[dispatch] = (
                r.value, r.report.cycles, r.report.instructions,
                dict(r.report.by_category), r.report.mpfr_calls,
                r.report.heap_allocations)
        assert results["fast"] == results["unfused"] == results["legacy"]
        return results["fast"]

    def test_gemm_all_engines(self):
        for backend in ("none", "mpfr", "boost"):
            source = source_for("gemm", "vpfloat<mpfr, 16, 128>")
            self._run_all(source, "run", [5], backend)

    def test_jacobi_all_engines(self):
        for backend in ("none", "mpfr"):
            source = source_for("jacobi-1d", "vpfloat<mpfr, 16, 128>")
            self._run_all(source, "run", [8], backend)

    def test_fusion_actually_fires_on_gemm(self):
        """Guard against the fuser silently matching nothing."""
        from repro.runtime.dispatch import FunctionCompiler
        from repro.runtime.interpreter import Interpreter

        source = source_for("gemm", "vpfloat<mpfr, 16, 128>")
        program = compile_source(source, backend="none")
        interp = Interpreter(program.module, dispatch="fast")
        compiler = FunctionCompiler(interp, fuse=True)
        unfused = FunctionCompiler(interp, fuse=False)
        func = program.module.get_function("run")
        fused_steps = sum(
            len(b.steps) for b in compiler.compile(func).blocks.values())
        plain_steps = sum(
            len(b.steps) for b in unfused.compile(func).blocks.values())
        assert fused_steps < plain_steps

    def test_multi_user_producers_write_through(self):
        """A loaded/computed value consumed by the next instruction AND
        a later one must still land in the frame (write-through), in
        every engine."""
        source = """
        double f(int n) {
          double buf[4];
          buf[0] = 1.5;
          double acc = 0.0;
          for (int i = 0; i < n; i++) {
            double x = buf[0] * 2.0;   /* load feeds fmul */
            buf[1] = x + 1.0;          /* fadd feeds store */
            acc = acc + x + buf[1];    /* x and buf[1] reused */
          }
          return acc;
        }
        """
        self._run_all(source, "f", [7], "none")

    def test_cmp_branch_fusion_with_reused_condition(self):
        source = """
        int f(int n) {
          int taken = 0;
          int last = 0;
          for (int i = 0; i < n; i++) {
            int c = i % 3 == 0;
            if (c) taken++;
            last = c;                  /* condition reused after branch */
          }
          return taken * 10 + last;
        }
        """
        self._run_all(source, "f", [10], "none")

    def test_unfused_mode_rejected_values(self):
        import pytest

        from repro.runtime.interpreter import Interpreter

        program = compile_source("int f() { return 1; }", backend="none")
        with pytest.raises(ValueError, match="unknown dispatch mode"):
            Interpreter(program.module, dispatch="fused")


class TestRuntimePrecisionFreshness:
    def test_shrinking_precision_loop_not_stale(self):
        """A dynamic-precision loop that lowers ``p`` mid-function: each
        iteration must see the *current* precision, not the cached
        config of the first.  At p=200 and p=130, 1 + 2^-70 is
        representable (diff 2^-70 each); at p=60 it rounds away
        (diff 0).  A stale 200-bit config would yield 3 * 2^-70."""
        source = """
        double f(int p) {
          double acc = 0.0;
          while (p >= 60) {
            vpfloat<mpfr, 16, p> tiny = 1.0;
            for (int i = 0; i < 70; i++) tiny = tiny / 2.0;
            vpfloat<mpfr, 16, p> one = 1.0;
            acc = acc + (double)((one + tiny) - one);
            p = p - 70;
          }
          return acc;
        }
        """
        for backend in ("none", "mpfr"):
            program = compile_source(source, backend=backend)
            for dispatch in ("fast", "legacy"):
                result = program.run("f", [200], dispatch=dispatch)
                assert result.value == 2.0 ** -69, (backend, dispatch)

    def test_vp_config_cache_across_runs(self):
        """One interpreter, different runtime attrs: the per-config cache
        must key on the attribute values, not resolve once."""
        source = """
        double f(unsigned p) {
          vpfloat<mpfr, 16, p> tiny = 1.0;
          for (int i = 0; i < 70; i++) tiny = tiny / 2.0;
          vpfloat<mpfr, 16, p> one = 1.0;
          return (double)((one + tiny) - one);
        }
        """
        program = compile_source(source, backend="mpfr")
        interp = program.interpreter()
        assert interp.run("f", [60]).value == 0.0
        assert interp.run("f", [120]).value == 2.0 ** -70
        assert interp.run("f", [60]).value == 0.0  # cached config reused


class TestProfile:
    def test_profile_counts_opcodes_and_builtins(self):
        source = source_for("gemm", "vpfloat<mpfr, 16, 128>")
        program = compile_source(source, backend="mpfr")
        result = program.run("run", [5], profile=True)
        profile = result.profile
        assert profile is not None
        assert profile.opcode_counts["br"] > 0
        assert sum(profile.opcode_counts.values()) == \
            result.report.instructions
        assert profile.builtin_calls["mpfr_mul"] > 0
        assert profile.builtin_cycles["mpfr_mul"] > 0
        top_ops = profile.hottest_opcodes(3)
        assert len(top_ops) == 3
        assert top_ops[0][1] >= top_ops[1][1] >= top_ops[2][1]
        name, calls, cycles = profile.hottest_builtins(1)[0]
        assert calls > 0 and cycles > 0

    def test_profile_matches_between_dispatch_modes(self):
        source = source_for("gemm", "vpfloat<mpfr, 16, 128>")
        program = compile_source(source, backend="mpfr")
        fast = program.run("run", [4], profile=True, dispatch="fast")
        legacy = program.run("run", [4], profile=True, dispatch="legacy")
        assert fast.profile.opcode_counts == legacy.profile.opcode_counts
        assert fast.profile.builtin_calls == legacy.profile.builtin_calls

    def test_profile_off_by_default(self):
        result = compile_source("int f() { return 1; }",
                                backend="none").run("f", [])
        assert result.profile is None


class TestPassTimings:
    def test_compile_records_pipeline_and_lowering_times(self):
        source = source_for("gemm", "vpfloat<mpfr, 16, 128>")
        program = compile_source(source, backend="mpfr")
        assert "mem2reg" in program.pass_timings
        assert "mpfr-lowering" in program.pass_timings
        assert all(t >= 0.0 for t in program.pass_timings.values())
