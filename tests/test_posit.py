"""Posit format extension: codec properties and language integration.

The paper's grammar lists ``posit`` among the formats the generic type
can host "as they are proposed" (§III-A1); this suite covers the codec
(golden patterns, tapered precision, saturation) and the end-to-end
``vpfloat<posit, es, nbits>`` path through the frontend and interpreter.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compile_source
from repro.bigfloat import BigFloat, from_str
from repro.lang import SemanticError, analyze, parse
from repro.unum import (
    PositConfig,
    PositConfigError,
    posit_decode,
    posit_encode,
    posit_round,
)

P8 = PositConfig(0, 8)
P16 = PositConfig(1, 16)
P32 = PositConfig(2, 32)


class TestCodecGolden:
    """Known patterns from the posit standard."""

    def test_one(self):
        assert posit_encode(BigFloat.from_int(1, 64), P8) == 0x40
        assert posit_encode(BigFloat.from_int(1, 64), P16) == 0x4000
        assert posit_encode(BigFloat.from_int(1, 64), P32) == 0x40000000

    def test_minus_one_is_twos_complement(self):
        assert posit_encode(BigFloat.from_int(-1, 64), P16) == 0xC000

    def test_zero_and_nar(self):
        assert posit_encode(BigFloat.zero(), P16) == 0
        assert posit_encode(BigFloat.nan(), P16) == 0x8000
        assert posit_encode(BigFloat.inf(), P16) == 0x8000
        assert posit_decode(0, P16).is_zero()
        assert posit_decode(0x8000, P16).is_nan()

    def test_half_posit8(self):
        # 0.5 = useed**-1 at es=0: pattern 0_01_00000.
        assert posit_encode(BigFloat.from_float(0.5, 64), P8) == 0x20
        assert float(posit_decode(0x20, P8)) == 0.5

    def test_powers_of_useed(self):
        # posit16 es=1: useed=4; 4.0 has k=1: 0_110_0_... = 0x6000.
        assert posit_encode(BigFloat.from_int(4, 64), P16) == 0x6000

    def test_saturation(self):
        # posit8 es=0: maxpos = 2**6, minpos = 2**-6.
        assert float(posit_decode(
            posit_encode(BigFloat.from_float(1e30, 64), P8), P8)) == 64.0
        assert float(posit_decode(
            posit_encode(BigFloat.from_float(1e-30, 64), P8), P8)) \
            == 2.0 ** -6

    def test_geometry_validation(self):
        with pytest.raises(PositConfigError):
            PositConfig(5, 16)
        with pytest.raises(PositConfigError):
            PositConfig(1, 2)
        with pytest.raises(PositConfigError):
            PositConfig(1, 128)


class TestCodecProperties:
    @given(st.floats(min_value=-1e6, max_value=1e6,
                     allow_nan=False, allow_infinity=False)
           .filter(lambda x: abs(x) > 1e-6))
    @settings(max_examples=60, deadline=None)
    def test_round_is_idempotent(self, x):
        v = BigFloat.from_float(x, 64)
        once = posit_round(v, P32)
        assert posit_round(once, P32) == once

    @given(st.integers(min_value=1, max_value=(1 << 16) - 1)
           .filter(lambda p: p != 1 << 15))
    @settings(max_examples=80, deadline=None)
    def test_decode_encode_identity(self, pattern):
        """Every bit pattern decodes to a value that re-encodes to it."""
        value = posit_decode(pattern, P16)
        assert posit_encode(value, P16) == pattern

    @given(st.integers(min_value=1, max_value=(1 << 15) - 2))
    @settings(max_examples=60, deadline=None)
    def test_pattern_order_is_value_order(self, pattern):
        """Monotonicity: adjacent positive patterns are ordered values."""
        a = posit_decode(pattern, P16)
        b = posit_decode(pattern + 1, P16)
        assert a < b

    def test_tapered_precision(self):
        """Relative error is smallest near 1, larger at extremes."""
        near_one = from_str("1.2345678901", 200)
        large = from_str("12345678901.0", 200)
        e_near = abs(posit_round(near_one, P16) - near_one) / near_one
        e_far = abs(posit_round(large, P16) - large) / large
        assert e_near.to_float() < e_far.to_float()


class TestLanguageIntegration:
    def test_posit_type_parses_and_runs(self):
        source = """
        double f(int n) {
          vpfloat<posit, 2, 32> acc = 0.0;
          for (int i = 0; i < n; i++) acc = acc + 0.1;
          return (double)acc;
        }
        """
        program = compile_source(source, backend="none")
        got = program.run("f", [10], cache=False).value
        assert got == pytest.approx(1.0, abs=1e-7)

    def test_width_changes_accuracy(self):
        template = """
        double f(int n) {
          vpfloat<posit, 2, WIDTH> acc = 0.0;
          for (int i = 0; i < n; i++) acc = acc + 0.1;
          return (double)acc;
        }
        """
        errors = []
        for width in (16, 24, 32):
            program = compile_source(template.replace("WIDTH", str(width)),
                                     backend="none")
            errors.append(abs(program.run("f", [10], cache=False).value - 1.0))
        assert errors[0] > errors[1] > errors[2]

    def test_posit_attrs_range_checked(self):
        with pytest.raises(SemanticError, match="posit es"):
            analyze(parse("void f(vpfloat<posit, 9, 16> x) {}"))
        with pytest.raises(SemanticError, match="posit nbits"):
            analyze(parse("void f(vpfloat<posit, 1, 100> x) {}"))

    def test_posit_and_mpfr_do_not_mix(self):
        with pytest.raises(SemanticError, match="different vpfloat types"):
            analyze(parse("""
            void f(vpfloat<posit, 2, 32> a, vpfloat<mpfr, 16, 100> b) {
              a = a + b;
            }
            """))

    def test_bfloat16_still_unsupported(self):
        from repro.lang import SourceError

        with pytest.raises(SourceError, match="no backend"):
            parse("void f(vpfloat<bfloat16, 8, 8> x) {}")

    def test_sizeof_posit(self):
        source = "long f() { return sizeof(vpfloat<posit, 2, 32>); }"
        assert compile_source(source, backend="none") \
            .run("f", [], cache=False).value == 4

    def test_dynamic_posit_width(self):
        source = """
        double f(unsigned w) {
          vpfloat<posit, 2, w> x = 1.3;
          return (double)x;
        }
        """
        program = compile_source(source, backend="none")
        e16 = abs(program.run("f", [16], cache=False).value - 1.3)
        e32 = abs(program.run("f", [32], cache=False).value - 1.3)
        assert e32 < e16
