"""MPFR backend: lowering structure, specialization, reuse, lifetimes."""

import pytest

from repro import compile_source
from repro.backends import MPFRLoweringPass
from repro.codegen import generate_ir
from repro.ir import CallInst, verify_module
from repro.lang import analyze, parse
from repro.passes import build_o3_pipeline


def lower(source, **kwargs):
    module = generate_ir(analyze(parse(source)))
    build_o3_pipeline().run(module)
    MPFRLoweringPass(**kwargs).run_module(module)
    verify_module(module)
    return module


def call_names(func):
    return [getattr(i.callee, "name", "") for i in func.instructions()
            if isinstance(i, CallInst)]


AXPY = """
void axpy(int n, vpfloat<mpfr, 16, 256> a,
          vpfloat<mpfr, 16, 256> *X, vpfloat<mpfr, 16, 256> *Y) {
  for (int i = 0; i < n; i++)
    Y[i] = a * X[i] + Y[i];
}
"""


class TestLoweringStructure:
    def test_no_vpfloat_ops_remain(self):
        module = lower(AXPY)
        f = module.get_function("axpy")
        for inst in f.instructions():
            assert inst.opcode not in ("fadd", "fsub", "fmul", "fdiv"), \
                f"unlowered {inst.opcode}"

    def test_arith_becomes_mpfr_calls(self):
        module = lower(AXPY)
        names = call_names(module.get_function("axpy"))
        assert "mpfr_mul" in names
        assert "mpfr_add" in names

    def test_temp_inits_hoisted_to_entry(self):
        """Temporaries initialize once at the entry, not per iteration --
        the structural advantage over Boost."""
        module = lower(AXPY)
        f = module.get_function("axpy")
        entry = f.entry
        for inst in f.instructions():
            if isinstance(inst, CallInst) and \
                    getattr(inst.callee, "name", "") == "mpfr_init2":
                assert inst.parent is entry

    def test_clears_balance_inits_on_every_path(self):
        source = """
        double f(int c) {
          vpfloat<mpfr, 16, 128> x = 2.0;
          if (c) return (double)(x * x);
          return (double)x;
        }
        """
        program = compile_source(source, backend="mpfr")
        for arg in (0, 1):
            interp = program.interpreter(cache=False)
            interp.run("f", [arg])
            assert interp.mpfr.live_objects == 0

    def test_signature_rewritten_to_pointers(self):
        from repro.backends import MPFR_PTR

        module = lower(AXPY)
        f = module.get_function("axpy")
        assert f.args[1].type == MPFR_PTR  # scalar vpfloat -> mpfr_ptr

    def test_sret_for_vpfloat_return(self):
        source = """
        vpfloat<mpfr, 16, 128> twice(vpfloat<mpfr, 16, 128> x) {
          return x + x;
        }
        """
        from repro.backends import MPFR_PTR
        from repro.ir import VOID

        module = lower(source)
        f = module.get_function("twice")
        assert f.return_type == VOID
        assert f.args[0].name == "sret"
        assert f.args[0].type == MPFR_PTR


class TestSpecialization:
    SOURCE = """
    void scale(int n, double d, vpfloat<mpfr, 16, 128> *X) {
      for (int i = 0; i < n; i++)
        X[i] = X[i] * d + 1.0;
    }
    """

    def test_double_operand_uses_mul_d(self):
        names = call_names(lower(self.SOURCE).get_function("scale"))
        assert "mpfr_mul_d" in names
        assert "mpfr_mul" not in names

    def test_disabled_ablation(self):
        names = call_names(lower(self.SOURCE, specialize_scalars=False)
                           .get_function("scale"))
        assert "mpfr_mul_d" not in names
        assert "mpfr_mul" in names

    def test_int_operand_uses_si(self):
        source = """
        void f(int n, int k, vpfloat<mpfr, 16, 128> *X) {
          for (int i = 0; i < n; i++)
            X[i] = X[i] + k;
        }
        """
        names = call_names(lower(source).get_function("f"))
        assert "mpfr_add_si" in names

    def test_values_identical_with_and_without(self):
        source = """
        double f(int n) {
          vpfloat<mpfr, 16, 160> x = 0.7;
          for (int i = 0; i < n; i++)
            x = x * 1.000244140625 + 0.5;
          return (double)x;
        }
        """
        a = compile_source(source, backend="mpfr").run("f", [30]).value
        b = compile_source(source, backend="mpfr",
                           specialize_scalars=False).run("f", [30]).value
        assert a == b


class TestInPlaceStores:
    def test_store_fused_into_op(self):
        """Y[i] = expr writes the element directly (no temp + set)."""
        module = lower(AXPY)
        names = call_names(module.get_function("axpy"))
        assert "mpfr_set" not in names  # everything computes in place

    def test_disabled_ablation_adds_sets(self):
        module = lower(AXPY, in_place_stores=False)
        names = call_names(module.get_function("axpy"))
        assert "mpfr_set" in names

    def test_values_identical(self):
        source = """
        double f(int n) {
          vpfloat<mpfr, 16, 128> A[8];
          for (int i = 0; i < n; i++) A[i] = i * 0.25;
          vpfloat<mpfr, 16, 128> s = 0.0;
          for (int i = 0; i < n; i++) s = s + A[i] * A[i];
          return (double)s;
        }
        """
        a = compile_source(source, backend="mpfr").run("f", [8]).value
        b = compile_source(source, backend="mpfr",
                           in_place_stores=False).run("f", [8]).value
        assert a == b


class TestObjectReuse:
    SOURCE = """
    double many_temps(int n, double *A) {
      vpfloat<mpfr, 16, 128> s = 0.0;
      for (int i = 0; i < n; i++) {
        vpfloat<mpfr, 16, 128> t1 = A[i] * 2.0;
        vpfloat<mpfr, 16, 128> t2 = t1 + 1.0;
        vpfloat<mpfr, 16, 128> t3 = t2 * t2;
        vpfloat<mpfr, 16, 128> t4 = t3 - t1;
        s = s + t4;
      }
      return (double)s;
    }
    """

    def _init_count(self, **kwargs):
        program = compile_source(self.SOURCE, backend="mpfr", **kwargs)
        interp = program.interpreter(cache=False)
        base = interp.memory.alloc_heap(80)
        for i in range(10):
            interp.memory.store(base + 8 * i, float(i), 8)
        result = interp.run("many_temps", [10, base])
        return result.value, interp.mpfr.stats.inits

    def test_reuse_reduces_object_count(self):
        value_on, inits_on = self._init_count()
        value_off, inits_off = self._init_count(reuse_objects=False)
        assert value_on == value_off  # semantics preserved
        assert inits_on < inits_off  # fewer MPFR objects (paper item 7)


class TestHeapArrays:
    def test_malloc_arrays_transparently_managed(self):
        """Paper item 1: objects created through malloc are managed."""
        source = """
        double f(int n) {
          vpfloat<mpfr, 16, 128> *X =
              (vpfloat<mpfr, 16, 128>*)malloc(n * sizeof(vpfloat<mpfr, 16, 128>));
          for (int i = 0; i < n; i++) X[i] = i * 1.5;
          double s = 0.0;
          for (int i = 0; i < n; i++) s = s + (double)X[i];
          return s;
        }
        """
        result = compile_source(source, backend="mpfr").run("f", [8])
        assert result.value == sum(1.5 * i for i in range(8))


class TestDynamicPrecisionLowering:
    def test_init_uses_runtime_precision(self):
        source = """
        double f(unsigned p) {
          vpfloat<mpfr, 16, p> tiny = 1.0;
          for (int i = 0; i < 70; i++) tiny = tiny / 2.0;
          vpfloat<mpfr, 16, p> one = 1.0;
          return (double)((one + tiny) - one);
        }
        """
        program = compile_source(source, backend="mpfr")
        assert program.run("f", [60]).value == 0.0
        assert program.run("f", [120]).value == 2.0 ** -70

    def test_vblas_listing4_compiles_and_runs(self):
        """The paper's Listing 4 BLAS interface through the MPFR backend."""
        from repro.blas import VBLAS_DIALECT_SOURCE

        driver = VBLAS_DIALECT_SOURCE + """
        double run_blas(unsigned p, int n) {
          vpfloat<mpfr, 16, p> X[16];
          vpfloat<mpfr, 16, p> Y[16];
          vpfloat<mpfr, 16, p> alpha = 3.0;
          for (int i = 0; i < n; i++) { X[i] = i; Y[i] = 1.0; }
          vaxpy(p, n, alpha, X, Y);
          vpfloat<mpfr, 16, p> d = vdot(p, n, Y, Y);
          return (double)d;
        }
        """
        program = compile_source(driver, backend="mpfr")
        got = program.run("run_blas", [200, 16]).value
        expect = sum((1.0 + 3.0 * i) ** 2 for i in range(16))
        assert got == expect
