"""Coprocessor architectural model: control regs, memory ops, timing."""

import pytest

from repro.bigfloat import BigFloat
from repro.unum import (
    CoprocessorError,
    GCycleModel,
    GLayerError,
    GLayerUnit,
    MemorySubsystemErratum,
    UnumCoprocessor,
)


class FlatMemory:
    """Minimal byte-addressed memory for coprocessor tests."""

    def __init__(self, size=4096):
        self.data = bytearray(size)

    def load_bytes(self, address, n):
        return bytes(self.data[address:address + n])

    def store_bytes(self, address, payload):
        self.data[address:address + len(payload)] = payload


@pytest.fixture()
def cop():
    c = UnumCoprocessor(wgp=128)
    c.set_ess(3)
    c.set_fss(6)
    return c


class TestGLayer:
    def test_wgp_bounds(self):
        with pytest.raises(GLayerError):
            GLayerUnit(0)
        with pytest.raises(GLayerError):
            GLayerUnit(513)
        GLayerUnit(512)  # max is legal

    def test_arithmetic_rounds_to_wgp(self):
        g = GLayerUnit(64)
        a = BigFloat.from_int(1, 300)
        b = BigFloat.from_int(3, 300)
        assert g.div(a, b).prec == 64

    def test_cycle_scaling_with_precision(self):
        model = GCycleModel()
        assert model.mul(512) > model.mul(64)
        assert model.add(512) > model.add(64)
        assert model.div(512) > model.div(64)
        # Multiply is quadratic in words, add linear.
        assert (model.mul(512) - model.mul_base) == (
            (model.mul(64) - model.mul_base) * 64
        )

    def test_cycles_accumulate(self):
        g = GLayerUnit(128)
        a = BigFloat.from_int(2, 128)
        g.add(a, a)
        g.mul(a, a)
        assert g.cycles == g.cycle_model.add(128) + g.cycle_model.mul(128)


class TestControlRegisters:
    def test_memory_access_requires_config(self):
        cop = UnumCoprocessor()
        with pytest.raises(CoprocessorError):
            cop.load(0, FlatMemory(), 0)

    def test_wgp_update(self, cop):
        cop.set_wgp(512)
        assert cop.glayer.wgp == 512

    def test_mbb_truncates_memory_format(self, cop):
        assert cop.memory_config().size_bytes == 11  # unum<3,6> default
        cop.set_mbb(6)
        assert cop.memory_config().size_bytes == 6
        assert cop.memory_config().fraction_bits == 29

    def test_mbb_larger_than_format_is_harmless(self, cop):
        cop.set_mbb(64)
        assert cop.memory_config().size_bytes == 11

    def test_bad_mbb(self, cop):
        with pytest.raises(CoprocessorError):
            cop.set_mbb(0)
        with pytest.raises(CoprocessorError):
            cop.set_mbb(69)


class TestRegisterFile:
    def test_read_uninitialized_raises(self, cop):
        with pytest.raises(CoprocessorError):
            cop.read(5)

    def test_out_of_range(self, cop):
        with pytest.raises(CoprocessorError):
            cop.read(32)
        with pytest.raises(CoprocessorError):
            cop.write(-1, BigFloat.zero())

    def test_mov(self, cop):
        cop.gcvt_d2g(1, 2.5)
        cop.gmov(2, 1)
        assert cop.gcvt_g2d(2) == 2.5


class TestArithmeticInstructions:
    def test_three_address_ops(self, cop):
        cop.gcvt_d2g(1, 6.0)
        cop.gcvt_d2g(2, 2.0)
        cop.gadd(3, 1, 2)
        assert cop.gcvt_g2d(3) == 8.0
        cop.gsub(3, 1, 2)
        assert cop.gcvt_g2d(3) == 4.0
        cop.gmul(3, 1, 2)
        assert cop.gcvt_g2d(3) == 12.0
        cop.gdiv(3, 1, 2)
        assert cop.gcvt_g2d(3) == 3.0

    def test_fma_and_sqrt(self, cop):
        cop.gcvt_d2g(1, 3.0)
        cop.gcvt_d2g(2, 4.0)
        cop.gcvt_d2g(3, 5.0)
        cop.gfma(4, 1, 2, 3)
        assert cop.gcvt_g2d(4) == 17.0
        cop.gcvt_d2g(5, 16.0)
        cop.gsqrt(6, 5)
        assert cop.gcvt_g2d(6) == 4.0

    def test_cmp(self, cop):
        cop.gcvt_d2g(1, 1.0)
        cop.gcvt_d2g(2, 2.0)
        assert cop.gcmp(1, 2) < 0
        assert cop.gcmp(2, 1) > 0
        assert cop.gcmp(1, 1) == 0

    def test_int_conversion(self, cop):
        cop.gcvt_i2g(1, -17)
        assert cop.gcvt_g2d(1) == -17.0

    def test_opcode_stats(self, cop):
        cop.gcvt_d2g(1, 1.0)
        cop.gadd(2, 1, 1)
        cop.gadd(3, 2, 2)
        assert cop.stats.by_opcode["gadd"] == 2
        assert cop.stats.by_opcode["gcvt.d.g"] == 1


class TestMemoryInstructions:
    def test_store_load_round_trip(self, cop):
        mem = FlatMemory()
        cop.gcvt_d2g(1, 1.3)
        cop.store(1, mem, 128)
        cop.load(2, mem, 128)
        assert cop.gcvt_g2d(2) == pytest.approx(1.3, rel=1e-15)
        assert cop.stats.bytes_stored == 11
        assert cop.stats.bytes_loaded == 11

    def test_mbb_bounds_bytes_moved(self, cop):
        mem = FlatMemory()
        cop.set_mbb(6)
        cop.gcvt_d2g(1, 1.3)
        cop.store(1, mem, 0)
        assert cop.stats.bytes_stored == 6
        cop.load(2, mem, 0)
        # 29 fraction bits survive: relative error about 2**-29.
        assert cop.gcvt_g2d(2) == pytest.approx(1.3, rel=1e-8)

    def test_memory_cost_scales_with_bytes(self):
        wide = UnumCoprocessor(wgp=512)
        wide.set_ess(4)
        wide.set_fss(9)
        narrow = UnumCoprocessor(wgp=512)
        narrow.set_ess(3)
        narrow.set_fss(6)
        mem = FlatMemory()
        wide.gcvt_d2g(1, 1.0)
        narrow.gcvt_d2g(1, 1.0)
        w0, n0 = wide.cycles, narrow.cycles
        wide.store(1, mem, 0)
        narrow.store(1, mem, 256)
        assert wide.cycles - w0 > narrow.cycles - n0

    def test_erratum_triggers_on_wide_bursts(self):
        cop = UnumCoprocessor(wgp=512, erratum_enabled=True)
        cop.set_ess(4)
        cop.set_fss(9)  # 68-byte format: beyond the erratum's 64-byte limit
        cop.gcvt_d2g(1, 1.0)
        with pytest.raises(MemorySubsystemErratum):
            cop.store(1, FlatMemory(), 0)

    def test_erratum_disabled_by_default(self, cop):
        mem = FlatMemory()
        cop.gcvt_d2g(1, 1.0)
        cop.store(1, mem, 0)  # must not raise
