"""Unit tests for the core rounding step (repro.bigfloat.rounding)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bigfloat.rounding import (
    RNDA,
    RNDD,
    RNDN,
    RNDU,
    RNDZ,
    round_significand,
)


class TestExactValues:
    def test_fits_exactly(self):
        mant, exp, inexact = round_significand(0, 0b1011, 0, 4)
        assert (mant, exp, inexact) == (0b1011, 0, False)

    def test_widens_to_prec(self):
        mant, exp, inexact = round_significand(0, 0b101, 3, 6)
        assert mant == 0b101000
        assert exp == 0  # value preserved: 0b101 * 2**3 == 0b101000 * 2**0
        assert inexact is False

    def test_rejects_nonpositive_mantissa(self):
        with pytest.raises(ValueError):
            round_significand(0, 0, 0, 4)
        with pytest.raises(ValueError):
            round_significand(0, -3, 0, 4)

    def test_rejects_bad_precision(self):
        with pytest.raises(ValueError):
            round_significand(0, 1, 0, 0)


class TestNearestEven:
    def test_round_down_below_half(self):
        # 0b10001 -> 4 bits: low bit 1 < half? shift=1, low=1, half=1 -> tie
        # use 0b100001 -> 5 bits to 4: shift 1 low 1 half 1 tie, q even -> down
        mant, exp, _ = round_significand(0, 0b10001, 0, 4, RNDN)
        assert mant == 0b1000  # tie to even (q=0b1000 even)
        assert exp == 1

    def test_tie_to_even_rounds_up_when_odd(self):
        mant, exp, _ = round_significand(0, 0b10011, 0, 4, RNDN)
        assert mant == 0b1010  # q=0b1001 odd, tie -> up
        assert exp == 1

    def test_above_half_rounds_up(self):
        mant, exp, _ = round_significand(0, 0b100011, 0, 4, RNDN)
        # shift=2, low=0b11 > half=0b10 -> up
        assert mant == 0b1001
        assert exp == 2

    def test_carry_renormalizes(self):
        mant, exp, _ = round_significand(0, 0b11111, 0, 4, RNDN)
        # q=0b1111, low=1=half tie, q odd -> up -> 0b10000 -> renorm
        assert mant == 0b1000
        assert exp == 2

    def test_sticky_breaks_tie_upward(self):
        no_sticky, e1, _ = round_significand(0, 0b10001, 0, 4, RNDN, sticky=False)
        with_sticky, e2, _ = round_significand(0, 0b10001, 0, 4, RNDN, sticky=True)
        assert no_sticky == 0b1000
        assert with_sticky == 0b1001


class TestDirectedModes:
    def test_toward_zero_truncates(self):
        mant, _, _ = round_significand(0, 0b10111, 0, 4, RNDZ)
        assert mant == 0b1011
        mant, _, _ = round_significand(1, 0b10111, 0, 4, RNDZ)
        assert mant == 0b1011

    def test_toward_positive(self):
        up, _, _ = round_significand(0, 0b10001, 0, 4, RNDU)
        down, _, _ = round_significand(1, 0b10001, 0, 4, RNDU)
        assert up == 0b1001  # positive rounds away
        assert down == 0b1000  # negative truncates

    def test_toward_negative(self):
        pos, _, _ = round_significand(0, 0b10001, 0, 4, RNDD)
        neg, _, _ = round_significand(1, 0b10001, 0, 4, RNDD)
        assert pos == 0b1000
        assert neg == 0b1001

    def test_nearest_away_tie(self):
        mant, _, _ = round_significand(0, 0b10001, 0, 4, RNDA)
        assert mant == 0b1001  # tie goes away from zero regardless of parity

    def test_directed_sticky_only(self):
        # Exactly representable except for sticky weight below the ulp.
        mant, exp, inexact = round_significand(0, 0b1000, 0, 4, RNDU, sticky=True)
        assert mant == 0b1001
        assert inexact is True
        mant, _, _ = round_significand(0, 0b1000, 0, 4, RNDZ, sticky=True)
        assert mant == 0b1000


class TestInexactFlag:
    def test_exact_reports_false(self):
        assert round_significand(0, 0b1010, 0, 4)[2] is False

    def test_discarded_bits_report_true(self):
        assert round_significand(0, 0b10101, 0, 4, RNDZ)[2] is True

    def test_sticky_reports_true(self):
        assert round_significand(0, 0b1010, 0, 4, RNDZ, sticky=True)[2] is True


@given(
    mant=st.integers(min_value=1, max_value=1 << 96),
    exp=st.integers(min_value=-200, max_value=200),
    prec=st.integers(min_value=1, max_value=80),
)
def test_normalization_invariant(mant, exp, prec):
    """Result is always normalized to exactly prec bits."""
    q, _, _ = round_significand(0, mant, exp, prec, RNDN)
    assert q.bit_length() == prec


@given(
    mant=st.integers(min_value=1, max_value=1 << 96),
    exp=st.integers(min_value=-200, max_value=200),
    prec=st.integers(min_value=1, max_value=80),
)
def test_directed_bracket_invariant(mant, exp, prec):
    """RNDD result <= exact value <= RNDU result (for positive inputs)."""
    qd, ed, _ = round_significand(0, mant, exp, prec, RNDD)
    qu, eu, _ = round_significand(0, mant, exp, prec, RNDU)
    # Compare as exact rationals scaled by 2**min_exp.
    m = min(ed, eu, exp)
    exact = mant << (exp - m)
    low = qd << (ed - m)
    high = qu << (eu - m)
    assert low <= exact <= high


@given(
    mant=st.integers(min_value=1, max_value=1 << 96),
    exp=st.integers(min_value=-200, max_value=200),
    prec=st.integers(min_value=2, max_value=80),
)
def test_nearest_is_within_half_ulp(mant, exp, prec):
    qn, en, _ = round_significand(0, mant, exp, prec, RNDN)
    m = min(en, exp)
    exact = mant << (exp - m)
    rounded = qn << (en - m)
    ulp = 1 << (en - m)
    assert abs(rounded - exact) * 2 <= ulp
