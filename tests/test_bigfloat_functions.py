"""Transcendental functions: cross-checks against math and known digits."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bigfloat import (
    BigFloat,
    const_log2,
    const_pi,
    cos,
    exp,
    from_str,
    log,
    log2,
    log10,
    pow,
    sin,
    tan,
    to_str,
)

# Published digit strings used as ground truth.
PI_50 = "3.1415926535897932384626433832795028841971693993751"
LN2_50 = "0.69314718055994530941723212145817656807550013436026"
E_50 = "2.7182818284590452353602874713526624977572470936999"

moderate = st.floats(min_value=-30.0, max_value=30.0,
                     allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=1e-30, max_value=1e30,
                     allow_nan=False, allow_infinity=False)


def rel_close(a: float, b: float, ulps: float = 4.0) -> bool:
    if b == 0:
        return abs(a) < 1e-300
    return abs(a - b) <= ulps * abs(b) * 2**-52


class TestConstants:
    def test_pi_digits(self):
        reference = from_str(PI_50, 170)
        assert abs((const_pi(170) - reference)).to_float() < 1e-49

    def test_log2_digits(self):
        reference = from_str(LN2_50, 170)
        assert abs((const_log2(170) - reference)).to_float() < 1e-49

    def test_pi_cached_across_precisions(self):
        a = const_pi(100)
        b = const_pi(500)
        assert a == b.round_to(100)


class TestExp:
    def test_e_digits(self):
        e = exp(BigFloat.from_int(1, 170), 170)
        assert abs((e - from_str(E_50, 170))).to_float() < 1e-49

    @given(moderate)
    def test_matches_math(self, x):
        got = exp(BigFloat.from_float(x), 53).to_float()
        assert rel_close(got, math.exp(x))

    def test_specials(self):
        assert exp(BigFloat.nan(), 53).is_nan()
        assert exp(BigFloat.inf(), 53).is_inf()
        assert exp(BigFloat.inf(53, 1), 53).is_zero()
        assert exp(BigFloat.zero(), 53).to_float() == 1.0

    def test_large_argument_raises(self):
        with pytest.raises(OverflowError):
            exp(BigFloat.from_float(1e20), 53)

    def test_exp_log_round_trip_high_precision(self):
        x = from_str("1.234567890123456789", 300)
        assert abs(log(exp(x, 320), 300) - x).to_float() < 1e-85


class TestLog:
    @given(positive)
    def test_matches_math(self, x):
        got = log(BigFloat.from_float(x), 53).to_float()
        assert rel_close(got, math.log(x), ulps=8)

    def test_log_one_is_zero(self):
        assert log(BigFloat.from_int(1), 53).is_zero()

    def test_specials(self):
        assert log(BigFloat.nan(), 53).is_nan()
        assert log(BigFloat.from_int(-1), 53).is_nan()
        z = log(BigFloat.zero(), 53)
        assert z.is_inf() and z.sign == 1
        assert log(BigFloat.inf(), 53).is_inf()

    def test_log2_of_powers_of_two(self):
        for k in (-5, 0, 1, 10, 100):
            x = BigFloat.from_fraction(1 << max(k, 0), 1 << max(-k, 0), 200)
            assert log2(x, 100).to_float() == float(k)

    def test_log10_of_1000(self):
        assert abs(log10(BigFloat.from_int(1000), 100).to_float() - 3.0) < 1e-25


class TestTrig:
    @given(moderate)
    def test_sin_matches_math(self, x):
        got = sin(BigFloat.from_float(x), 53).to_float()
        assert abs(got - math.sin(x)) < 1e-14

    @given(moderate)
    def test_cos_matches_math(self, x):
        got = cos(BigFloat.from_float(x), 53).to_float()
        assert abs(got - math.cos(x)) < 1e-14

    @given(st.floats(min_value=-1.4, max_value=1.4))
    def test_tan_matches_math(self, x):
        got = tan(BigFloat.from_float(x), 53).to_float()
        assert rel_close(got, math.tan(x), ulps=32)

    @given(moderate)
    def test_pythagorean_identity(self, x):
        v = BigFloat.from_float(x, 120)
        s, c = sin(v, 120), cos(v, 120)
        total = (s * s + c * c).to_float()
        assert abs(total - 1.0) < 1e-30

    def test_sin_pi_is_tiny(self):
        pi = const_pi(300)
        assert abs(sin(pi, 200)).to_float() < 1e-85

    def test_specials(self):
        assert sin(BigFloat.inf(), 53).is_nan()
        assert cos(BigFloat.nan(), 53).is_nan()
        assert sin(BigFloat.zero(), 53).is_zero()
        assert cos(BigFloat.zero(), 53).to_float() == 1.0


class TestPow:
    @given(st.floats(min_value=0.01, max_value=100),
           st.floats(min_value=-10, max_value=10))
    def test_matches_math(self, x, y):
        got = pow(BigFloat.from_float(x), BigFloat.from_float(y), 53).to_float()
        assert rel_close(got, math.pow(x, y), ulps=64)

    def test_anything_to_zero_is_one(self):
        assert pow(BigFloat.from_float(7.5), BigFloat.zero(), 53).to_float() == 1.0

    def test_negative_base_integer_exponent(self):
        got = pow(BigFloat.from_int(-2), BigFloat.from_int(3), 53)
        assert got.to_float() == -8.0
        got = pow(BigFloat.from_int(-2), BigFloat.from_int(4), 53)
        assert got.to_float() == 16.0

    def test_negative_base_fractional_exponent_nan(self):
        assert pow(BigFloat.from_int(-2), BigFloat.from_float(0.5), 53).is_nan()

    def test_zero_base(self):
        assert pow(BigFloat.zero(), BigFloat.from_int(2), 53).is_zero()
        assert pow(BigFloat.zero(), BigFloat.from_int(-2), 53).is_inf()
