"""The C-style MPFR object layer: lifetime, stats, specialized entries."""

import pytest

from repro.bigfloat import MpfrLibrary, MpfrUseAfterClear, limb_bytes


@pytest.fixture()
def lib():
    return MpfrLibrary()


class TestLifetime:
    def test_init_leaves_nan(self, lib):
        v = lib.init2(128)
        assert v.value.is_nan()
        assert v.prec == 128

    def test_init_clear_accounting(self, lib):
        a = lib.init2(100)
        b = lib.init2(200)
        assert lib.live_objects == 2
        assert lib.peak_live_objects == 2
        lib.clear(a)
        assert lib.live_objects == 1
        lib.clear(b)
        assert lib.stats.inits == 2
        assert lib.stats.clears == 2

    def test_double_clear_raises(self, lib):
        v = lib.init2(64)
        lib.clear(v)
        with pytest.raises(MpfrUseAfterClear):
            lib.clear(v)

    def test_use_after_clear_raises(self, lib):
        a, b, c = lib.init2(64), lib.init2(64), lib.init2(64)
        lib.set_d(a, 1.0)
        lib.set_d(b, 2.0)
        lib.clear(c)
        with pytest.raises(MpfrUseAfterClear):
            lib.add(c, a, b)

    def test_min_precision(self, lib):
        with pytest.raises(ValueError):
            lib.init2(1)

    def test_limb_accounting(self, lib):
        lib.init2(128)
        assert lib.stats.limb_bytes_allocated == limb_bytes(128)
        assert limb_bytes(128) == 16
        assert limb_bytes(129) == 24
        assert limb_bytes(53) == 8


class TestArithmetic:
    def test_three_address_pattern(self, lib):
        a, b, dst = lib.init2(100), lib.init2(100), lib.init2(100)
        lib.set_str(a, "1.5")
        lib.set_str(b, "2.25")
        lib.add(dst, a, b)
        assert lib.get_d(dst) == 3.75
        lib.mul(dst, a, b)
        assert lib.get_d(dst) == 3.375
        lib.sub(dst, dst, a)  # dest aliases a source: allowed by MPFR
        assert lib.get_d(dst) == 1.875

    def test_dest_precision_governs_rounding(self, lib):
        a, b = lib.init2(200), lib.init2(200)
        narrow = lib.init2(10)
        lib.set_si(a, 1)
        lib.set_si(b, 3)
        lib.div(narrow, a, b)
        assert narrow.value.prec == 10

    def test_fma(self, lib):
        a, b, c, d = (lib.init2(64) for _ in range(4))
        lib.set_d(a, 2.0)
        lib.set_d(b, 3.0)
        lib.set_d(c, 1.0)
        lib.fma(d, a, b, c)
        assert lib.get_d(d) == 7.0
        lib.fms(d, a, b, c)
        assert lib.get_d(d) == 5.0

    def test_unary_ops(self, lib):
        a, d = lib.init2(64), lib.init2(64)
        lib.set_d(a, 4.0)
        lib.sqrt(d, a)
        assert lib.get_d(d) == 2.0
        lib.neg(d, a)
        assert lib.get_d(d) == -4.0
        lib.abs(d, d)
        assert lib.get_d(d) == 4.0

    def test_math_functions(self, lib):
        import math

        a, d = lib.init2(80), lib.init2(80)
        lib.set_d(a, 1.0)
        lib.exp(d, a)
        assert abs(lib.get_d(d) - math.e) < 1e-15
        lib.log(d, d)
        assert abs(lib.get_d(d) - 1.0) < 1e-15
        lib.sin(d, a)
        assert abs(lib.get_d(d) - math.sin(1)) < 1e-15
        lib.cos(d, a)
        assert abs(lib.get_d(d) - math.cos(1)) < 1e-15

    def test_swap(self, lib):
        a, b = lib.init2(64), lib.init2(128)
        lib.set_d(a, 1.0)
        lib.set_d(b, 2.0)
        lib.swap(a, b)
        assert lib.get_d(a) == 2.0 and a.prec == 128
        assert lib.get_d(b) == 1.0 and b.prec == 64


class TestSpecializedEntryPoints:
    def test_scalar_variants_counted(self, lib):
        a, d = lib.init2(64), lib.init2(64)
        lib.set_d(a, 10.0)
        lib.add_d(d, a, 1.5)
        lib.mul_si(d, d, 2)
        lib.div_d(d, d, 4.0)
        assert lib.stats.specialized_ops == 3
        assert lib.get_d(d) == 5.75

    def test_reversed_scalar_ops(self, lib):
        a, d = lib.init2(64), lib.init2(64)
        lib.set_d(a, 4.0)
        lib.d_sub(d, 10.0, a)
        assert lib.get_d(d) == 6.0
        lib.d_div(d, 1.0, a)
        assert lib.get_d(d) == 0.25

    def test_generic_vs_specialized_same_value(self, lib):
        a, tmp, d1, d2 = (lib.init2(90) for _ in range(4))
        lib.set_d(a, 3.25)
        lib.set_d(tmp, 1.75)
        lib.add(d1, a, tmp)
        lib.add_d(d2, a, 1.75)
        assert lib.cmp(d1, d2) == 0


class TestComparisonsAndConversions:
    def test_cmp(self, lib):
        a, b = lib.init2(64), lib.init2(64)
        lib.set_d(a, 1.0)
        lib.set_d(b, 2.0)
        assert lib.cmp(a, b) < 0
        assert lib.cmp(b, a) > 0
        assert lib.cmp(a, a) == 0
        assert lib.cmp_d(a, 0.5) > 0

    def test_get_si_truncates(self, lib):
        a = lib.init2(64)
        lib.set_d(a, -2.75)
        assert lib.get_si(a) == -2

    def test_get_str(self, lib):
        a = lib.init2(64)
        lib.set_str(a, "1.25")
        assert lib.get_str(a, 3) == "1.25e+00"

    def test_stats_by_name(self, lib):
        a = lib.init2(64)
        lib.set_d(a, 1.0)
        lib.set_d(a, 2.0)
        assert lib.stats.by_name["mpfr_set_d"] == 2
        snap = lib.stats.snapshot()
        lib.set_d(a, 3.0)
        assert snap.by_name["mpfr_set_d"] == 2  # snapshot is detached
        assert lib.stats.total_calls() == 4
