"""Randomized cross-check of the precision-specialized arithmetic
kernels (:mod:`repro.codegen.kernels`) against :mod:`repro.bigfloat.arith`.

The jit engine inlines ``specialized_kernel(op, prec, rm)`` bodies into
emitted code; every one of them must produce results bit-identical to
the library entry it replaces -- across precisions, rounding modes, and
special values -- or jit runs would silently diverge from the other
engines.
"""

import random

import pytest

from repro.bigfloat import BigFloat, RNDA, RNDD, RNDN, RNDU, RNDZ, arith
from repro.codegen.kernels import KERNEL_OPS, kernel_source, \
    specialized_kernel

PRECISIONS = (24, 53, 64, 113, 160, 256, 512)
ROUNDING_MODES = (RNDN, RNDZ, RNDU, RNDD, RNDA)
SAMPLES_PER_CONFIG = 12

LIBRARY = {
    "add": arith.add, "sub": arith.sub, "mul": arith.mul,
    "div": arith.div, "fma": arith.fma, "fms": arith.fms,
    "sqrt": arith.sqrt,
}
ARITY = {"add": 2, "sub": 2, "mul": 2, "div": 2,
         "fma": 3, "fms": 3, "sqrt": 1}


def _key(x: BigFloat):
    return (x.kind, x.sign, x.mant, x.exp, x.prec)


def _random_value(rng: random.Random, prec: int) -> BigFloat:
    magnitude = rng.uniform(-40.0, 40.0)
    mantissa = rng.uniform(1.0, 2.0) * (-1 if rng.random() < 0.5 else 1)
    value = BigFloat.from_float(mantissa * (2.0 ** int(magnitude)),
                                max(prec, 53))
    # Shift the exponent around so limbs beyond float53 participate.
    extra = BigFloat.from_int(rng.randrange(1, 1 << min(prec, 200)),
                              prec)
    return arith.mul(value, extra, prec)


SPECIALS = (
    BigFloat.zero(64), BigFloat.zero(64, sign=1),
    BigFloat.inf(64), BigFloat.inf(64, sign=1), BigFloat.nan(64),
    BigFloat.from_int(1, 64), BigFloat.from_int(-3, 64),
)


class TestKernelEquivalence:
    @pytest.mark.parametrize("op", KERNEL_OPS)
    @pytest.mark.parametrize("prec", PRECISIONS)
    def test_random_inputs_all_rounding_modes(self, op, prec):
        rng = random.Random(0xC0FFEE ^ prec ^ hash(op))
        arity = ARITY[op]
        reference = LIBRARY[op]
        for rm in ROUNDING_MODES:
            kernel = specialized_kernel(op, prec, rm)
            for _ in range(SAMPLES_PER_CONFIG):
                args = [_random_value(rng, prec) for _ in range(arity)]
                expected = reference(*args, prec, rm)
                got = kernel(*args)
                assert _key(got) == _key(expected), \
                    f"{op} prec={prec} rm={rm} args={args}"

    @pytest.mark.parametrize("op", KERNEL_OPS)
    def test_special_values(self, op):
        arity = ARITY[op]
        reference = LIBRARY[op]
        kernel = specialized_kernel(op, 64, RNDN)
        pools = [SPECIALS] * arity

        def cases(pools):
            if len(pools) == 1:
                for v in pools[0]:
                    yield (v,)
                return
            for v in pools[0]:
                for rest in cases(pools[1:]):
                    yield (v,) + rest

        for args in cases(pools):
            expected = reference(*args, 64, RNDN)
            got = kernel(*args)
            assert _key(got) == _key(expected), f"{op} args={args}"

    def test_kernels_are_memoized(self):
        a = specialized_kernel("add", 128, RNDN)
        b = specialized_kernel("add", 128, RNDN)
        assert a is b
        c = specialized_kernel("add", 256, RNDN)
        assert a is not c

    def test_kernel_source_mentions_op_and_precision(self):
        source = kernel_source("div", 192, RNDN)
        assert "192" in source

    def test_unknown_op_rejected(self):
        with pytest.raises(ValueError):
            kernel_source("pow", 64, RNDN)
