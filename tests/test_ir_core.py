"""IR core: types, def-use, RAUW, attribute registry, verifier."""

import pytest

from repro.ir import (
    F64,
    I1,
    I32,
    I64,
    VOID,
    ArrayType,
    BasicBlock,
    BinaryInst,
    BranchInst,
    ConstantInt,
    DominatorTree,
    FloatType,
    Function,
    FunctionType,
    IntType,
    IRBuilder,
    LoopInfo,
    Module,
    PointerType,
    RetInst,
    StructType,
    VerificationError,
    VPFloatType,
    verify_function,
    verify_module,
)


def simple_function(ret=F64, params=(F64,), name="f"):
    m = Module("t")
    f = m.add_function(Function(name, FunctionType(ret, list(params))))
    return m, f


class TestTypes:
    def test_type_equality(self):
        assert IntType(32) == IntType(32)
        assert IntType(32) != IntType(64)
        assert FloatType(64) == F64
        assert PointerType(F64) == PointerType(FloatType(64))
        assert ArrayType(F64, 4) != ArrayType(F64, 5)

    def test_sizes(self):
        assert I32.size_bytes() == 4
        assert F64.size_bytes() == 8
        assert PointerType(F64).size_bytes() == 8
        assert ArrayType(I64, 3).size_bytes() == 24
        struct = StructType("s", [I32, I32, I64, PointerType(I64)])
        assert struct.size_bytes() == 24
        assert struct.field_offset(2) == 8

    def test_vpfloat_static_geometry(self):
        t = VPFloatType("mpfr", ConstantInt(I32, 16), ConstantInt(I32, 128))
        assert t.is_static
        assert t.static_precision == 128
        assert t.size_bytes() == 24 + 16  # struct header + 2 limb words
        u = VPFloatType("unum", ConstantInt(I32, 3), ConstantInt(I32, 6))
        assert u.static_precision == 65  # 64 fraction bits + hidden
        assert u.size_bytes() == 11

    def test_vpfloat_equality_rules(self):
        """Equal only with identical attributes (paper §III-A3)."""
        a = VPFloatType("mpfr", ConstantInt(I32, 16), ConstantInt(I32, 128))
        b = VPFloatType("mpfr", ConstantInt(I32, 16), ConstantInt(I32, 128))
        c = VPFloatType("mpfr", ConstantInt(I32, 16), ConstantInt(I32, 256))
        assert a == b  # same constant attributes
        assert a != c
        m, f = simple_function(params=(I32,))
        dyn1 = VPFloatType("mpfr", ConstantInt(I32, 16), f.args[0])
        dyn2 = VPFloatType("mpfr", ConstantInt(I32, 16), f.args[0])
        assert dyn1 == dyn2  # identical attribute Values
        assert dyn1 != a

    def test_vpfloat_dynamic_size_raises(self):
        m, f = simple_function(params=(I32,))
        dyn = VPFloatType("mpfr", ConstantInt(I32, 16), f.args[0])
        assert not dyn.is_static
        with pytest.raises(TypeError):
            dyn.size_bytes()

    def test_invalid_mpfr_attrs(self):
        bad = VPFloatType("mpfr", ConstantInt(I32, 99),
                          ConstantInt(I32, 128))
        with pytest.raises(ValueError):
            bad.static_geometry()


class TestDefUse:
    def test_operand_back_edges(self):
        m, f = simple_function(params=(F64, F64))
        b = IRBuilder(f.add_block("entry"))
        add = b.fadd(f.args[0], f.args[1])
        b.ret(add)
        assert add in f.args[0].users
        assert add in f.args[1].users

    def test_rauw(self):
        m, f = simple_function(params=(F64, F64))
        b = IRBuilder(f.add_block("entry"))
        x = b.fadd(f.args[0], f.args[1])
        y = b.fmul(x, x)
        b.ret(y)
        replacement = b.const_float(2.0)
        x.replace_all_uses_with(replacement)
        assert y.operands[0] is replacement
        assert y.operands[1] is replacement
        assert not x.users

    def test_erase_with_users_rejected(self):
        m, f = simple_function(params=(F64,))
        b = IRBuilder(f.add_block("entry"))
        x = b.fadd(f.args[0], f.args[0])
        b.ret(x)
        with pytest.raises(RuntimeError):
            x.erase_from_parent()

    def test_duplicate_operand_bookkeeping(self):
        m, f = simple_function(params=(F64,))
        b = IRBuilder(f.add_block("entry"))
        x = b.fadd(f.args[0], f.args[0])
        assert f.args[0].users.count(x) == 2
        x.replace_operand(f.args[0], b.const_float(1.0))
        assert f.args[0].users.count(x) == 0


class TestAttributeRegistry:
    def test_rauw_updates_types(self):
        """Paper §III-B: replacing an attribute updates dependent types."""
        m = Module("t")
        f = m.add_function(Function("g", FunctionType(VOID, [I32, I32]),
                                    ["p", "q"]))
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        vptype = VPFloatType("mpfr", ConstantInt(I32, 16), f.args[0])
        slot = b.alloca(vptype)
        b.ret()
        assert m.vpfloat_attributes.is_attribute(f.args[0])
        f.args[0].replace_all_uses_with(f.args[1])
        assert vptype.prec_attr is f.args[1]
        assert m.vpfloat_attributes.is_attribute(f.args[1])
        assert not m.vpfloat_attributes.is_attribute(f.args[0])

    def test_constants_not_tracked(self):
        m = Module("t")
        vptype = VPFloatType("mpfr", ConstantInt(I32, 16),
                             ConstantInt(I32, 128))
        m.register_vpfloat_type(vptype)
        assert not m.vpfloat_attributes.attributes()


class TestVerifier:
    def test_missing_terminator(self):
        m, f = simple_function(ret=VOID, params=())
        f.add_block("entry")
        block = f.blocks[0]
        block.instructions.append(_detached(BinaryInst(
            "add", ConstantInt(I32, 1), ConstantInt(I32, 2)), block))
        with pytest.raises(VerificationError, match="terminator"):
            verify_function(f)

    def test_use_before_def_rejected(self):
        m, f = simple_function(ret=F64, params=(F64,))
        entry = f.add_block("entry")
        b = IRBuilder(entry)
        # Manually build a use-before-def: create mul first using a later
        # add.
        add = BinaryInst("fadd", f.args[0], f.args[0])
        add.name = "later"
        mul = BinaryInst("fmul", add, add)
        mul.name = "early"
        mul.parent = entry
        entry.instructions.append(mul)
        add.parent = entry
        entry.instructions.append(add)
        b.set_insert_point(entry)
        b.ret(mul)
        with pytest.raises(VerificationError, match="dominate"):
            verify_function(f)

    def test_foreign_attribute_rejected(self):
        m = Module("t")
        f1 = m.add_function(Function("f1", FunctionType(VOID, [I32]), ["p"]))
        f2 = m.add_function(Function("f2", FunctionType(VOID, [])))
        entry = f2.add_block("entry")
        b = IRBuilder(entry)
        alien = VPFloatType("mpfr", ConstantInt(I32, 16), f1.args[0])
        b.alloca(alien)
        b.ret()
        with pytest.raises(VerificationError, match="another function"):
            verify_function(f2)

    def test_valid_module_passes(self):
        m, f = simple_function(params=(F64, F64))
        b = IRBuilder(f.add_block("entry"))
        b.ret(b.fadd(f.args[0], f.args[1]))
        verify_module(m)


def _detached(inst, block):
    inst.parent = block
    return inst


class TestAnalyses:
    def _diamond(self):
        m, f = simple_function(ret=I32, params=(I1,))
        entry = f.add_block("entry")
        left = f.add_block("left")
        right = f.add_block("right")
        merge = f.add_block("merge")
        b = IRBuilder(entry)
        b.cond_br(f.args[0], left, right)
        b.set_insert_point(left)
        b.br(merge)
        b.set_insert_point(right)
        b.br(merge)
        b.set_insert_point(merge)
        b.ret(b.const_int(0))
        return f, entry, left, right, merge

    def test_dominators_diamond(self):
        f, entry, left, right, merge = self._diamond()
        dom = DominatorTree(f)
        assert dom.dominates(entry, merge)
        assert not dom.dominates(left, merge)
        assert dom.idom[merge] is entry
        assert dom.strictly_dominates(entry, left)
        assert not dom.strictly_dominates(entry, entry)

    def test_dominance_frontiers(self):
        f, entry, left, right, merge = self._diamond()
        dom = DominatorTree(f)
        frontiers = dom.frontiers()
        assert merge in frontiers[left]
        assert merge in frontiers[right]
        assert not frontiers[entry]

    def test_loop_info(self):
        m, f = simple_function(ret=VOID, params=(I32,))
        entry = f.add_block("entry")
        header = f.add_block("header")
        body = f.add_block("body")
        exit_ = f.add_block("exit")
        b = IRBuilder(entry)
        b.br(header)
        b.set_insert_point(header)
        phi = b.phi(I32, "i")
        cond = b.icmp("slt", phi, f.args[0])
        b.cond_br(cond, body, exit_)
        b.set_insert_point(body)
        nxt = b.add(phi, b.const_int(1))
        b.br(header)
        phi.add_incoming(b.const_int(0), entry)
        phi.add_incoming(nxt, body)
        b.set_insert_point(exit_)
        b.ret()
        info = LoopInfo(f)
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert loop.header is header
        assert body in loop.blocks
        assert loop.exits() == [exit_]
        assert loop.preheader() is entry
        assert loop.latches() == [body]
