"""UNUM machine: instruction-level execution behaviours."""

import pytest

from repro import compile_source
from repro.bigfloat import BigFloat
from repro.runtime.unum_machine import UnumMachine, UnumMachineError
from repro.unum import UnumConfig, encode


def run_unum(source, fn, args, **compile_kwargs):
    program = compile_source(source, backend="unum", **compile_kwargs)
    machine = program.machine(cache=False)
    return machine.run(fn, args), machine


class TestScalarISA:
    def test_integer_ops(self):
        source = """
        int f(int a, int b) {
          return (a + b) * (a - b) / 2 + a % b;
        }
        """
        value, _ = run_unum(source, "f", [10, 3])
        assert value == (13 * 7) // 2 + 1

    def test_double_ops(self):
        source = """
        double f(double a, double b) {
          return a * b + a / b - b;
        }
        """
        value, _ = run_unum(source, "f", [6.0, 2.0])
        assert value == 12.0 + 3.0 - 2.0

    def test_libm_dispatch(self):
        import math

        source = "double f(double x) { return sqrt(x) + cos(0.0); }"
        value, _ = run_unum(source, "f", [9.0])
        assert value == 4.0

    def test_select_lowering(self):
        source = "int f(int a, int b) { return a > b ? a : b; }"
        assert run_unum(source, "f", [3, 9])[0] == 9
        assert run_unum(source, "f", [9, 3])[0] == 9

    def test_nested_calls(self):
        source = """
        int square(int x) { return x * x; }
        int f(int a) { return square(a) + square(a + 1); }
        """
        value, _ = run_unum(source, "f", [4],
                            enable_inlining=False)
        assert value == 16 + 25

    def test_recursion_on_machine(self):
        source = """
        int fact(int n) {
          if (n <= 1) return 1;
          return n * fact(n - 1);
        }
        """
        value, _ = run_unum(source, "fact", [6], enable_inlining=False)
        assert value == 720

    def test_memset_pseudo(self):
        source = """
        double f(int n) {
          double A[64];
          for (int i = 0; i < n; i++) A[i] = 0.0;
          return A[n - 1];
        }
        """
        value, machine = run_unum(source, "f", [64])
        assert value == 0.0
        opcodes = [i.opcode for f in machine.asm.functions.values()
                   for i in f.instructions()]
        assert "memset" in opcodes


class TestGLayerBehaviour:
    def test_wgp_governs_arithmetic_precision(self):
        source = """
        double f() {
          FTYPE tiny = 1.0;
          for (int i = 0; i < 40; i++) tiny = tiny / 2.0;
          FTYPE one = 1.0;
          FTYPE acc = one + tiny;
          return (double)(acc - one);
        }
        """
        # fss=5 -> 32 fraction bits: 2**-40 vanishes.
        low, _ = run_unum(source.replace("FTYPE", "vpfloat<unum, 4, 5>"),
                          "f", [])
        assert low == 0.0
        high, _ = run_unum(source.replace("FTYPE", "vpfloat<unum, 4, 7>"),
                           "f", [])
        assert high == 2.0 ** -40

    def test_gneg_and_compare(self):
        source = """
        double f(double x) {
          vpfloat<unum, 4, 7> v = x;
          vpfloat<unum, 4, 7> neg = 0.0 - v;
          if (neg < v) return 1.0;
          return 0.0 - 1.0;
        }
        """
        assert run_unum(source, "f", [2.0])[0] == 1.0
        assert run_unum(source, "f", [-2.0])[0] == -1.0

    def test_uninitialized_greg_read_trap(self):
        from repro.backends.unum_backend.asm import (
            AsmFunction,
            AsmInst,
            AsmModule,
            PReg,
        )

        asm = AsmModule()
        func = asm.add(AsmFunction("f"))
        block = func.add_block("entry")
        block.append(AsmInst("sucfg.ess", [_imm(4)]))
        block.append(AsmInst("sucfg.fss", [_imm(7)]))
        block.append(AsmInst("sucfg.wgp", [_imm(129)]))
        block.append(AsmInst("gadd", [PReg("g", 0), PReg("g", 1),
                                      PReg("g", 2)]))
        block.append(AsmInst("ret", []))
        machine = UnumMachine(asm)
        with pytest.raises(UnumMachineError, match="uninitialized"):
            machine.run("f")

    def test_unknown_opcode_trap(self):
        from repro.backends.unum_backend.asm import (
            AsmFunction,
            AsmInst,
            AsmModule,
        )

        asm = AsmModule()
        func = asm.add(AsmFunction("f"))
        func.add_block("entry").append(AsmInst("bogus", []))
        with pytest.raises(UnumMachineError, match="unknown opcode"):
            UnumMachine(asm).run("f")

    def test_instruction_budget(self):
        source = """
        int f() { int i = 0; while (1) i++; return i; }
        """
        program = compile_source(source, backend="unum")
        machine = program.machine(max_steps=5_000)
        with pytest.raises(UnumMachineError, match="budget"):
            machine.run("f", [])


def _imm(v):
    from repro.backends.unum_backend.asm import Imm

    return Imm(v)


class TestSpillExecution:
    def test_spilled_gregs_round_trip(self):
        """More than 30 live g-values: spill slots must preserve values
        exactly (they hold full-precision objects)."""
        decls = "\n".join(
            f"  vpfloat<unum, 4, 7> v{i} = x + {i}.5;" for i in range(34)
        )
        total = " + ".join(f"v{i}" for i in range(34))
        source = f"""
        double f(double x) {{
        {decls}
          return (double)({total});
        }}
        """
        program = compile_source(source, backend="unum",
                                 enable_unroll=False)
        machine = program.machine(cache=False)
        value = machine.run("f", [1.0])
        assert value == sum(1.0 + i + 0.5 for i in range(34))
        opcodes = [i.opcode for f in program.asm.functions.values()
                   for i in f.instructions()]
        assert "gsdspill" in opcodes or "gldspill" in opcodes
