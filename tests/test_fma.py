"""FMA contraction: pattern matching, single-rounding, backend mapping."""

import pytest

from repro import compile_source
from repro.codegen import generate_ir
from repro.ir import CallInst, verify_module
from repro.lang import analyze, parse
from repro.passes import (
    FMAContractionPass,
    Mem2RegPass,
    PassManager,
    SimplifyCFGPass,
)

MAC = """
double f(int n, double *A) {
  vpfloat<mpfr, 16, 160> s = 0.0;
  vpfloat<mpfr, 16, 160> w = 3.0;
  for (int i = 0; i < n; i++)
    s = s + w * A[i];
  return (double)s;
}
"""


def contract(source):
    module = generate_ir(analyze(parse(source)))
    pm = PassManager(verify_each=True)
    pm.add(Mem2RegPass())
    pm.add(SimplifyCFGPass())
    pm.add(FMAContractionPass())
    stats = pm.run(module)
    verify_module(module)
    return module, stats.changes.get("fma-contract", 0)


class TestPatternMatching:
    def test_mac_contracts(self):
        module, count = contract(MAC)
        assert count == 1
        calls = [i for i in module.get_function("f").instructions()
                 if isinstance(i, CallInst)
                 and getattr(i.callee, "name", "") == "vp.fma"]
        assert len(calls) == 1
        # No stray fmul remains.
        assert not any(i.opcode == "fmul"
                       for i in module.get_function("f").instructions())

    def test_fsub_becomes_fms(self):
        source = """
        double f(vpfloat<mpfr,16,100> a, vpfloat<mpfr,16,100> b,
                 vpfloat<mpfr,16,100> c) {
          return (double)(a * b - c);
        }
        """
        module, count = contract(source)
        assert count == 1
        names = [getattr(i.callee, "name", "")
                 for i in module.get_function("f").instructions()
                 if isinstance(i, CallInst)]
        assert "vp.fms" in names

    def test_multi_use_mul_not_contracted(self):
        source = """
        double f(vpfloat<mpfr,16,100> a, vpfloat<mpfr,16,100> b,
                 vpfloat<mpfr,16,100> c) {
          vpfloat<mpfr,16,100> p = a * b;
          return (double)(p + c + p);
        }
        """
        module, count = contract(source)
        assert count == 0

    def test_c_minus_ab_not_contracted(self):
        source = """
        double f(vpfloat<mpfr,16,100> a, vpfloat<mpfr,16,100> b,
                 vpfloat<mpfr,16,100> c) {
          return (double)(c - a * b);
        }
        """
        module, count = contract(source)
        assert count == 0

    def test_double_type_contracts_too(self):
        source = """
        double f(double a, double b, double c) {
          return a * b + c;
        }
        """
        module, count = contract(source)
        assert count == 1


class TestSemantics:
    def test_single_rounding_differs_from_double_rounding(self):
        """fma(a,b,c) != (a*b)+c when the product needs the extra bits --
        the defining property of a fused operation."""
        source = """
        double f() {
          vpfloat<mpfr, 16, 53> a = 1.0000000001y;
          vpfloat<mpfr, 16, 53> b = 1.0000000001y;
          vpfloat<mpfr, 16, 53> c = -1.0000000002y;
          return (double)(a * b + c);
        }
        """
        plain = compile_source(source, backend="none") \
            .run("f", [], cache=False).value
        fused = compile_source(source, backend="none", contract_fma=True) \
            .run("f", [], cache=False).value
        # Both are tiny; the fused one keeps more of the true value.
        true_value = (1 + 1e-10) ** 2 - (1 + 2e-10)  # ~1e-20
        assert abs(fused - true_value) <= abs(plain - true_value)

    def test_backends_agree_when_fused(self):
        values = {}
        for backend in ("none", "mpfr", "boost"):
            program = compile_source(MAC, backend=backend,
                                     contract_fma=True)
            interp = program.interpreter(cache=False)
            base = interp.memory.alloc_heap(64)
            for k in range(8):
                interp.memory.store(base + 8 * k, float(k), 8)
            values[backend] = interp.run("f", [8, base]).value
        assert values["none"] == values["mpfr"] == values["boost"]

    def test_mpfr_backend_emits_mpfr_fma(self):
        program = compile_source(MAC, backend="mpfr", contract_fma=True)
        interp = program.interpreter(cache=False)
        base = interp.memory.alloc_heap(64)
        for k in range(8):
            interp.memory.store(base + 8 * k, float(k), 8)
        interp.run("f", [8, base])
        assert interp.mpfr.stats.by_name.get("mpfr_fma", 0) == 8

    def test_unum_backend_emits_gfma(self):
        source = MAC.replace("mpfr, 16, 160", "unum, 4, 7")
        program = compile_source(source, backend="unum", contract_fma=True)
        machine = program.machine(cache=False)
        base = machine.memory.alloc_heap(64)
        for k in range(8):
            machine.memory.store(base + 8 * k, float(k), 8)
        result = machine.run("f", [8, base])
        assert result == sum(3.0 * k for k in range(8))
        assert machine.coprocessor.stats.by_opcode.get("gfma") == 8

    def test_fma_reduces_call_count(self):
        """One fused call replaces two (and one fewer rounding)."""
        unfused = compile_source(MAC, backend="mpfr")
        fused = compile_source(MAC, backend="mpfr", contract_fma=True)

        def mpfr_calls(program):
            interp = program.interpreter(cache=False)
            base = interp.memory.alloc_heap(64)
            for k in range(8):
                interp.memory.store(base + 8 * k, float(k), 8)
            interp.run("f", [8, base])
            return interp.mpfr.stats.ops

        assert mpfr_calls(fused) < mpfr_calls(unfused)
