"""Scalar optimizations: mem2reg, constant folding, GVN, DCE, SimplifyCFG."""

import pytest

from repro.ir import (
    F64,
    I1,
    I32,
    VOID,
    BinaryInst,
    ConstantFloat,
    ConstantInt,
    Function,
    FunctionType,
    IRBuilder,
    Module,
    PhiInst,
    VPFloatType,
    verify_function,
)
from repro.passes import (
    ConstantFoldPass,
    DeadCodeEliminationPass,
    GVNPass,
    Mem2RegPass,
    SimplifyCFGPass,
    fold_instruction,
)


def new_function(ret=F64, params=(F64, F64)):
    m = Module("t")
    f = m.add_function(Function("f", FunctionType(ret, list(params))))
    return m, f, IRBuilder(f.add_block("entry"))


class TestMem2Reg:
    def test_promotes_scalar(self):
        m, f, b = new_function()
        slot = b.alloca(F64, name="x")
        b.store(f.args[0], slot)
        loaded = b.load(slot)
        b.ret(loaded)
        assert Mem2RegPass().run(f) == 1
        verify_function(f)
        opcodes = [i.opcode for i in f.instructions()]
        assert "alloca" not in opcodes
        assert "load" not in opcodes
        ret = f.blocks[0].terminator
        assert ret.value is f.args[0]

    def test_phi_insertion_at_merge(self):
        m = Module("t")
        f = m.add_function(Function("f", FunctionType(F64, [I1, F64, F64])))
        entry, left, right, merge = (f.add_block(n) for n in
                                     ("entry", "l", "r", "m"))
        b = IRBuilder(entry)
        slot = b.alloca(F64)
        b.cond_br(f.args[0], left, right)
        b.set_insert_point(left)
        b.store(f.args[1], slot)
        b.br(merge)
        b.set_insert_point(right)
        b.store(f.args[2], slot)
        b.br(merge)
        b.set_insert_point(merge)
        value = b.load(slot)
        b.ret(value)
        Mem2RegPass().run(f)
        verify_function(f)
        phis = merge.phis()
        assert len(phis) == 1
        incoming = {v for v, _ in phis[0].incoming}
        assert incoming == {f.args[1], f.args[2]}

    def test_loop_carried_value(self):
        """i = 0; while (i < n) i = i + 1; return i."""
        m = Module("t")
        f = m.add_function(Function("f", FunctionType(I32, [I32])))
        entry, header, body, exit_ = (f.add_block(n) for n in
                                      ("entry", "h", "b", "e"))
        b = IRBuilder(entry)
        slot = b.alloca(I32)
        b.store(b.const_int(0), slot)
        b.br(header)
        b.set_insert_point(header)
        i1 = b.load(slot)
        cond = b.icmp("slt", i1, f.args[0])
        b.cond_br(cond, body, exit_)
        b.set_insert_point(body)
        i2 = b.load(slot)
        b.store(b.add(i2, b.const_int(1)), slot)
        b.br(header)
        b.set_insert_point(exit_)
        out = b.load(slot)
        b.ret(out)
        Mem2RegPass().run(f)
        verify_function(f)
        assert len(header.phis()) == 1

    def test_escaped_alloca_not_promoted(self):
        m, f, b = new_function(ret=VOID, params=())
        slot = b.alloca(F64, name="x")
        # Address escapes through a call.
        from repro.ir import FunctionType as FT, PointerType

        sink = m.get_or_declare("sink", FT(VOID, (PointerType(F64),)))
        b.call(sink, [slot], name="")
        b.ret()
        assert Mem2RegPass().run(f) == 0
        assert any(i.opcode == "alloca" for i in f.instructions())


class TestConstantFolding:
    def test_int_arith(self):
        inst = BinaryInst("add", ConstantInt(I32, 40), ConstantInt(I32, 2))
        folded = fold_instruction(inst)
        assert isinstance(folded, ConstantInt)
        assert folded.value == 42

    def test_wrapping(self):
        inst = BinaryInst("add", ConstantInt(I32, 2**31 - 1),
                          ConstantInt(I32, 1))
        assert fold_instruction(inst).value == -(2**31)

    def test_division_by_zero_not_folded(self):
        inst = BinaryInst("sdiv", ConstantInt(I32, 1), ConstantInt(I32, 0))
        assert fold_instruction(inst) is None

    def test_float_folding(self):
        inst = BinaryInst("fmul", ConstantFloat(F64, 2.0),
                          ConstantFloat(F64, 3.5))
        assert fold_instruction(inst).value == 7.0

    def test_vpfloat_folding_correctly_rounded(self):
        """Compile-time vpfloat arithmetic uses the same kernels as
        runtime, so folding cannot change results."""
        from repro.bigfloat import BigFloat, from_str
        from repro.ir import ConstantVPFloat

        t = VPFloatType("mpfr", ConstantInt(I32, 16), ConstantInt(I32, 100))
        a = ConstantVPFloat(t, from_str("1.3", 600))
        c = ConstantVPFloat(t, from_str("2.7", 600))
        inst = BinaryInst("fadd", a, c)
        folded = fold_instruction(inst)
        assert isinstance(folded, ConstantVPFloat)
        assert folded.value == BigFloat.from_int(4, 100)

    def test_identities(self):
        m, f, b = new_function(ret=I32, params=(I32,))
        x = f.args[0]
        added = b.add(x, b.const_int(0))
        multiplied = b.mul(added, b.const_int(1))
        b.ret(multiplied)
        ConstantFoldPass().run(f)
        ret = f.blocks[0].terminator
        assert ret.value is x

    def test_fp_identities_respect_neg_zero(self):
        inst = BinaryInst("fadd", ConstantFloat(F64, 1.5),
                          ConstantFloat(F64, -0.0))
        # x + (-0.0) == x is safe.
        assert fold_instruction(inst).value == 1.5

    def test_x_minus_x(self):
        m, f, b = new_function(ret=I32, params=(I32,))
        diff = b.sub(f.args[0], f.args[0])
        b.ret(diff)
        ConstantFoldPass().run(f)
        assert f.blocks[0].terminator.value.value == 0


class TestGVN:
    def test_cse_within_block(self):
        m, f, b = new_function()
        x1 = b.fadd(f.args[0], f.args[1])
        x2 = b.fadd(f.args[0], f.args[1])
        total = b.fmul(x1, x2)
        b.ret(total)
        removed = GVNPass().run(f)
        assert removed == 1
        assert total.operands[0] is total.operands[1]

    def test_commutative_matching(self):
        m, f, b = new_function()
        x1 = b.fadd(f.args[0], f.args[1])
        x2 = b.fadd(f.args[1], f.args[0])
        b.ret(b.fmul(x1, x2))
        assert GVNPass().run(f) == 1

    def test_loads_invalidated_by_store(self):
        from repro.ir import PointerType

        m = Module("t")
        f = m.add_function(Function("f", FunctionType(
            F64, [PointerType(F64), F64])))
        b = IRBuilder(f.add_block("entry"))
        ptr = f.args[0]
        first = b.load(ptr)
        b.store(f.args[1], ptr)
        second = b.load(ptr)
        b.ret(b.fadd(first, second))
        assert GVNPass().run(f) == 0  # the store blocks the CSE

    def test_loads_cse_without_clobber(self):
        from repro.ir import PointerType

        m = Module("t")
        f = m.add_function(Function("f", FunctionType(
            F64, [PointerType(F64)])))
        b = IRBuilder(f.add_block("entry"))
        first = b.load(f.args[0])
        second = b.load(f.args[0])
        b.ret(b.fadd(first, second))
        assert GVNPass().run(f) == 1


class TestDCE:
    def test_removes_dead_chain(self):
        m, f, b = new_function()
        dead1 = b.fadd(f.args[0], f.args[1])
        dead2 = b.fmul(dead1, dead1)
        b.ret(f.args[0])
        removed = DeadCodeEliminationPass().run(f)
        assert removed == 2

    def test_keeps_side_effecting_calls(self):
        m, f, b = new_function(ret=VOID, params=())
        sizeof = m.get_or_declare(
            "__sizeof_vpfloat",
            FunctionType(I32, (I32, I32, I32)))
        b.call(sizeof, [b.const_int(4), b.const_int(9), b.const_int(0)])
        b.ret()
        assert DeadCodeEliminationPass().run(f) == 0  # validation must stay

    def test_attribute_values_pinned(self):
        """DCE must not delete Values used as vpfloat type attributes."""
        m = Module("t")
        f = m.add_function(Function("f", FunctionType(VOID, [I32]), ["p"]))
        b = IRBuilder(f.add_block("entry"))
        doubled = b.add(f.args[0], f.args[0], name="p2")
        vptype = VPFloatType("mpfr", ConstantInt(I32, 16), doubled)
        m.register_vpfloat_type(vptype)
        slot = b.alloca(vptype)
        loaded = b.load(slot)
        b.store(loaded, slot)
        b.ret()
        DeadCodeEliminationPass().run(f)
        assert doubled.parent is not None  # still in the function


class TestSimplifyCFG:
    def test_constant_branch_folded(self):
        m = Module("t")
        f = m.add_function(Function("f", FunctionType(I32, [])))
        entry, then, other = (f.add_block(n) for n in ("entry", "t", "o"))
        b = IRBuilder(entry)
        b.cond_br(b.const_bool(True), then, other)
        b.set_insert_point(then)
        b.ret(b.const_int(1))
        b.set_insert_point(other)
        b.ret(b.const_int(2))
        SimplifyCFGPass().run(f)
        verify_function(f)
        assert len(f.blocks) == 1
        assert f.blocks[0].terminator.value.value == 1

    def test_block_merging(self):
        m = Module("t")
        f = m.add_function(Function("f", FunctionType(I32, [I32])))
        entry, second = f.add_block("entry"), f.add_block("second")
        b = IRBuilder(entry)
        doubled = b.add(f.args[0], f.args[0])
        b.br(second)
        b.set_insert_point(second)
        b.ret(doubled)
        SimplifyCFGPass().run(f)
        verify_function(f)
        assert len(f.blocks) == 1

    def test_trivial_phi_removed(self):
        m = Module("t")
        f = m.add_function(Function("f", FunctionType(I32, [I1, I32])))
        entry, left, right, merge = (f.add_block(n) for n in
                                     ("entry", "l", "r", "m"))
        b = IRBuilder(entry)
        b.cond_br(f.args[0], left, right)
        b.set_insert_point(left)
        b.br(merge)
        b.set_insert_point(right)
        b.br(merge)
        b.set_insert_point(merge)
        phi = b.phi(I32)
        phi.add_incoming(f.args[1], left)
        phi.add_incoming(f.args[1], right)
        b.ret(phi)
        SimplifyCFGPass().run(f)
        verify_function(f)
        assert f.blocks[-1].terminator.value is f.args[1] or \
            len(f.blocks) == 1
