"""Interpreter failure modes and resource guards."""

import pytest

from repro import compile_source
from repro.runtime import ExecutionLimitExceeded, VPRuntimeError
from repro.runtime.memory import MemoryError_


class TestTraps:
    def test_division_by_zero(self):
        program = compile_source("int f(int n) { return 1 / n; }",
                                 backend="none")
        with pytest.raises(VPRuntimeError, match="division by zero"):
            program.run("f", [0])

    def test_remainder_by_zero(self):
        program = compile_source("int f(int n) { return 1 % n; }",
                                 backend="none")
        with pytest.raises(VPRuntimeError, match="remainder by zero"):
            program.run("f", [0])

    def test_null_pointer_store(self):
        source = """
        void f(double *p) { p[0] = 1.0; }
        """
        program = compile_source(source, backend="none")
        with pytest.raises(MemoryError_, match="null pointer"):
            program.run("f", [0])

    def test_negative_vla_extent(self):
        source = """
        double f(int n) {
          double A[n];
          return A[0];
        }
        """
        program = compile_source(source, backend="none")
        with pytest.raises(VPRuntimeError, match="negative VLA extent"):
            program.run("f", [-3])

    def test_fp_division_by_zero_is_ieee(self):
        """FP division by zero does NOT trap: it produces infinity."""
        program = compile_source(
            "double f(double x) { return 1.0 / x; }", backend="none")
        assert program.run("f", [0.0]).value == float("inf")

    def test_execution_limit(self):
        source = """
        int f() {
          int i = 0;
          while (1) i++;
          return i;
        }
        """
        program = compile_source(source, backend="none")
        with pytest.raises(ExecutionLimitExceeded):
            program.run("f", [], max_steps=10_000)

    def test_unknown_runtime_function(self):
        from repro.codegen import generate_ir
        from repro.ir import FunctionType, Function, IRBuilder, VOID
        from repro.runtime import Interpreter
        from repro.ir import Module

        module = Module("m")
        mystery = module.add_function(
            Function("mystery", FunctionType(VOID, [])))
        caller = module.add_function(
            Function("f", FunctionType(VOID, [])))
        builder = IRBuilder(caller.add_block("entry"))
        builder.call(mystery, [], name="")
        builder.ret()
        with pytest.raises(VPRuntimeError, match="unknown runtime function"):
            Interpreter(module).run("f")

    def test_free_of_wild_pointer(self):
        source = """
        void f(long addr) { free((char*)addr); }
        """
        program = compile_source(source, backend="none")
        with pytest.raises(MemoryError_, match="non-heap"):
            program.run("f", [0x12345])

    def test_double_free_caught(self):
        source = """
        void f(int n) {
          char *p = (char*)malloc(n);
          free(p);
          free(p);
        }
        """
        program = compile_source(source, backend="none")
        with pytest.raises(MemoryError_):
            program.run("f", [16])


class TestIODispatch:
    def test_print_builtins_capture_stdout(self):
        source = """
        void f() {
          print_int(42);
          print_double(2.5);
          vpfloat<mpfr, 16, 100> x = 1.5;
          print_vpfloat(x);
        }
        """
        program = compile_source(source, backend="none")
        result = program.run("f", [])
        assert result.stdout[0] == "42"
        assert result.stdout[1] == "2.5"
        assert result.stdout[2].startswith("1.5")

    def test_print_vpfloat_after_mpfr_lowering(self):
        source = """
        void f() {
          vpfloat<mpfr, 16, 100> x = 1.5;
          print_vpfloat(x);
        }
        """
        program = compile_source(source, backend="mpfr")
        result = program.run("f", [])
        assert result.stdout[0].startswith("1.5")
