"""Worker-death recovery in the parallel evaluation engine.

The sweep engine promises graceful degradation: a broken worker pool
falls back to the serial engine with identical results, task-level
failures surface as :class:`EvaluationTaskError` (lowest index first)
without discarding siblings, and the sharding function is a pure
function of the grid.  These paths double as the substrate of the
compile/run service's worker pool, so they get direct coverage here.
"""

import os

import pytest

from repro.core.cache import CompileCache
from repro.evaluation.harness import get_compile_cache, set_compile_cache
from repro.evaluation.parallel import (
    EvaluationTaskError,
    GridPoint,
    init_worker_runtime,
    parallel_map,
    run_grid,
    shard_tasks,
)
from repro.observability import current_ledger, install_ledger
from repro.validation.certificate import values_digest

FTYPE = "vpfloat<mpfr, 16, 64>"


def _die_in_workers(parent_pid: int, value: int) -> int:
    """Kills any worker process outright; returns in the parent."""
    if os.getpid() != parent_pid:
        os._exit(1)
    return value * 2


def _fail_on_odd(value: int) -> int:
    if value % 2:
        raise ValueError(f"odd input {value}")
    return value


class TestShardTasks:
    def test_round_robin_is_deterministic_and_order_preserving(self):
        shards = shard_tasks(7, 3)
        assert shards == [[0, 3, 6], [1, 4], [2, 5]]
        assert shard_tasks(7, 3) == shards  # pure function of the grid

    def test_more_jobs_than_tasks(self):
        shards = shard_tasks(2, 8)
        assert shards == [[0], [1]]

    def test_groups_stay_on_one_shard_in_grid_order(self):
        groups = ["a", "b", "a", "c", "b", "a"]
        shards = shard_tasks(6, 2, groups=groups)
        flat = sorted(i for shard in shards for i in shard)
        assert flat == list(range(6))
        for shard in shards:
            assert shard == sorted(shard)
        placement = {}
        for number, shard in enumerate(shards):
            for index in shard:
                placement[groups[index]] = \
                    placement.get(groups[index], number)
                assert placement[groups[index]] == number

    def test_bad_inputs_rejected(self):
        with pytest.raises(ValueError):
            shard_tasks(4, 0)
        with pytest.raises(ValueError):
            shard_tasks(4, 2, groups=["only-three", "keys", "here"])


class TestPoolDeathRecovery:
    def test_dead_workers_degrade_to_serial_with_results(self, capfd):
        """Every worker dying breaks the pool; the sweep must still
        complete serially with correct results and say why."""
        results = parallel_map(_die_in_workers,
                               [(os.getpid(), v) for v in range(5)],
                               jobs=2, compile_cache=False)
        assert results == [0, 2, 4, 6, 8]
        captured = capfd.readouterr()
        assert "degraded to serial" in captured.err

    def test_broken_pool_constructor_degrades_to_serial(self, capfd,
                                                        monkeypatch):
        """A pool that cannot even start (no semaphores, sandboxed
        fork) is absorbed the same way."""
        import repro.evaluation.parallel as parallel_module

        def broken(*args, **kwargs):
            raise OSError("no POSIX semaphores here")

        monkeypatch.setattr(parallel_module, "_run_pool", broken)
        results = parallel_map(_die_in_workers,
                               [(os.getpid(), v) for v in range(3)],
                               jobs=2, compile_cache=False)
        assert results == [0, 2, 4]
        assert "degraded to serial" in capfd.readouterr().err

    def test_task_failures_surface_lowest_index_first(self):
        """Task exceptions are not crashes: the pool finishes the
        shard and re-raises the lowest failing index with the worker
        traceback."""
        with pytest.raises(EvaluationTaskError) as excinfo:
            parallel_map(_fail_on_odd, [(v,) for v in range(6)],
                         jobs=2, compile_cache=False)
        assert excinfo.value.index == 1
        assert "odd input 1" in str(excinfo.value)

    def test_run_grid_survives_broken_pool_bit_identically(
            self, tmp_path, capfd, monkeypatch):
        """run_grid over a broken pool returns outcomes bit-identical
        to the serial engine."""
        points = [GridPoint.make("trmm", FTYPE, n, backend="mpfr",
                                 engine="jit") for n in (4, 5)]
        serial = run_grid(points, jobs=1,
                          cache_dir=str(tmp_path / "cache"))

        import repro.evaluation.parallel as parallel_module

        def broken(*args, **kwargs):
            raise OSError("pool unavailable")

        monkeypatch.setattr(parallel_module, "_run_pool", broken)
        degraded = run_grid(points, jobs=2,
                            cache_dir=str(tmp_path / "cache"))
        assert "degraded to serial" in capfd.readouterr().err
        for reference, outcome in zip(serial, degraded):
            assert values_digest([reference.value]
                                 + list(reference.outputs)) == \
                values_digest([outcome.value] + list(outcome.outputs))
            assert reference.report.cycles == outcome.report.cycles


class TestWorkerRuntimeInit:
    """init_worker_runtime is shared by sweep shards and the service's
    worker pool; its installs must be observable and reversible."""

    def test_installs_bounded_cache(self, tmp_path):
        previous = get_compile_cache()
        try:
            init_worker_runtime(str(tmp_path / "store"), True, None,
                                max_cache_bytes=4096)
            cache = get_compile_cache()
            assert isinstance(cache, CompileCache)
            assert cache.max_disk_bytes == 4096
            assert str(cache.directory) == str(tmp_path / "store")
        finally:
            set_compile_cache(previous)

    def test_cache_disabled_installs_none(self, tmp_path):
        previous = get_compile_cache()
        try:
            init_worker_runtime(str(tmp_path / "store"), False, None)
            assert get_compile_cache() is None
        finally:
            set_compile_cache(previous)

    def test_ledger_install(self, tmp_path):
        previous_cache = get_compile_cache()
        previous_ledger = current_ledger()
        try:
            path = tmp_path / "ledger.jsonl"
            init_worker_runtime(str(tmp_path / "store"), True,
                                str(path))
            ledger = current_ledger()
            assert ledger is not None
            assert ledger.path == str(path)
        finally:
            set_compile_cache(previous_cache)
            install_ledger(previous_ledger)
