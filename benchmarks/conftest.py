"""Shared fixtures for the benchmark harness.

Every bench regenerates a table or figure of the paper at reduced size
(the full-size drivers live in ``python -m repro.evaluation ...``).
``pytest benchmarks/ --benchmark-only`` runs them all; each records the
modeled speedups as extra_info alongside the wall-clock timing of the
simulation itself.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--paper-scale", action="store_true", default=False,
        help="run benches at the evaluation drivers' full scale",
    )


@pytest.fixture(scope="session")
def paper_scale(request):
    return request.config.getoption("--paper-scale")
