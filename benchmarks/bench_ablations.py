"""Ablation benches for the design choices DESIGN.md calls out.

Each toggles one optimization of the MPFR backend (or the Polly-lite /
loop-idiom machinery) and quantifies its contribution to the Fig. 1
advantage on a representative kernel.
"""

import pytest

from repro.evaluation.harness import run_kernel


def _cycles(kernel, n=8, prec=128, **kwargs):
    return run_kernel(kernel, f"vpfloat<mpfr, 16, {prec}>", n,
                      backend="mpfr", read_outputs=False,
                      **kwargs).report.cycles


class TestObjectReuseAblation:
    """Paper §III-C1 item 7: reuse of dead MPFR objects."""

    def test_reuse_on_vs_off(self, benchmark):
        def measure():
            on = _cycles("durbin", n=12)
            off = _cycles("durbin", n=12, reuse_objects=False)
            return on, off

        on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert on <= off  # reuse never hurts
        benchmark.extra_info["cycles_reuse_on"] = on
        benchmark.extra_info["cycles_reuse_off"] = off
        benchmark.extra_info["gain"] = round(off / on, 3)


class TestSpecializationAblation:
    """Paper item 2: mpfr_*_d / _si specialized entry points."""

    def test_specialize_on_vs_off(self, benchmark):
        def measure():
            # deriche's filter coefficients are *runtime* doubles (built
            # from exp()), exactly the case the _d entry points cover;
            # compile-time double literals are hoisted as MPFR constants
            # instead and are specialization-neutral.
            on = _cycles("deriche", n=10)
            off = _cycles("deriche", n=10, specialize_scalars=False)
            return on, off

        on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert on < off
        benchmark.extra_info["gain"] = round(off / on, 3)


class TestInPlaceStoresAblation:
    """Paper: 'performs in-place operation' -- dest aliases the element."""

    def test_in_place_on_vs_off(self, benchmark):
        def measure():
            on = _cycles("gemm", n=8)
            off = _cycles("gemm", n=8, in_place_stores=False)
            return on, off

        on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert on < off
        benchmark.extra_info["gain"] = round(off / on, 3)


class TestLoopIdiomAblation:
    """Paper §III-B: memset/memcpy recognition (unum types only)."""

    def test_idiom_on_vs_off(self, benchmark):
        source_kwargs = {"backend": "unum", "read_outputs": False}

        def measure():
            on = run_kernel("jacobi-1d", "vpfloat<unum, 3, 6>", 48,
                            **source_kwargs).report.cycles
            off = run_kernel("jacobi-1d", "vpfloat<unum, 3, 6>", 48,
                             enable_loop_idiom=False,
                             **source_kwargs).report.cycles
            return on, off

        on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert on <= off * 1.02  # idiom may be neutral on this kernel
        benchmark.extra_info["cycles_on"] = on
        benchmark.extra_info["cycles_off"] = off


class TestPollyAblation:
    """The +/-Polly axis of Figs. 1-2: tiling a large-working-set gemm."""

    def test_polly_on_vs_off(self, benchmark):
        def measure():
            off = run_kernel("gemm", "double", 40, backend="none",
                             read_outputs=False)
            on = run_kernel("gemm", "double", 40, backend="none",
                            polly=True, read_outputs=False)
            return on.report, off.report

        on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
        # Tiling must not lose L1 locality; report both hit counts.
        benchmark.extra_info["l1_hits_polly"] = on.cache_hits[0]
        benchmark.extra_info["l1_hits_plain"] = off.cache_hits[0]
        benchmark.extra_info["llc_miss_polly"] = on.llc_misses
        benchmark.extra_info["llc_miss_plain"] = off.llc_misses
        assert on.llc_misses <= off.llc_misses * 1.5


class TestFMAContractionAblation:
    """FP_CONTRACT: a*b+c as one fused call (mpfr_fma / gfma)."""

    def test_fma_on_vs_off(self, benchmark):
        def measure():
            off = _cycles("gemm", n=8)
            on = _cycles("gemm", n=8, contract_fma=True)
            return on, off

        on, off = benchmark.pedantic(measure, rounds=1, iterations=1)
        assert on < off  # one call (and one rounding) saved per MAC
        benchmark.extra_info["gain"] = round(off / on, 3)
