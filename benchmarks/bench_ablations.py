"""Ablation benches for the design choices DESIGN.md calls out.

Each toggles one optimization of the MPFR backend (or the Polly-lite /
loop-idiom machinery, or the precision-specialized kernel tier) and
quantifies its contribution on a representative kernel.  The module
runs two ways:

* under pytest-benchmark (the perf-gate path): each ablation is one
  test asserting its invariant;
* standalone, emitting the v2 reproducibility-envelope JSON artifact
  the other benches produce::

      PYTHONPATH=src python benchmarks/bench_ablations.py --json-out out.json
"""

import argparse
import json
import sys
import time

import pytest

from repro.core import CompilerDriver
from repro.evaluation.harness import run_kernel
from repro.observability import reproducibility_envelope
from repro.workloads.polybench import source_for

BENCH_FORMAT_VERSION = 2  # v2: carries the reproducibility envelope


def _cycles(kernel, n=8, prec=128, **kwargs):
    return run_kernel(kernel, f"vpfloat<mpfr, 16, {prec}>", n,
                      backend="mpfr", read_outputs=False,
                      **kwargs).report.cycles


# ----------------------------------------------------------------- #
# Ablation measurements (shared by the tests and the JSON artifact)
# ----------------------------------------------------------------- #

def ablate_reuse() -> dict:
    """Paper §III-C1 item 7: reuse of dead MPFR objects."""
    on = _cycles("durbin", n=12)
    off = _cycles("durbin", n=12, reuse_objects=False)
    return {"cycles_on": on, "cycles_off": off,
            "gain": round(off / on, 3)}


def ablate_specialize() -> dict:
    """Paper item 2: mpfr_*_d / _si specialized entry points.

    deriche's filter coefficients are *runtime* doubles (built from
    exp()), exactly the case the _d entry points cover; compile-time
    double literals are hoisted as MPFR constants instead and are
    specialization-neutral."""
    on = _cycles("deriche", n=10)
    off = _cycles("deriche", n=10, specialize_scalars=False)
    return {"cycles_on": on, "cycles_off": off,
            "gain": round(off / on, 3)}


def ablate_in_place() -> dict:
    """Paper: 'performs in-place operation' -- dest aliases the element."""
    on = _cycles("gemm", n=8)
    off = _cycles("gemm", n=8, in_place_stores=False)
    return {"cycles_on": on, "cycles_off": off,
            "gain": round(off / on, 3)}


def ablate_loop_idiom() -> dict:
    """Paper §III-B: memset/memcpy recognition (unum types only)."""
    kwargs = {"backend": "unum", "read_outputs": False}
    on = run_kernel("jacobi-1d", "vpfloat<unum, 3, 6>", 48,
                    **kwargs).report.cycles
    off = run_kernel("jacobi-1d", "vpfloat<unum, 3, 6>", 48,
                     enable_loop_idiom=False, **kwargs).report.cycles
    return {"cycles_on": on, "cycles_off": off}


def ablate_polly() -> dict:
    """The +/-Polly axis of Figs. 1-2: tiling a large-working-set gemm."""
    off = run_kernel("gemm", "double", 40, backend="none",
                     read_outputs=False).report
    on = run_kernel("gemm", "double", 40, backend="none",
                    polly=True, read_outputs=False).report
    return {"l1_hits_polly": on.cache_hits[0],
            "l1_hits_plain": off.cache_hits[0],
            "llc_miss_polly": on.llc_misses,
            "llc_miss_plain": off.llc_misses}


def ablate_fma() -> dict:
    """FP_CONTRACT: a*b+c as one fused call (mpfr_fma / gfma)."""
    off = _cycles("gemm", n=8)
    on = _cycles("gemm", n=8, contract_fma=True)
    return {"cycles_on": on, "cycles_off": off,
            "gain": round(off / on, 3)}


def ablate_kernel_tier(reps: int = 3) -> dict:
    """The precision-specialized kernel tier vs the generic kernels.

    The tier is a strength reduction: modeled cycles must be identical
    across policies (asserted), so the ablation's payoff is host
    wall-clock on the jit engine.  One compile per policy (the tier is
    part of the cache fingerprint), timed runs after a warmup."""
    source = source_for("gemm", "vpfloat<mpfr, 16, 53>")
    walls = {}
    cycles = {}
    for tier in ("small", "generic"):
        program = CompilerDriver(backend="mpfr", engine="jit",
                                 kernel_tier=tier).compile(
            source, name="gemm")
        program.run("run", [8])  # warm the jit sidecar
        best = float("inf")
        for _ in range(reps):
            started = time.perf_counter()
            result = program.run("run", [8])
            best = min(best, time.perf_counter() - started)
        walls[tier] = best
        cycles[tier] = result.report.cycles
    return {"cycles_tiered": cycles["small"],
            "cycles_generic": cycles["generic"],
            "wall_tiered_seconds": walls["small"],
            "wall_generic_seconds": walls["generic"],
            "wall_gain": round(walls["generic"] / walls["small"], 3)}


# ----------------------------------------------------------------- #
# pytest-benchmark entry points (the perf-gate path)
# ----------------------------------------------------------------- #

class TestObjectReuseAblation:
    def test_reuse_on_vs_off(self, benchmark):
        row = benchmark.pedantic(ablate_reuse, rounds=1, iterations=1)
        assert row["cycles_on"] <= row["cycles_off"]  # reuse never hurts
        benchmark.extra_info.update(row)


class TestSpecializationAblation:
    def test_specialize_on_vs_off(self, benchmark):
        row = benchmark.pedantic(ablate_specialize, rounds=1,
                                 iterations=1)
        assert row["cycles_on"] < row["cycles_off"]
        benchmark.extra_info.update(row)


class TestInPlaceStoresAblation:
    def test_in_place_on_vs_off(self, benchmark):
        row = benchmark.pedantic(ablate_in_place, rounds=1, iterations=1)
        assert row["cycles_on"] < row["cycles_off"]
        benchmark.extra_info.update(row)


class TestLoopIdiomAblation:
    def test_idiom_on_vs_off(self, benchmark):
        row = benchmark.pedantic(ablate_loop_idiom, rounds=1,
                                 iterations=1)
        # idiom may be neutral on this kernel
        assert row["cycles_on"] <= row["cycles_off"] * 1.02
        benchmark.extra_info.update(row)


class TestPollyAblation:
    def test_polly_on_vs_off(self, benchmark):
        row = benchmark.pedantic(ablate_polly, rounds=1, iterations=1)
        # Tiling must not lose L1 locality; report both hit counts.
        assert row["llc_miss_polly"] <= row["llc_miss_plain"] * 1.5
        benchmark.extra_info.update(row)


class TestFMAContractionAblation:
    def test_fma_on_vs_off(self, benchmark):
        row = benchmark.pedantic(ablate_fma, rounds=1, iterations=1)
        # one call (and one rounding) saved per MAC
        assert row["cycles_on"] < row["cycles_off"]
        benchmark.extra_info.update(row)


class TestKernelTierAblation:
    def test_tiered_vs_generic(self, benchmark):
        row = benchmark.pedantic(ablate_kernel_tier, rounds=1,
                                 iterations=1)
        # The tier must not perturb the cost model, only host time.
        assert row["cycles_tiered"] == row["cycles_generic"]
        benchmark.extra_info.update(row)


# ----------------------------------------------------------------- #
# Standalone JSON artifact (the bench_batched.py-style path)
# ----------------------------------------------------------------- #

ABLATIONS = {
    "object_reuse": ablate_reuse,
    "scalar_specialization": ablate_specialize,
    "in_place_stores": ablate_in_place,
    "loop_idiom": ablate_loop_idiom,
    "polly_tiling": ablate_polly,
    "fma_contraction": ablate_fma,
    "kernel_tier": ablate_kernel_tier,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="write the ablation rows as JSON "
                             "(CI artifact)")
    args = parser.parse_args(argv)
    document = {"version": BENCH_FORMAT_VERSION,
                "meta": reproducibility_envelope(), "ablations": {}}
    failures = []
    for name, measure in ABLATIONS.items():
        row = measure()
        document["ablations"][name] = row
        shape = ", ".join(f"{k}={v}" for k, v in sorted(row.items()))
        print(f"{name:<22} {shape}")
    tier = document["ablations"]["kernel_tier"]
    if tier["cycles_tiered"] != tier["cycles_generic"]:
        failures.append("kernel_tier: tiered run's modeled cycles "
                        "differ from the generic kernels")
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"results written to {args.json_out}")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
