"""Table I bench: residual-error computation across precisions.

Regenerates one representative column of Table I per run (kernel x
dataset over the four type rows) and records the residuals as
extra_info.  The timed quantity is the whole accuracy experiment:
reference run + four measured runs + exact residual computation.
"""

import pytest

from repro.bigfloat import log10_magnitude
from repro.evaluation.table1 import ROW_TYPES, run_table1


@pytest.mark.parametrize("kernel", ["gemm", "gramschmidt"])
def test_table1_column(benchmark, kernel):
    cells = benchmark.pedantic(
        run_table1,
        kwargs={"kernels": (kernel,), "datasets": ("mini",)},
        rounds=1, iterations=1,
    )
    by_row = {c.row: c.residual for c in cells}
    assert len(by_row) == len(ROW_TYPES)
    # The Table I ordering: every precision step tightens the residual.
    magnitudes = [log10_magnitude(by_row[name]) for name, _ in ROW_TYPES]
    assert magnitudes == sorted(magnitudes, reverse=True)
    benchmark.extra_info.update(
        {row: f"1e{log10_magnitude(res):.0f}" for row, res in by_row.items()}
    )
