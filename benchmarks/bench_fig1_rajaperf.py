"""Fig. 1 (2) bench: RAJAPerf sequential and OpenMP variants.

Paper averages: sequential 1.74/1.61/1.65x; OpenMP 7.98/7.16/7.72x on
8 cores / 16 threads.  The OpenMP result is the headline: Boost's
per-operation heap temporaries stop scaling (allocator serialization +
memory traffic) while the vpfloat backend keeps scaling.
"""

import pytest

from repro.evaluation.fig1 import run_fig1_rajaperf
from repro.evaluation.harness import geomean

BENCH_KERNELS = ("DAXPY", "STREAM_TRIAD", "HYDRO_1D")


def test_sequential_variants(benchmark):
    points = benchmark.pedantic(
        run_fig1_rajaperf,
        kwargs={"kernels": BENCH_KERNELS, "n": 128},
        rounds=1, iterations=1,
    )
    seq = [p for p in points if not p.openmp]
    omp = [p for p in points if p.openmp]
    seq_avg = geomean([p.speedup for p in seq])
    omp_avg = geomean([p.speedup for p in omp])
    assert seq_avg > 1.2  # paper ~1.6-1.7x
    assert omp_avg > 3.0  # paper ~7-8x
    assert omp_avg > seq_avg  # the multithreaded gap must widen
    benchmark.extra_info["seq_avg"] = round(seq_avg, 2)
    benchmark.extra_info["omp_avg"] = round(omp_avg, 2)
    benchmark.extra_info["paper_seq"] = 1.67
    benchmark.extra_info["paper_omp"] = 7.62


def test_variant_ordering(benchmark):
    """Base_Seq (full optimization visibility) beats the wrapped
    variants, as in the paper (1.74 vs 1.61/1.65)."""
    points = benchmark.pedantic(
        run_fig1_rajaperf,
        kwargs={"kernels": ("DAXPY", "STREAM_TRIAD"), "n": 128},
        rounds=1, iterations=1,
    )
    averages = {}
    for variant in ("Base_Seq", "Lambda_Seq", "RAJA_Seq"):
        averages[variant] = geomean(
            [p.speedup for p in points if p.variant == variant])
    assert averages["Base_Seq"] >= averages["Lambda_Seq"]
    benchmark.extra_info.update(
        {k: round(v, 2) for k, v in averages.items()})
