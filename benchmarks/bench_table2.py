"""Table II bench: UNUM geometry derivation for the paper's declarations."""

from repro.evaluation.table2 import run_table2


def test_table2_rows(benchmark):
    rows = benchmark(run_table2)
    assert all(row.matches_paper for row in rows)
    benchmark.extra_info["rows"] = [
        f"{r.declaration} -> {r.exponent_bits}/{r.precision_bits}/"
        f"{r.size_bytes}" for r in rows
    ]
