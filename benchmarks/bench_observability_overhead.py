"""Telemetry overhead benchmark: disabled must be (near) free.

The observability layer's contract is that with no tracer/registry
installed, the hot paths carry no telemetry work: producers bind the
process-global hooks once at construction, so the disabled
configuration executes the same closure bodies as before the subsystem
existed.  This benchmark measures that on the fast-path ``gemm``
pipeline (fused dispatch + MPFR pool, one interpreter reused across
repetitions -- the steady-state evaluation-harness shape):

* **control** -- disabled-mode runs in a fresh process state;
* **disabled** -- disabled-mode runs *after* a telemetry session has
  been installed and torn down (proves no residue is left behind);
* **enabled** -- runs inside a trace+metrics session, reported for
  information (spans + histograms are allowed to cost something).

Both disabled samples interleave with the control and use min-of-reps
timing, so scheduler noise cancels; the assertion is that the disabled
mode stays within the noise floor (<2%) of the control.

Usage::

    PYTHONPATH=src python benchmarks/bench_observability_overhead.py
    PYTHONPATH=src python benchmarks/bench_observability_overhead.py --quick
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from repro.core import CompilerDriver
from repro.observability import install_telemetry, ledger_session, \
    telemetry_session
from repro.workloads.polybench import source_for

FTYPE = "vpfloat<mpfr, 16, 256>"

#: Disabled overhead floor asserted by this benchmark (fraction).
OVERHEAD_LIMIT = 0.02


def _timed_run(interp, n: int) -> float:
    started = time.perf_counter()
    interp.run("run", [n])
    return time.perf_counter() - started


def bench(n: int, reps: int, quick: bool) -> int:
    source = source_for("gemm", FTYPE)
    program = CompilerDriver(backend="mpfr").compile(source, name="gemm")

    # One pooled fast-path interpreter per mode, warmed before timing.
    control_interp = program.interpreter(dispatch="fast", pool=True)
    control_interp.run("run", [n])

    # Install + tear down a real telemetry session (and a run-ledger
    # session -- its hook lives on the driver's run path), then build
    # the "disabled" interpreter: it must bind the (restored) None
    # hooks, and the ledger teardown must leave no residue either.
    with tempfile.TemporaryDirectory() as tmp:
        with telemetry_session(trace=True, metrics=True):
            with ledger_session(os.path.join(tmp, "ledger.jsonl")):
                program.run("run", [n], engine="fast", pool=True)
    disabled_interp = program.interpreter(dispatch="fast", pool=True)
    disabled_interp.run("run", [n])

    control = []
    disabled = []
    for _ in range(reps):
        # Interleave A/B so drift hits both samples equally.
        control.append(_timed_run(control_interp, n))
        disabled.append(_timed_run(disabled_interp, n))

    # Driver-level pair: ``program.run`` is where the run-ledger hook
    # lives (one ``current_ledger()`` consult per execution, a record
    # append when enabled).  Interleaved min-of-reps like above.
    def _timed_program_run():
        started = time.perf_counter()
        program.run("run", [n], engine="fast", pool=True)
        return time.perf_counter() - started

    ledger_off = []
    ledger_on = []
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "ledger.jsonl")
        _timed_program_run()  # warm
        for _ in range(reps):
            ledger_off.append(_timed_program_run())
            with ledger_session(path):
                ledger_on.append(_timed_program_run())
        ledger_records = sum(1 for line in open(path) if line.strip())

    with telemetry_session(trace=True, metrics=True) as (tracer, registry):
        enabled_interp = program.interpreter(dispatch="fast", pool=True)
        enabled_interp.run("run", [n])
        enabled = [_timed_run(enabled_interp, n) for _ in range(reps)]
        spans = sum(1 for e in tracer.events if e["ph"] == "X")

    best_control = min(control)
    best_disabled = min(disabled)
    best_enabled = min(enabled)
    best_ledger_off = min(ledger_off)
    best_ledger_on = min(ledger_on)
    overhead = best_disabled / best_control - 1.0
    enabled_overhead = best_enabled / best_control - 1.0
    ledger_overhead = best_ledger_on / best_ledger_off - 1.0

    print(f"kernel=gemm ftype={FTYPE} n={n} reps={reps} (min-of-reps)")
    print(f"control  (never installed):   {best_control * 1e3:9.3f} ms")
    print(f"disabled (after teardown):    {best_disabled * 1e3:9.3f} ms "
          f"({overhead:+.2%})")
    print(f"enabled  (trace + metrics):   {best_enabled * 1e3:9.3f} ms "
          f"({enabled_overhead:+.2%}, {spans} spans, "
          f"{len(registry.histograms)} histograms)")
    print(f"driver, ledger disabled:      {best_ledger_off * 1e3:9.3f} ms")
    print(f"driver, ledger enabled:       {best_ledger_on * 1e3:9.3f} ms "
          f"({ledger_overhead:+.2%}, {ledger_records} records)")

    failures = []
    if spans <= 0:
        failures.append("enabled session recorded no spans")
    if not registry.histograms.get("precision.mpfr.bits"):
        failures.append("enabled session recorded no precision telemetry")
    if ledger_records < reps:
        failures.append(f"ledger session recorded {ledger_records} "
                        f"record(s), expected >= {reps}")
    limit = OVERHEAD_LIMIT * (3.0 if quick else 1.0)
    if overhead > limit:
        failures.append(f"disabled-mode overhead {overhead:.2%} exceeds "
                        f"the {limit:.0%} floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print(f"OK: disabled overhead {overhead:+.2%} within "
              f"{limit:.0%}; telemetry recorded when enabled")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problem size, relaxed noise floor "
                             "(CI smoke mode)")
    parser.add_argument("-n", type=int, default=None,
                        help="gemm problem size (default 12, quick 6)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per mode (default 7, quick 3)")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (6 if args.quick else 12)
    reps = args.reps if args.reps is not None else (3 if args.quick else 7)
    return bench(n, reps, args.quick)


if __name__ == "__main__":
    sys.exit(main())
