"""Fig. 3 bench: CG iterations/runtime vs precision on bcsstk20-like.

Paper shape: iterations fall monotonically with precision; runtime
reaches a minimum then climbs; vpfloat beats Boost (~1.5x) and a
Julia-style dynamic implementation (>9x) at the plateau.
"""

import pytest

from repro.evaluation.fig3 import run_fig3


def test_fig3_sweep(benchmark):
    result = benchmark.pedantic(
        run_fig3,
        kwargs={"n": 32, "condition": 1e10,
                "precisions": (80, 140, 260, 500, 900),
                "tolerance": 1e-10, "max_iterations": 2500},
        rounds=1, iterations=1,
    )
    iterations = [p.iterations for p in result.points]
    assert iterations == sorted(iterations, reverse=True)
    times = [p.cycles_vpfloat for p in result.points]
    minimum = times.index(min(times))
    assert 0 < minimum < len(times) - 1  # interior minimum: the U shape
    plateau = result.plateau_precision
    assert result.boost_ratio_at(plateau) > 1.2
    assert result.julia_ratio_at(plateau) == pytest.approx(9.0)
    benchmark.extra_info["iterations"] = iterations
    benchmark.extra_info["plateau_bits"] = plateau
    benchmark.extra_info["boost_ratio"] = round(
        result.boost_ratio_at(plateau), 2)
