"""Before/after benchmark for the interpreter fast path + MPFR pool.

Measures host wall-clock time for the PolyBench ``gemm`` kernel on a
``vpfloat<mpfr, 16, 256>`` element type, comparing:

* **baseline** -- the legacy tree-walking dispatch (one isinstance
  ladder per executed instruction) with the runtime object pool off;
  a fresh interpreter per repetition, as the seed harness did.
* **fastpath** -- the precompiled closure-table dispatch with the MPFR
  free-list pool on, reusing ONE interpreter across repetitions so
  cleared handles are recycled between runs (this is the steady-state
  shape of the evaluation harness, which re-runs kernels at many
  precisions over the same process).

Verifies bit-identical numeric outputs between both modes, a nonzero
pool hit count, and (in full mode) the >=2x speedup floor.

Usage::

    PYTHONPATH=src python benchmarks/bench_interpreter_fastpath.py
    PYTHONPATH=src python benchmarks/bench_interpreter_fastpath.py --quick
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core import CompilerDriver
from repro.evaluation.harness import element_stride
from repro.workloads.polybench import KERNELS, source_for

FTYPE = "vpfloat<mpfr, 16, 256>"


def _output_bits(interpreter, base: int, count: int):
    """Exact (kind, sign, mant, exp, prec) tuples for each output cell."""
    stride = element_stride(FTYPE, "mpfr")
    bits = []
    for i in range(count):
        cell = interpreter.memory.cells.get(base + i * stride)
        raw = cell[0] if cell is not None else None
        if raw is None:
            bits.append(None)
        elif hasattr(raw, "value") and hasattr(raw, "prec"):
            v = raw.value
            bits.append((v.kind, v.sign, v.mant, v.exp, raw.prec))
        else:
            bits.append(raw)
    return bits


def bench(n: int, reps: int, quick: bool) -> int:
    source = source_for("gemm", FTYPE)
    program = CompilerDriver(backend="mpfr").compile(source, name="gemm")
    count = KERNELS["gemm"].outputs(n)

    # Baseline: fresh legacy interpreter per rep, pool off (seed behavior).
    baseline_outputs = None
    started = time.perf_counter()
    for _ in range(reps):
        result = program.run("run", [n], dispatch="legacy", pool=False)
        baseline_outputs = _output_bits(result.interpreter,
                                        int(result.value), count)
    baseline_wall = time.perf_counter() - started

    # Fast path: one pooled interpreter reused across reps.
    interp = program.interpreter(dispatch="fast", pool=True)
    fast_outputs = None
    started = time.perf_counter()
    for _ in range(reps):
        result = interp.run("run", [n])
        fast_outputs = _output_bits(interp, int(result.value), count)
    fast_wall = time.perf_counter() - started

    stats = interp.mpfr.stats
    speedup = baseline_wall / fast_wall if fast_wall else float("inf")
    attempts = stats.pool_hits + stats.pool_misses
    hit_rate = stats.pool_hits / attempts if attempts else 0.0

    print(f"kernel=gemm ftype={FTYPE} n={n} reps={reps}")
    print(f"baseline (legacy dispatch, no pool): {baseline_wall:8.3f} s")
    print(f"fastpath (closure table + pool):     {fast_wall:8.3f} s")
    print(f"speedup:                             {speedup:8.2f}x")
    print(f"pool: {stats.pool_hits}/{attempts} hits "
          f"({100.0 * hit_rate:.1f}%), {stats.pool_releases} released, "
          f"{stats.inits} fresh inits")

    failures = []
    if fast_outputs != baseline_outputs:
        failures.append("outputs differ between legacy and fast paths")
    if stats.pool_hits <= 0:
        failures.append("pool recorded no hits across repetitions")
    floor = 1.0 if quick else 2.0
    if speedup < floor:
        failures.append(f"speedup {speedup:.2f}x below the {floor:.1f}x "
                        f"floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: outputs bit-identical, pool active, speedup floor met")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problem size, relaxed speedup floor "
                             "(CI smoke mode)")
    parser.add_argument("-n", type=int, default=None,
                        help="gemm problem size (default 14, quick 6)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per mode (default 3, quick 2)")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (6 if args.quick else 14)
    reps = args.reps if args.reps is not None else (2 if args.quick else 3)
    return bench(n, reps, args.quick)


if __name__ == "__main__":
    sys.exit(main())
