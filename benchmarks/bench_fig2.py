"""Fig. 2 bench: UNUM coprocessor vs MPFR software at high precision.

Paper: 18.03x (-O3) / 27.58x (-O3+Polly) average at 150 digits;
gemm/2mm/3mm exceed 20x; five kernel/Polly combinations hit the
coprocessor memory erratum and are reported as failures.
"""

import pytest

from repro.evaluation.fig2 import run_fig2
from repro.evaluation.harness import geomean


@pytest.mark.parametrize("kernel", ["gemm", "trisolv"])
def test_fig2_kernel(benchmark, kernel):
    points = benchmark.pedantic(
        run_fig2, kwargs={"kernels": (kernel,), "dataset": "mini"},
        rounds=1, iterations=1,
    )
    measured = [p for p in points if p.speedup]
    assert measured
    for p in measured:
        assert p.speedup > 2.0
    benchmark.extra_info["speedups"] = {
        ("polly" if p.polly else "o3"): round(p.speedup, 2)
        for p in measured
    }


def test_fig2_gemm_exceeds_20x(benchmark):
    """The paper's specific claim for the matmul family."""
    points = benchmark.pedantic(
        run_fig2, kwargs={"kernels": ("gemm",), "dataset": "mini"},
        rounds=1, iterations=1,
    )
    best = max(p.speedup for p in points if p.speedup)
    assert best > 15.0  # paper: > 20x
    benchmark.extra_info["gemm_best"] = round(best, 2)


def test_fig2_erratum_reported(benchmark):
    points = benchmark.pedantic(
        run_fig2, kwargs={"kernels": ("gesummv", "adi"),
                          "dataset": "mini"},
        rounds=1, iterations=1,
    )
    assert all(p.hw_failure for p in points)
    benchmark.extra_info["failures"] = [
        f"{p.kernel}/{'polly' if p.polly else 'o3'}" for p in points
    ]
