"""Throughput benchmark for the batched SoA execution engine.

Measures host wall-clock throughput of ``program.run_batch`` -- one IR
dispatch per instruction amortized over N independent vpfloat lanes --
against the looped serial jit engine (N separate ``program.run`` calls)
on the PolyBench ``gemm`` and ``jacobi-1d`` kernels at
``vpfloat<mpfr, 16, 256>``, sweeping batch sizes 1/10/100/1000.

Verifies the bit-identity guarantee while it measures: every lane's
output array and the shared per-lane cycle report must equal the serial
run exactly.  Asserts the speedup floor on gemm at batch >= 100
(>= 10x full mode, >= 1x quick), and emits a JSON document of the sweep
next to the other bench artifacts.

Usage::

    PYTHONPATH=src python benchmarks/bench_batched.py
    PYTHONPATH=src python benchmarks/bench_batched.py --quick
    PYTHONPATH=src python benchmarks/bench_batched.py --json-out out.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.core import CompilerDriver
from repro.evaluation.harness import element_stride
from repro.observability import bench_floor_scale, \
    reproducibility_envelope
from repro.runtime.batch import lane_view
from repro.workloads.polybench import KERNELS, source_for

FTYPE = "vpfloat<mpfr, 16, 256>"
BENCH_FORMAT_VERSION = 2  # v2: adds the reproducibility envelope (meta)
GEMM_FLOOR_FULL = 10.0
GEMM_FLOOR_QUICK = 1.0
FLOOR_LANES = 100  # the floor applies to batch sizes >= this

SIZES_FULL = (1, 10, 100, 1000)
SIZES_QUICK = (1, 8, 32)


def _output_bits(interpreter, base: int, count: int, lane: int = 0):
    """Exact (kind, sign, mant, exp, prec) tuples per output cell."""
    stride = element_stride(FTYPE, "mpfr")
    bits = []
    for i in range(count):
        cell = interpreter.memory.cells.get(base + i * stride)
        raw = cell[0] if cell is not None else None
        if raw is None:
            bits.append(None)
        elif hasattr(raw, "value") and hasattr(raw, "prec"):
            v = lane_view(raw, lane)
            bits.append((v.kind, v.sign, v.mant, v.exp, raw.prec))
        else:
            bits.append(raw)
    return bits


def _report_bits(report):
    return (report.cycles, report.instructions, report.mpfr_calls,
            report.parallel_cycles, report.bytes_read,
            report.bytes_written, dict(report.by_category))


def bench_kernel(kernel: str, n: int, sizes, reps: int, failures):
    """Serial-vs-batched sweep over one kernel; returns the JSON row."""
    source = source_for(kernel, FTYPE)
    program = CompilerDriver(backend="mpfr").compile(source, name=kernel)
    count = KERNELS[kernel].outputs(n)

    # Warm both paths outside the timers: jit emission for the serial
    # engine, fused batch-kernel construction for the batched one.
    program.run("run", [n], engine="jit")
    program.run_batch("run", [n], lanes=2)

    serial_walls = []
    for _ in range(reps):
        started = time.perf_counter()
        serial = program.run("run", [n], engine="jit")
        serial_walls.append(time.perf_counter() - started)
    serial_wall = min(serial_walls)
    serial_outputs = _output_bits(serial.interpreter, int(serial.value),
                                  count)
    serial_report = _report_bits(serial.report)

    print(f"kernel={kernel} ftype={FTYPE} n={n} reps={reps}")
    print(f"serial jit (per run):        {serial_wall * 1e3:10.3f} ms")
    rows = []
    for lanes in sizes:
        started = time.perf_counter()
        result = program.run_batch("run", [n], lanes=lanes)
        wall = time.perf_counter() - started
        per_lane = wall / lanes
        speedup = serial_wall / per_lane if per_lane else float("inf")
        ctx = getattr(result.interpreter, "batch", None)
        fallbacks = ctx.scalar_fallbacks if ctx is not None else None
        print(f"batch of {lanes:>5} ({result.mode:>7}): "
              f"{per_lane * 1e3:10.3f} ms/lane   {speedup:8.2f}x")

        for i in range(result.lanes):
            lane_outputs = _output_bits(result.interpreter,
                                        int(result.values[i]), count,
                                        lane=i)
            if lane_outputs != serial_outputs:
                failures.append(f"{kernel}: batch of {lanes} lane {i} "
                                f"outputs differ from the serial run")
                break
            if _report_bits(result.reports[i]) != serial_report:
                failures.append(f"{kernel}: batch of {lanes} lane {i} "
                                f"cycle report differs from the serial "
                                f"run")
                break
        rows.append({"lanes": lanes, "mode": result.mode,
                     "wall_seconds": wall,
                     "seconds_per_lane": per_lane,
                     "speedup_vs_looped_jit": speedup,
                     "scalar_fallback_lane_ops": fallbacks})
    return {"n": n, "serial_seconds_per_run": serial_wall,
            "batches": rows}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small sizes and batches, relaxed speedup "
                             "floor (CI smoke mode)")
    parser.add_argument("--reps", type=int, default=None,
                        help="serial-baseline repetitions (default 3, "
                             "quick 2)")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="write the sweep results as JSON "
                             "(CI artifact)")
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (2 if args.quick else 3)
    sizes = SIZES_QUICK if args.quick else SIZES_FULL
    gemm_n = 6 if args.quick else 8
    jacobi_n = 12 if args.quick else 20

    failures = []
    document = {"version": BENCH_FORMAT_VERSION, "ftype": FTYPE,
                "quick": args.quick,
                "meta": reproducibility_envelope(), "kernels": {}}
    document["kernels"]["gemm"] = bench_kernel("gemm", gemm_n, sizes,
                                               reps, failures)
    print()
    document["kernels"]["jacobi-1d"] = bench_kernel("jacobi-1d", jacobi_n,
                                                    sizes, reps, failures)
    print()

    floor = (GEMM_FLOOR_QUICK if args.quick else GEMM_FLOOR_FULL) \
        * bench_floor_scale()
    floored = [row for row in document["kernels"]["gemm"]["batches"]
               if row["lanes"] >= FLOOR_LANES]
    if not floored:  # quick mode: apply the floor to the largest batch
        floored = [document["kernels"]["gemm"]["batches"][-1]]
    for row in floored:
        if row["speedup_vs_looped_jit"] < floor:
            failures.append(
                f"gemm batch of {row['lanes']}: speedup "
                f"{row['speedup_vs_looped_jit']:.2f}x below the "
                f"{floor:.1f}x floor")

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"results written to {args.json_out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: per-lane outputs and cycle reports bit-identical to "
              "serial, speedup floor met")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
