"""Table III bench: literal encoding of 1.3 across vpfloat types."""

from repro.evaluation.table3 import run_table3


def test_table3_encodings(benchmark):
    rows = benchmark(run_table3)
    assert sum(1 for r in rows if r.matches_paper) >= 2
    benchmark.extra_info["encodings"] = [r.encoded for r in rows]
