"""Before/after benchmark for the specializing jit codegen engine.

Measures host wall-clock time for the PolyBench ``gemm`` and
``jacobi-1d`` kernels on a ``vpfloat<mpfr, 16, 256>`` element type,
comparing:

* **fast** -- the fused closure-table dispatch engine (the previous
  default for the mpfr backend);
* **jit** -- the specializing Python-source codegen engine
  (:mod:`repro.codegen.pyjit`): straight-line source per IR function,
  SSA values in locals, constant precisions and inlined MPFR kernels
  baked in at emit time.

Runs are interleaved and scored best-of-N to shield the comparison from
machine noise.  Verifies bit-identical numeric outputs and identical
modeled cycle reports between both engines, the speedup floor on gemm
(>= 1.5x full mode, >= 1.0x quick), and that a warm compile cache skips
re-emission (observed through ``codegen:`` tracer spans).

Usage::

    PYTHONPATH=src python benchmarks/bench_codegen.py
    PYTHONPATH=src python benchmarks/bench_codegen.py --quick
    PYTHONPATH=src python benchmarks/bench_codegen.py --dump-dir out/
"""

from __future__ import annotations

import argparse
import os
import sys
import tempfile
import time

from repro.core import CompilerDriver
from repro.evaluation.harness import element_stride
from repro.observability import telemetry_session
from repro.workloads.polybench import KERNELS, source_for

FTYPE = "vpfloat<mpfr, 16, 256>"
GEMM_FLOOR_FULL = 1.5
GEMM_FLOOR_QUICK = 1.0


def _output_bits(interpreter, base: int, count: int):
    """Exact (kind, sign, mant, exp, prec) tuples for each output cell."""
    stride = element_stride(FTYPE, "mpfr")
    bits = []
    for i in range(count):
        cell = interpreter.memory.cells.get(base + i * stride)
        raw = cell[0] if cell is not None else None
        if raw is None:
            bits.append(None)
        elif hasattr(raw, "value") and hasattr(raw, "prec"):
            v = raw.value
            bits.append((v.kind, v.sign, v.mant, v.exp, raw.prec))
        else:
            bits.append(raw)
    return bits


def _report_bits(report):
    return (report.cycles, report.instructions, report.mpfr_calls,
            report.heap_allocations, dict(report.by_category))


def bench_kernel(kernel: str, n: int, reps: int, failures, dump_dir=None):
    """Best-of-N interleaved jit-vs-fast timing over one program."""
    source = source_for(kernel, FTYPE)
    program = CompilerDriver(backend="mpfr").compile(source, name=kernel)
    count = KERNELS[kernel].outputs(n)

    walls = {"jit": [], "fast": []}
    outputs = {}
    reports = {}
    for _ in range(reps):
        for engine in ("jit", "fast"):
            started = time.perf_counter()
            result = program.run("run", [n], engine=engine)
            walls[engine].append(time.perf_counter() - started)
            outputs[engine] = _output_bits(result.interpreter,
                                           int(result.value), count)
            reports[engine] = _report_bits(result.report)

    jit_wall, fast_wall = min(walls["jit"]), min(walls["fast"])
    speedup = fast_wall / jit_wall if jit_wall else float("inf")
    print(f"kernel={kernel} ftype={FTYPE} n={n} reps={reps}")
    print(f"fast (fused closure tables):   {fast_wall:8.3f} s")
    print(f"jit  (specializing codegen):   {jit_wall:8.3f} s")
    print(f"speedup:                       {speedup:8.2f}x")

    if outputs["jit"] != outputs["fast"]:
        failures.append(f"{kernel}: outputs differ between jit and fast")
    if reports["jit"] != reports["fast"]:
        failures.append(f"{kernel}: cycle reports differ between jit "
                        f"and fast")
    statuses = program._codegen_store.statuses()
    jitted = [f for f, r in statuses.items() if r["status"] == "jit"]
    if not jitted:
        failures.append(f"{kernel}: no function was jit-specialized")
    if dump_dir is not None:
        for name, record in program._codegen_store.records.items():
            if record.get("source"):
                path = os.path.join(dump_dir, f"{kernel}-{name}.py")
                with open(path, "w", encoding="utf-8") as handle:
                    handle.write(record["source"])
                print(f"emitted source written to {path}")
    return speedup


def check_warm_cache(kernel: str, n: int, failures) -> None:
    """Two fresh drivers over one disk cache: the second run's
    ``codegen:`` spans must all report cached=True (no re-emission)."""
    source = source_for(kernel, FTYPE)
    with tempfile.TemporaryDirectory() as cache_dir:
        observed = []
        for _ in range(2):
            with telemetry_session(trace=True) as (tracer, _):
                driver = CompilerDriver(backend="mpfr", cache=cache_dir)
                program = driver.compile(source, name=kernel)
                program.run("run", [n])
            observed.append([
                e["args"].get("cached") for e in tracer.events
                if e.get("name", "").startswith("codegen:")
            ])
    cold, warm = observed
    if not cold or any(cold):
        failures.append(f"{kernel}: cold run unexpectedly served from "
                        f"codegen cache")
    if not warm or not all(warm):
        failures.append(f"{kernel}: warm run re-emitted instead of "
                        f"loading the codegen sidecar")
    state = "OK" if cold and warm and all(warm) and not any(cold) else "FAIL"
    print(f"warm-cache ({kernel}): cold spans={cold} warm spans={warm} "
          f"[{state}]")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="small problem sizes, relaxed speedup floor "
                             "(CI smoke mode)")
    parser.add_argument("-n", type=int, default=None,
                        help="gemm problem size (default 14, quick 6)")
    parser.add_argument("--reps", type=int, default=None,
                        help="repetitions per engine (default 6, quick 2)")
    parser.add_argument("--dump-dir", default=None,
                        help="write the emitted jit sources here "
                             "(CI artifact)")
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (6 if args.quick else 14)
    reps = args.reps if args.reps is not None else (2 if args.quick else 6)
    jacobi_n = 16 if args.quick else 40
    if args.dump_dir is not None:
        os.makedirs(args.dump_dir, exist_ok=True)

    failures = []
    gemm_speedup = bench_kernel("gemm", n, reps, failures,
                                dump_dir=args.dump_dir)
    print()
    bench_kernel("jacobi-1d", jacobi_n, reps, failures,
                 dump_dir=args.dump_dir)
    print()
    check_warm_cache("jacobi-1d", jacobi_n, failures)

    floor = GEMM_FLOOR_QUICK if args.quick else GEMM_FLOOR_FULL
    if gemm_speedup < floor:
        failures.append(f"gemm speedup {gemm_speedup:.2f}x below the "
                        f"{floor:.1f}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: outputs and reports bit-identical, warm cache skips "
              "re-emission, speedup floor met")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
