"""Speedup benchmark for the precision-specialized kernel tier.

Measures the tiered smallfloat kernels (fixed-width-int significands,
inlined rounding; tier-1 <= 64 bits, tier-2 <= 128 bits) against the
generic specialized kernels on the *actual operand streams* a jit gemm
run feeds them: the streams are recorded from one instrumented run per
precision, then replayed through both kernel families under the timer.
The batched section times the single-limb numpy tier against the
generic fused-loop batch kernels on broadcast operand batches.

Verifies bit-identity while it measures -- three digest assertions per
configuration:

* the gemm run's value + output array under ``kernel_tier="small"``
  must equal the ``kernel_tier="generic"`` run exactly;
* both runs' CostReport snapshots must be identical (the tier is a
  strength reduction, not a cost-model change);
* every replayed op and every batched lane must produce bit-identical
  results across tiers.

Asserts the per-op speedup floors (>= 2x at 24--64-bit, >= 1.5x at
128-bit, >= 2x on the single-limb batch path; all scaled by
``$VPFLOAT_BENCH_FLOOR_SCALE``) and emits a JSON document next to the
other bench artifacts.

Usage::

    PYTHONPATH=src python benchmarks/bench_kernel_tiers.py
    PYTHONPATH=src python benchmarks/bench_kernel_tiers.py --quick
    PYTHONPATH=src python benchmarks/bench_kernel_tiers.py --json-out out.json
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time

from repro.bigfloat.number import Kind
from repro.bigfloat.rounding import RNDN
from repro.codegen import batch_np_kernels as npk
from repro.codegen import pyjit
from repro.codegen.batch_kernels import batch_kernel_factory
from repro.codegen.kernels import specialized_kernel
from repro.codegen.smallfloat import smallfloat_kernel
from repro.evaluation.harness import run_kernel
from repro.observability import bench_floor_scale, \
    reproducibility_envelope
from repro.runtime.batch import BatchContext, VPBatch
from repro.validation.certificate import report_snapshot, value_token, \
    values_digest

BENCH_FORMAT_VERSION = 2  # v2: carries the reproducibility envelope
KERNEL = "gemm"
PRECISIONS = (24, 53, 64, 128)
SCALAR_FLOORS = {24: 2.0, 53: 2.0, 64: 2.0, 128: 1.5}
BATCH_FLOOR = 2.0
BATCH_PREC = 53
BATCH_LANES_FULL = 1000
BATCH_LANES_QUICK = 256


# ----------------------------------------------------------------- #
# Operand-stream recording (one instrumented gemm run per precision)
# ----------------------------------------------------------------- #

def record_streams(prec: int, n: int):
    """Run gemm once under the tiered kernels with every scalar kernel
    call recorded; -> {(op, exp_bits): [args, ...]}."""
    streams: dict = {}
    original = pyjit.select_scalar_kernel

    def recording(op, kp, exp_bits, *extra, **kwargs):
        kernel = original(op, kp, exp_bits, *extra, **kwargs)
        if kp != prec:
            return kernel
        stream = streams.setdefault((op, exp_bits), [])

        def recorded(*args, _k=kernel, _s=stream):
            _s.append(args)
            return _k(*args)

        return recorded

    pyjit.select_scalar_kernel = recording
    try:
        run_kernel(KERNEL, f"vpfloat<mpfr, 16, {prec}>", n,
                   backend="mpfr", engine="jit", kernel_tier="small",
                   read_outputs=False)
    finally:
        pyjit.select_scalar_kernel = original
    return streams


def replay_seconds(kernel, stream, reps: int) -> float:
    best = float("inf")
    for _ in range(reps):
        started = time.perf_counter()
        for args in stream:
            kernel(*args)
        best = min(best, time.perf_counter() - started)
    return best


def bench_scalar(prec: int, n: int, reps: int, failures) -> dict:
    """Digest-check gemm across tiers, then replay its recorded operand
    streams through both kernel families; -> the JSON row."""
    ftype = f"vpfloat<mpfr, 16, {prec}>"
    outcomes = {
        tier: run_kernel(KERNEL, ftype, n, backend="mpfr",
                         engine="jit", kernel_tier=tier)
        for tier in ("small", "generic")
    }
    digests = {tier: values_digest([o.value] + list(o.outputs))
               for tier, o in outcomes.items()}
    if digests["small"] != digests["generic"]:
        failures.append(f"gemm@{prec}: tiered outputs diverge from the "
                        f"generic kernels ({digests['small']} != "
                        f"{digests['generic']})")
    reports = {tier: report_snapshot(o.report)
               for tier, o in outcomes.items()}
    if reports["small"] != reports["generic"]:
        failures.append(f"gemm@{prec}: tiered CostReport differs from "
                        f"the generic kernels")

    streams = record_streams(prec, n)
    ops = {}
    tiered_total = generic_total = 0.0
    for (op, exp_bits), stream in sorted(streams.items()):
        tiered = smallfloat_kernel(op, prec, RNDN, exp_bits)
        generic = specialized_kernel(op, prec, RNDN, exp_bits)
        mismatches = sum(
            value_token(tiered(*args)) != value_token(generic(*args))
            for args in stream)
        if mismatches:
            failures.append(f"gemm@{prec} {op}: {mismatches} replayed "
                            f"op(s) diverge between tiers")
        t_tiered = replay_seconds(tiered, stream, reps)
        t_generic = replay_seconds(generic, stream, reps)
        tiered_total += t_tiered
        generic_total += t_generic
        ops[op] = {"count": len(stream),
                   "tiered_seconds": t_tiered,
                   "generic_seconds": t_generic,
                   "speedup": t_generic / t_tiered if t_tiered
                   else float("inf")}
    speedup = generic_total / tiered_total if tiered_total \
        else float("inf")
    floor = SCALAR_FLOORS[prec] * bench_floor_scale()
    total = sum(row["count"] for row in ops.values())
    print(f"gemm@{prec:>3}: {total:>6} recorded op(s)  "
          f"per-op speedup {speedup:5.2f}x  (floor {floor:.2f}x)  "
          f"digest {digests['small']}")
    for op, row in sorted(ops.items()):
        print(f"    {op:<4} x{row['count']:<6} "
              f"{row['speedup']:5.2f}x")
    if speedup < floor:
        failures.append(f"gemm@{prec}: per-op speedup {speedup:.2f}x "
                        f"below the {floor:.2f}x floor")
    return {"prec": prec, "n": n, "ops": ops,
            "speedup_vs_generic": speedup, "floor": floor,
            "digest": digests["small"],
            "cycles": reports["small"]["cycles"]}


# ----------------------------------------------------------------- #
# Batched numpy tier vs the generic fused-loop batch kernels
# ----------------------------------------------------------------- #

def _random_batch(rng, lanes: int, prec: int) -> VPBatch:
    kind, sign, mant, exp = [], [], [], []
    for _ in range(lanes):
        kind.append(Kind.FINITE)
        sign.append(rng.randint(0, 1))
        mant.append(rng.randrange(1 << (prec - 1), 1 << prec))
        exp.append(rng.randrange(-40, 40))
    return VPBatch(kind, sign, mant, exp, prec)


def bench_batch(lanes: int, reps: int, failures) -> dict:
    """Single-limb numpy tier vs the generic batch kernels on
    broadcast operand batches; -> the JSON row."""
    prec = BATCH_PREC
    rng = random.Random(20260809)
    ctx = BatchContext(lanes=lanes, kernel_tier="small")
    rows = {}
    np_total = generic_total = 0.0
    for op in ("add", "mul"):
        generic = batch_kernel_factory(op, prec, RNDN, None)(ctx)
        tiered = npk.make_np_kernel(op, prec, None, ctx, generic)
        a = _random_batch(rng, lanes, prec)
        b = _random_batch(rng, lanes, prec)
        r_np = tiered(a, b)  # also warms the cached uint64 form
        r_gen = generic(a, b)
        lanes_np = list(zip(r_np.kind, r_np.sign, r_np.mant, r_np.exp))
        lanes_gen = list(zip(r_gen.kind, r_gen.sign, r_gen.mant,
                             r_gen.exp))
        if lanes_np != lanes_gen:
            failures.append(f"batch {op}@{prec}: numpy-tier lanes "
                            f"diverge from the generic kernel")
        t_np = replay_seconds(tiered, [(a, b)] * 16, reps) / 16
        t_gen = replay_seconds(generic, [(a, b)] * 16, reps) / 16
        np_total += t_np
        generic_total += t_gen
        rows[op] = {"np_seconds": t_np, "generic_seconds": t_gen,
                    "speedup": t_gen / t_np if t_np else float("inf")}
    speedup = generic_total / np_total if np_total else float("inf")
    floor = BATCH_FLOOR * bench_floor_scale()
    print(f"batch@{prec} x{lanes} lanes: numpy-tier speedup "
          f"{speedup:5.2f}x  (floor {floor:.2f}x)")
    for op, row in sorted(rows.items()):
        print(f"    {op:<4} {row['speedup']:5.2f}x")
    if speedup < floor:
        failures.append(f"batch@{prec} x{lanes}: numpy-tier speedup "
                        f"{speedup:.2f}x below the {floor:.2f}x floor")
    return {"prec": prec, "lanes": lanes, "ops": rows,
            "speedup_vs_generic": speedup, "floor": floor,
            "np_vector_ops": ctx.np_ops, "np_bailouts": ctx.np_bailouts}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="smaller gemm and batch, fewer reps "
                             "(CI smoke mode; the floors still apply)")
    parser.add_argument("--reps", type=int, default=None,
                        help="replay repetitions per kernel "
                             "(default 5, quick 3)")
    parser.add_argument("--json-out", metavar="FILE", default=None,
                        help="write the sweep results as JSON "
                             "(CI artifact)")
    args = parser.parse_args(argv)
    reps = args.reps if args.reps is not None else (3 if args.quick
                                                    else 5)
    gemm_n = 6 if args.quick else 8
    lanes = BATCH_LANES_QUICK if args.quick else BATCH_LANES_FULL

    failures: list = []
    document = {"version": BENCH_FORMAT_VERSION, "kernel": KERNEL,
                "quick": args.quick, "reps": reps,
                "floor_scale": bench_floor_scale(),
                "meta": reproducibility_envelope(),
                "scalar": [], "batch": None}
    print(f"bench_kernel_tiers: {KERNEL} n={gemm_n}, {reps} rep(s)")
    for prec in PRECISIONS:
        document["scalar"].append(bench_scalar(prec, gemm_n, reps,
                                               failures))
    print()
    document["batch"] = bench_batch(lanes, reps, failures)

    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"results written to {args.json_out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: tiered outputs and CostReports bit-identical to the "
              "generic kernels, speedup floors met")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
