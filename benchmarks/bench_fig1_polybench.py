"""Fig. 1 (1) bench: PolyBench vpfloat-vs-Boost speedups.

Each case compiles and executes one kernel with both lowerings (best of
+/-Polly, as the paper measures) and asserts the vpfloat backend wins;
the modeled speedup lands in extra_info.  Paper average: 1.80x.
"""

import pytest

from repro.evaluation.fig1 import run_fig1_polybench
from repro.evaluation.harness import geomean

#: Representative spread: compute-bound, memory-bound, stencil, solver.
BENCH_KERNELS = ("gemm", "atax", "jacobi-1d", "ludcmp")


@pytest.mark.parametrize("kernel", BENCH_KERNELS)
def test_fig1_kernel(benchmark, kernel):
    points = benchmark.pedantic(
        run_fig1_polybench,
        kwargs={"kernels": (kernel,), "dataset": "mini",
                "precisions": (128,)},
        rounds=1, iterations=1,
    )
    point = points[0]
    assert point.speedup > 1.0, \
        f"{kernel}: vpfloat should beat Boost, got {point.speedup:.2f}x"
    benchmark.extra_info["speedup_vs_boost"] = round(point.speedup, 2)


def test_fig1_suite_average(benchmark, paper_scale):
    """A small multi-kernel average, checked against the paper's regime.
    Pass --paper-scale to run the full 'small' dataset with Polly."""
    points = benchmark.pedantic(
        run_fig1_polybench,
        kwargs={"kernels": BENCH_KERNELS,
                "dataset": "small" if paper_scale else "mini",
                "precisions": (128, 512),
                "with_polly": bool(paper_scale)},
        rounds=1, iterations=1,
    )
    average = geomean([p.speedup for p in points])
    assert 1.2 < average < 4.0  # paper: 1.80x
    benchmark.extra_info["average_speedup"] = round(average, 2)
    benchmark.extra_info["paper"] = 1.80
