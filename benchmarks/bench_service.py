"""Latency benchmark: warm daemon vs cold ``vpfloat-cc``.

Measures the end-to-end latency of a cached gemm compile+run served by
a warm ``vpfloat-serve`` daemon (persistent workers, shared artifact
store, JIT-hot programs) against the cold-start path the daemon
replaces: a fresh ``vpfloat-cc`` subprocess with an empty compile
cache per invocation (interpreter boot + imports + full compile +
run).

Verifies bit-identity while it measures -- every daemon reply's value
digest must equal the in-process serial reference -- and asserts the
speedup floor (>= 5x full mode, >= 2x quick).  Emits a JSON document
next to the other bench artifacts.

Usage::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --quick
    PYTHONPATH=src python benchmarks/bench_service.py \
        --json-out results/bench_service.json
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.observability import bench_floor_scale, \
    reproducibility_envelope  # noqa: E402
from repro.service.client import ServiceClient, wait_for  # noqa: E402
from repro.workloads.polybench import source_for  # noqa: E402

BENCH_FORMAT_VERSION = 1
KERNEL = "gemm"
FTYPE = "vpfloat<mpfr, 16, 64>"
N = 6
FLOOR_FULL = 5.0
FLOOR_QUICK = 2.0
REPS_FULL = 10
REPS_QUICK = 3


def _serial_reference() -> str:
    from repro.evaluation.harness import run_kernel
    from repro.validation.certificate import values_digest

    outcome = run_kernel(KERNEL, FTYPE, N, backend="mpfr",
                         engine="jit")
    return values_digest([outcome.value] + list(outcome.outputs))


def bench_cold(workdir: str, reps: int) -> list:
    """Per rep: a fresh ``vpfloat-cc`` subprocess over a fresh compile
    cache -- the full cold path a daemonless workflow pays."""
    source_path = os.path.join(workdir, f"{KERNEL}.c")
    with open(source_path, "w", encoding="utf-8") as handle:
        handle.write(source_for(KERNEL, FTYPE))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(__file__), "..", "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    walls = []
    for rep in range(reps):
        cache_dir = os.path.join(workdir, f"cold-cache-{rep}")
        wall0 = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro.cli", source_path,
             "--backend", "mpfr", "--run", "run", "--args", str(N),
             "--cache-dir", cache_dir],
            check=True, env=env, stdout=subprocess.DEVNULL)
        walls.append(time.perf_counter() - wall0)
        print(f"  cold rep {rep + 1}/{reps}: {walls[-1] * 1e3:.1f} ms")
    return walls


def bench_warm(workdir: str, reps: int, reference: str,
               failures: list) -> list:
    """Median request latency against a primed daemon."""
    socket_path = os.path.join(workdir, "serve.sock")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(
        os.path.dirname(__file__), "..", "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    daemon = subprocess.Popen(
        [sys.executable, "-m", "repro.service.daemon",
         "--socket", socket_path, "--workers", "1",
         "--cache-dir", os.path.join(workdir, "store")],
        env=env, stdout=subprocess.DEVNULL)
    try:
        wait_for(socket_path, timeout=60.0)
        with ServiceClient(socket_path) as client:
            # Prime: first request pays the one-time compile+store.
            primed = client.run(KERNEL, FTYPE, N, backend="mpfr")
            if primed["digest"] != reference:
                failures.append(
                    f"priming digest {primed['digest']} != serial "
                    f"reference {reference}")
            walls = []
            for rep in range(reps):
                wall0 = time.perf_counter()
                result = client.run(KERNEL, FTYPE, N, backend="mpfr")
                walls.append(time.perf_counter() - wall0)
                if result["digest"] != reference:
                    failures.append(
                        f"warm rep {rep}: digest {result['digest']} "
                        f"!= serial reference {reference}")
                print(f"  warm rep {rep + 1}/{reps}: "
                      f"{walls[-1] * 1e3:.1f} ms")
            client.shutdown()
        daemon.wait(timeout=30)
    finally:
        if daemon.poll() is None:
            daemon.terminate()
            daemon.wait(timeout=10)
    return walls


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="fewer reps, relaxed floor (CI smoke)")
    parser.add_argument("--json-out", default=None)
    args = parser.parse_args(argv)
    reps = REPS_QUICK if args.quick else REPS_FULL
    floor = (FLOOR_QUICK if args.quick else FLOOR_FULL) \
        * bench_floor_scale()

    failures: list = []
    reference = _serial_reference()
    print(f"bench_service: {KERNEL} n={N} at {FTYPE}, {reps} rep(s)")
    with tempfile.TemporaryDirectory(prefix="vpfloat-bench-") as workdir:
        print("cold vpfloat-cc (fresh process + empty cache per rep):")
        cold = bench_cold(workdir, reps)
        print("warm vpfloat-serve (persistent worker, primed store):")
        warm = bench_warm(workdir, reps, reference, failures)

    cold_median = statistics.median(cold)
    warm_median = statistics.median(warm)
    speedup = cold_median / warm_median if warm_median else float("inf")
    print(f"cold median {cold_median * 1e3:.1f} ms, warm median "
          f"{warm_median * 1e3:.1f} ms -> {speedup:.1f}x")
    if speedup < floor:
        failures.append(f"warm speedup {speedup:.2f}x below the "
                        f"{floor:.1f}x floor")

    document = {
        "version": BENCH_FORMAT_VERSION,
        "kernel": KERNEL, "ftype": FTYPE, "n": N,
        "quick": args.quick, "reps": reps,
        "meta": reproducibility_envelope(),
        "cold_wall_seconds": cold,
        "warm_wall_seconds": warm,
        "cold_median_seconds": cold_median,
        "warm_median_seconds": warm_median,
        "speedup_warm_vs_cold": speedup,
        "floor": floor,
        "digest": reference,
    }
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"results written to {args.json_out}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: every reply bit-identical to serial, speedup floor "
              "met")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
