"""Benchmark for the parallel sharded evaluation engine + compile cache.

Three claims are measured against the serial, cache-less baseline the
seed harness used:

* **wall-clock** -- one sweep invocation through the engine
  (``--jobs`` worker processes, deterministic sharding, persistent
  compile cache) beats the same grid evaluated serially with no cache.
  The engine is timed twice: a *cold* pass that populates the cache,
  and a *warm* pass -- the steady state of the evaluation drivers,
  which re-run identical grids across benchmark sessions.  The speedup
  floor applies to the warm pass; on a multi-core host the cold pass
  clears it too, on a single-core host the compile cache alone carries
  it.
* **compile phase** -- a warm persistent cache returns a compiled
  program far faster than the parse -> sema -> -O3 -> backend pipeline.
* **equivalence** -- per-point modeled cycles, cycle categories, and
  exact output bits (BigFloat fields) are identical between the
  engine's runs (superinstruction fusion on, the default) and the
  serial uncached baseline.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_eval.py
    PYTHONPATH=src python benchmarks/bench_parallel_eval.py --quick --jobs 2
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import time

from repro.core import CompileCache, CompilerDriver
from repro.evaluation.parallel import GridPoint, run_grid
from repro.workloads.polybench import source_for

#: (kernel, precision, n, polly) sweep.  Every (kernel, precision,
#: polly) combination is a distinct compilation; sweeping ``n`` inside
#: each combination is what the compile cache collapses.
FULL_GRID = [
    (kernel, f"vpfloat<mpfr, 16, {prec}>", n, polly)
    for kernel in ("gemm", "nussinov", "ludcmp", "adi")
    for prec in (128, 256)
    for n in (4, 5)
    for polly in (False, True)
]
QUICK_GRID = [
    ("gemm", "vpfloat<mpfr, 16, 128>", n, polly)
    for n in (4, 5)
    for polly in (False, True)
]


def _points(grid):
    return [GridPoint.make(kernel, ftype, n, backend="mpfr", polly=polly)
            for kernel, ftype, n, polly in grid]


def _outcome_key(outcome):
    """Cycles + categories + exact output bits for one sweep point."""
    from repro.bigfloat import BigFloat

    outputs = tuple(
        (v.kind, v.sign, v.mant, v.exp, v.prec)
        if isinstance(v, BigFloat) else v
        for v in outcome.outputs)
    return (outcome.report.cycles, outcome.report.instructions,
            tuple(sorted(outcome.report.by_category.items())), outputs)


def bench_wall(grid, jobs: int, cache_dir: str):
    points = _points(grid)
    started = time.perf_counter()
    serial = run_grid(points, jobs=1, compile_cache=False)
    serial_wall = time.perf_counter() - started

    started = time.perf_counter()
    cold = run_grid(points, jobs=jobs, cache_dir=cache_dir)
    cold_wall = time.perf_counter() - started

    started = time.perf_counter()
    warm = run_grid(points, jobs=jobs, cache_dir=cache_dir)
    warm_wall = time.perf_counter() - started
    return (serial, serial_wall), (cold, cold_wall), (warm, warm_wall)


COMPILE_PRECISIONS = (128, 256, 512)


def bench_compile(cache_dir: str):
    """Cold (miss + store) vs warm (fresh process's disk hit) compile."""
    sources = [(f"gemm-{prec}",
                source_for("gemm", f"vpfloat<mpfr, 16, {prec}>"))
               for prec in COMPILE_PRECISIONS]

    cold_cache = CompileCache(cache_dir)
    driver = CompilerDriver(backend="mpfr", cache=cold_cache)
    started = time.perf_counter()
    for name, source in sources:
        driver.compile(source, name=name)
    cold = time.perf_counter() - started

    # A fresh cache object over the same directory: empty LRU, so every
    # lookup exercises the disk tier -- the cross-process shape.
    warm_cache = CompileCache(cache_dir)
    driver = CompilerDriver(backend="mpfr", cache=warm_cache)
    started = time.perf_counter()
    for name, source in sources:
        driver.compile(source, name=name)
    warm = time.perf_counter() - started
    assert warm_cache.stats.disk_hits == len(sources), \
        "warm pass was expected to be served from disk"
    return cold, warm


def bench(jobs: int, quick: bool, cache_dir=None) -> int:
    grid = QUICK_GRID if quick else FULL_GRID
    if cache_dir is None:
        cache_dir = tempfile.mkdtemp(prefix="vpfloat-bench-cache-")

    (serial, serial_wall), (cold_res, cold_wall), (warm_res, warm_wall) = \
        bench_wall(grid, jobs, cache_dir)
    cold_speedup = serial_wall / cold_wall if cold_wall else float("inf")
    warm_speedup = serial_wall / warm_wall if warm_wall else float("inf")

    compile_cold, compile_warm = bench_compile(cache_dir)
    compile_speedup = compile_cold / compile_warm if compile_warm \
        else float("inf")

    print(f"grid: {len(grid)} points "
          f"({'quick' if quick else 'full'}), jobs={jobs}")
    print(f"serial, no compile cache:       {serial_wall:8.3f} s")
    print(f"engine cold ({jobs} jobs, empty cache): {cold_wall:8.3f} s "
          f"({cold_speedup:.2f}x)")
    print(f"engine warm ({jobs} jobs, steady state): {warm_wall:8.3f} s "
          f"({warm_speedup:.2f}x)")
    print(f"compile phase cold:             {compile_cold * 1e3:8.1f} ms "
          f"({len(COMPILE_PRECISIONS)} programs)")
    print(f"compile phase warm (disk):      {compile_warm * 1e3:8.1f} ms")
    print(f"compile speedup:                {compile_speedup:8.2f}x")

    failures = []
    serial_keys = [_outcome_key(o) for o in serial]
    for label, outcomes in (("cold", cold_res), ("warm", warm_res)):
        if [_outcome_key(o) for o in outcomes] != serial_keys:
            failures.append(f"{label} engine results are not "
                            f"bit-identical to the serial uncached "
                            f"baseline")
    wall_floor = 1.0 if quick else 1.5
    if warm_speedup < wall_floor:
        failures.append(f"steady-state speedup {warm_speedup:.2f}x below "
                        f"the {wall_floor:.1f}x floor")
    compile_floor = 2.0 if quick else 5.0
    if compile_speedup < compile_floor:
        failures.append(f"compile speedup {compile_speedup:.2f}x below "
                        f"the {compile_floor:.1f}x floor")
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("OK: bit-identical outputs/cycles, wall-clock and "
              "compile-phase floors met")
    return 1 if failures else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--jobs", "-j", type=int, default=4,
                        help="worker processes (default 4)")
    parser.add_argument("--quick", action="store_true",
                        help="small grid, relaxed floors (CI smoke mode)")
    parser.add_argument("--cache-dir", default=None,
                        help="compile-cache directory (default: a fresh "
                             "temporary directory)")
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    return bench(args.jobs, args.quick, args.cache_dir)


if __name__ == "__main__":
    sys.exit(main())
