#!/usr/bin/env python3
"""Residual accuracy across precisions (the paper's Table I motivation).

Runs PolyBench kernels at IEEE 32/64 and several vpfloat precisions,
comparing every result against a 700-bit reference -- including
gramschmidt, which is numerically *unstable* at IEEE precisions and only
stabilizes with extended precision (the paper's headline argument for
variable precision).

Run:  python examples/accuracy_vs_precision.py [kernel] [n]
"""

import sys

from repro.bigfloat import log10_magnitude
from repro.evaluation.harness import residual_error, run_kernel
from repro.workloads import KERNELS

TYPES = (
    ("IEEE 32", "float"),
    ("IEEE 64", "double"),
    ("96 bits", "vpfloat<mpfr, 16, 96>"),
    ("128 bits", "vpfloat<mpfr, 16, 128>"),
    ("256 bits", "vpfloat<mpfr, 16, 256>"),
    ("512 bits", "vpfloat<mpfr, 16, 512>"),
)


def main() -> None:
    kernel = sys.argv[1] if len(sys.argv) > 1 else "gramschmidt"
    if kernel not in KERNELS:
        raise SystemExit(f"unknown kernel {kernel!r}; "
                         f"choose from {', '.join(sorted(KERNELS))}")
    n = int(sys.argv[2]) if len(sys.argv) > 2 else \
        KERNELS[kernel].size_for("medium")

    print(f"kernel={kernel}  n={n}  (reference: 700-bit run)\n")
    reference = run_kernel(kernel, "vpfloat<mpfr, 16, 700>", n,
                           backend="none", cache=False)
    print(f"{'type':<10}{'log10(residual)':>18}  note")
    print("-" * 44)
    for label, ftype in TYPES:
        outcome = run_kernel(kernel, ftype, n, backend="none", cache=False)
        err = residual_error(outcome.outputs, reference.outputs)
        magnitude = log10_magnitude(err)
        note = ""
        if err.is_nan():
            note = "NaN -- numerically destroyed"
        elif magnitude > -6:
            note = "UNSTABLE at this precision"
        print(f"{label:<10}{magnitude:>18.1f}  {note}")

    print("\nEach extra mantissa bit buys ~0.3 decimal digits of final "
          "accuracy; for unstable kernels the gain is qualitative, not "
          "just quantitative (paper Table I).")


if __name__ == "__main__":
    main()
