#!/usr/bin/env python3
"""Format shootout: mpfr vs unum vs posit at equal storage budgets.

The paper's thesis is that the *type system* should carry the number
format, so switching a kernel between representations is a one-line
type edit (paper §III-A).  This example demonstrates exactly that: one
dot-product kernel, recompiled with three different ``vpfloat``
formats at a 32-bit storage width, measured for accuracy against a
700-bit reference.

Two inputs probe the formats' contrasting geometry:

- values clustered near 1.0, where posit's tapered precision spends
  its regime bits well and beats a fixed-field format of equal width;
- values spanning a wide dynamic range, where the tapered fraction
  shrinks and a conventional exponent/fraction split wins back ground.

Run:  python examples/format_shootout.py [n]
"""

import sys

from repro import compile_source
from repro.bigfloat import BigFloat, add, log10_magnitude, mul

#: One kernel template; the format is the only thing that changes.
TEMPLATE = """
double dot(int n, double *X, double *Y) {
  FTYPE acc = 0.0;
  for (int i = 0; i < n; i++)
    acc = acc + (FTYPE)X[i] * (FTYPE)Y[i];
  return (double)acc;
}
"""

#: 32-bit storage budget for every contender.
FORMATS = (
    ("float (IEEE 32)", "float"),
    ("mpfr  <8, 24>", "vpfloat<mpfr, 8, 24>"),
    ("unum  <3, 5>", "vpfloat<unum, 3, 5, 4>"),
    ("posit <2, 32>", "vpfloat<posit, 2, 32>"),
)


def reference_dot(xs, ys):
    acc = BigFloat.from_int(0, 700)
    for x, y in zip(xs, ys):
        term = mul(BigFloat.from_float(x, 700),
                   BigFloat.from_float(y, 700), 700)
        acc = add(acc, term, 700)
    return acc


def relative_error(value, reference):
    ref = reference.to_float()
    if ref == 0.0:
        return abs(value)
    return abs(value - ref) / abs(ref)


def run_case(title, xs, ys, n):
    reference = reference_dot(xs, ys)
    print(f"\n--- {title} (n={n}, reference={reference.to_float():.6g}) ---")
    print(f"  {'format':16s}  {'result':>14s}  {'rel. error':>10s}")
    for label, ftype in FORMATS:
        program = compile_source(TEMPLATE.replace("FTYPE", ftype),
                                 backend="none")
        interp = program.interpreter(cache=False)
        base_x = interp.memory.alloc_heap(8 * n)
        base_y = interp.memory.alloc_heap(8 * n)
        for i in range(n):
            interp.memory.store(base_x + 8 * i, xs[i], 8)
            interp.memory.store(base_y + 8 * i, ys[i], 8)
        value = interp.run("dot", [n, base_x, base_y]).value
        err = relative_error(value, reference)
        err_mag = log10_magnitude(BigFloat.from_float(err, 60))
        shown = "exact" if err == 0.0 else f"1e{err_mag:+.0f}"
        print(f"  {label:16s}  {value:>14.6g}  {shown:>10s}")


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 128

    # Near-1.0 workload: posit's sweet spot.
    xs = [1.0 + (i % 17) / 64.0 for i in range(n)]
    ys = [1.0 - (i % 13) / 96.0 for i in range(n)]
    run_case("values near 1.0 (posit sweet spot)", xs, ys, n)

    # Wide-dynamic-range workload: tapered precision pays a price.
    xs = [(1.0 + (i % 7) / 8.0) * 2.0 ** ((i % 29) - 14) for i in range(n)]
    ys = [(1.0 + (i % 5) / 8.0) * 2.0 ** (14 - (i % 23)) for i in range(n)]
    run_case("wide dynamic range (fixed exponent field wins)", xs, ys, n)

    print("\nSame kernel, four formats, one type edit each -- the paper's")
    print("'seamless integration' argument in action.")


if __name__ == "__main__":
    main()
