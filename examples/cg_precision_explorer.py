#!/usr/bin/env python3
"""Conjugate Gradient precision exploration (the paper's §IV-C study).

Sweeps the working precision of a variable-precision CG solver over an
ill-conditioned SPD system (the bcsstk20 stand-in) and prints the Fig. 3
trade-off: more precision -> fewer iterations -> a runtime minimum ->
slow degradation past the plateau.

The solver is precision-generic: the same function runs at every
precision with no recompilation -- the dynamically-sized-type programming
model the paper advocates.

Run:  python examples/cg_precision_explorer.py [n] [condition]
"""

import sys

from repro.solvers import bcsstk20_like, condition_estimate, rhs_for
from repro.solvers.cg import conjugate_gradient


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 48
    condition = float(sys.argv[2]) if len(sys.argv) > 2 else 1e12

    matrix = bcsstk20_like(n=n, condition=condition)
    b = rhs_for(matrix)
    print(f"bcsstk20 stand-in: {n}x{n}, nnz={matrix.nnz}, "
          f"condition ~ {condition_estimate(matrix):.2e}\n")

    header = (f"{'precision':>10} {'iterations':>11} {'residual':>12} "
              f"{'modeled time':>14} {'note':>12}")
    print(header)
    print("-" * len(header))

    best = None
    for prec in (60, 80, 100, 140, 200, 300, 400, 500, 700, 900):
        result = conjugate_gradient(matrix, b, prec, tolerance=1e-12,
                                    max_iterations=40 * n)
        time = result.modeled_cycles()
        note = ""
        if best is None or time < best[1]:
            best = (prec, time)
            note = "<- best"
        print(f"{prec:>10} {result.iterations:>11} "
              f"{result.residual_norm.to_float():>12.2e} "
              f"{time:>14.3e} {note:>12}")

    prec, time = best
    print(f"\nRuntime minimum at {prec} bits "
          f"(the paper's plateau effect: past it, per-iteration cost "
          f"grows faster than iterations shrink).")

    # The paper's language comparison at the plateau precision.
    result = conjugate_gradient(matrix, b, prec, tolerance=1e-12,
                                max_iterations=40 * n)
    vp = result.modeled_cycles()
    boost = result.modeled_cycles(per_op_temp=True)
    julia = result.modeled_cycles(overhead_factor=9.0)
    print(f"at {prec} bits: Boost/vpfloat = {boost / vp:.2f}x "
          f"(paper: 1.51x), Julia/vpfloat = {julia / vp:.1f}x "
          f"(paper: >9x)")

    # --- Transprecision: let the solver pick its own precision -------- #
    from repro.solvers import adaptive_cg

    print("\nTransprecision mode (paper §II: escalate on stalls):")
    adaptive = adaptive_cg(matrix, b, initial_precision=60,
                           tolerance=1e-12)
    for stage in adaptive.stages:
        marker = "escalate ->" if stage.escalated else "continue"
        print(f"  {stage.precision:5d} bits: {stage.iterations:5d} iters, "
              f"residual {stage.exit_residual:9.2e}  [{marker}]")
    print(f"  converged={adaptive.converged} at "
          f"{adaptive.final_precision} bits, "
          f"{adaptive.total_iterations} total iterations, "
          f"modeled time {adaptive.modeled_cycles():.3e}")


if __name__ == "__main__":
    main()
