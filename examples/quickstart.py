#!/usr/bin/env python3
"""Quickstart: compile and run vpfloat C code through every backend.

Demonstrates the paper's core workflow (paper Listing 2's axpy):

1. write a kernel in the C dialect with a ``vpfloat<mpfr, 16, prec>``
   dynamically-sized type;
2. compile it with the -O3 pipeline and the MPFR backend;
3. execute it on the modeled machine and inspect both the numerical
   result and the performance report;
4. compare against the Boost-style baseline and the UNUM coprocessor.

Run:  python examples/quickstart.py
"""

from repro import compile_source
from repro.bigfloat import BigFloat
from repro.unum import UnumConfig, decode, encode

SOURCE = """
// Paper Listing 2: axpy with a dynamically-sized mpfr type.
void axpy(unsigned prec, int n,
          vpfloat<mpfr, 16, prec> alpha,
          vpfloat<mpfr, 16, prec> *X,
          vpfloat<mpfr, 16, prec> *Y) {
  for (int i = 0; i < n; ++i)
    Y[i] = alpha * X[i] + Y[i];
}

double run(unsigned prec, int n) {
  vpfloat<mpfr, 16, prec> X[64];
  vpfloat<mpfr, 16, prec> Y[64];
  vpfloat<mpfr, 16, prec> alpha = 2.5;
  for (int i = 0; i < n; i++) { X[i] = i; Y[i] = 1.0; }
  axpy(prec, n, alpha, X, Y);
  double checksum = 0.0;
  for (int i = 0; i < n; i++) checksum = checksum + (double)Y[i];
  return checksum;
}
"""

UNUM_SOURCE = """
void axpy(int n, vpfloat<unum, 4, 8> alpha,
          vpfloat<unum, 4, 8> *X, vpfloat<unum, 4, 8> *Y) {
  for (int i = 0; i < n; ++i)
    Y[i] = alpha * X[i] + Y[i];
}
"""


def main() -> None:
    n = 64
    expected = sum(1.0 + 2.5 * i for i in range(n))

    print("=== vpfloat MPFR backend (the paper's software target) ===")
    program = compile_source(SOURCE, backend="mpfr")
    for prec in (128, 256, 512):
        result = program.run("run", [prec, n])
        report = result.report
        print(f"  prec={prec:4d}  checksum={result.value:>10.1f}  "
              f"cycles={report.cycles:>9d}  mpfr_calls={report.mpfr_calls}")
        assert result.value == expected

    print("\n=== Boost-style baseline (per-operation temporaries) ===")
    boost = compile_source(SOURCE, backend="boost")
    for prec in (128, 256, 512):
        fast = program.run("run", [prec, n]).report.cycles
        slow = boost.run("run", [prec, n]).report.cycles
        print(f"  prec={prec:4d}  boost/vpfloat = {slow / fast:.2f}x")

    print("\n=== UNUM coprocessor backend ===")
    unum = compile_source(UNUM_SOURCE, backend="unum")
    machine = unum.machine()
    config = UnumConfig(4, 8)
    xs = machine.memory.alloc_heap(n * config.size_bytes)
    ys = machine.memory.alloc_heap(n * config.size_bytes)
    for i in range(n):
        machine.memory.store_bytes(
            xs + i * config.size_bytes,
            encode(BigFloat.from_int(i, 300), config)
            .to_bytes(config.size_bytes, "little"))
        machine.memory.store_bytes(
            ys + i * config.size_bytes,
            encode(BigFloat.from_int(1, 300), config)
            .to_bytes(config.size_bytes, "little"))
    machine.run("axpy", [n, BigFloat.from_float(2.5, 300), xs, ys])
    total = 0.0
    for i in range(n):
        raw = machine.memory.load_bytes(ys + i * config.size_bytes,
                                        config.size_bytes)
        total += float(decode(int.from_bytes(raw, "little"), config))
    print(f"  checksum={total:.1f}  "
          f"cycles={machine.cycles}  "
          f"g-ops={machine.coprocessor.stats.by_opcode}")
    assert total == expected
    print("\nAll three backends agree. ✓")


if __name__ == "__main__":
    main()
