#!/usr/bin/env python3
"""A tour of the UNUM coprocessor backend (the paper's hardware target).

Walks through what the compiler generates for a variable-precision
kernel: the assembly with ``sucfg`` configuration writes, variable-byte
``ldu``/``stu`` accesses, g-layer arithmetic -- and how the Memory Byte
Budget (MBB) trades storage for precision, byte by byte (the paper's
non-power-of-two 25- and 67-byte experiments).

Run:  python examples/unum_coprocessor_tour.py
"""

from repro import compile_source
from repro.bigfloat import BigFloat
from repro.unum import UnumConfig, decode, encode

DOT = """
vpfloat<unum, 4, 9, SIZE> dot(int n,
                              vpfloat<unum, 4, 9, SIZE> *X,
                              vpfloat<unum, 4, 9, SIZE> *Y) {
  vpfloat<unum, 4, 9, SIZE> s = 0.0;
  for (int i = 0; i < n; i++)
    s = s + X[i] * Y[i];
  return s;
}
"""


def run_at_size(size_bytes: int, n: int = 32) -> tuple:
    source = DOT.replace("SIZE", str(size_bytes))
    program = compile_source(source, backend="unum")
    machine = program.machine()
    config = UnumConfig(4, 9, size_bytes)
    xs = machine.memory.alloc_heap(n * config.size_bytes)
    ys = machine.memory.alloc_heap(n * config.size_bytes)
    for i in range(n):
        x = BigFloat.from_fraction(1, i + 3, 600)  # 1/3, 1/4, ...
        y = BigFloat.from_fraction(i + 3, 1, 600)
        machine.memory.store_bytes(
            xs + i * config.size_bytes,
            encode(x, config).to_bytes(config.size_bytes, "little"))
        machine.memory.store_bytes(
            ys + i * config.size_bytes,
            encode(y, config).to_bytes(config.size_bytes, "little"))
    result = machine.run("dot", [n, xs, ys])
    # Exact answer: sum of 1.0, n times.
    error = abs(result.to_float() - n)
    return config, machine, error


def main() -> None:
    print("=== Generated assembly for dot at unum<4, 9, 25> ===\n")
    program = compile_source(DOT.replace("SIZE", "25"), backend="unum")
    print(program.asm)

    print("\n=== Byte-budget sweep (paper: sizes at byte granularity, "
          "including 25 and 67 bytes) ===\n")
    print(f"{'size(B)':>8}{'mantissa(b)':>12}{'bytes moved':>13}"
          f"{'cycles':>9}{'|dot - n|':>12}")
    for size in (8, 12, 16, 25, 34, 51, 67):
        config, machine, error = run_at_size(size)
        stats = machine.coprocessor.stats
        print(f"{size:>8}{config.fraction_bits:>12}"
              f"{stats.bytes_loaded + stats.bytes_stored:>13}"
              f"{machine.cycles:>9}{error:>12.2e}")

    print("\nSmaller byte budgets move less memory (faster loads/stores) "
          "but truncate the mantissa -- the hardware knob the MBB control "
          "register exposes.")


if __name__ == "__main__":
    main()
